"""§4.2: the Kocher v1 suite and the paper's own litmus suites.

"To sanity check Pitchfork, we create and analyze a set of Spectre v1
and v1.1 test cases, and ensure we flag their SCT violations."

The benchmark sweeps every suite, asserts each case's ground truth
(flagged iff it leaks), and reports per-suite detection timing.
"""

import pytest

from conftest import once

from repro.api import AnalysisManager, Project
from repro.litmus import all_suites, load_suite


def _audit(cases, workers=None):
    """One Pitchfork run per case through the batch manager.

    ``Project.from_litmus`` mirrors each case's ground-truth knobs
    (bound, forwarding hazards, aliasing, indirect targets) into its
    options, so this is the same audit the old hand-rolled loop ran.
    """
    projects = [Project.from_litmus(case) for case in cases]
    reports = AnalysisManager("pitchfork", workers=workers).run(projects)
    return {p.name: not r.ok for p, r in zip(projects, reports)}


@pytest.mark.parametrize("suite", sorted(all_suites()))
def test_suite_audit(benchmark, suite):
    cases = load_suite(suite)
    results = once(benchmark, _audit, cases)
    flagged = sum(results.values())
    print(f"\n{suite}: {flagged}/{len(cases)} flagged")
    for case in cases:
        expected = case.leaks_speculatively or case.leaks_sequentially
        assert results[case.name] == expected, case.name


def test_kocher_suite_flags_14_of_15(benchmark):
    """All Kocher variants except the cmov-compiled v08 are flagged
    (the original suite is uniformly vulnerable as written in C; v08 is
    the known compiler-dependent exception)."""
    cases = load_suite("kocher")
    results = once(benchmark, _audit, cases)
    assert sum(results.values()) == 14
    assert results["kocher_08"] is False


def test_kocher_suite_parallel_matches_serial(benchmark):
    """The worker-pool fan-out returns exactly the serial verdicts."""
    cases = load_suite("kocher")
    serial = _audit(cases)
    parallel = once(benchmark, _audit, cases, workers=4)
    assert parallel == serial
