"""§4.2: the Kocher v1 suite and the paper's own litmus suites.

"To sanity check Pitchfork, we create and analyze a set of Spectre v1
and v1.1 test cases, and ensure we flag their SCT violations."

The benchmark sweeps every suite, asserts each case's ground truth
(flagged iff it leaks), and reports per-suite detection timing.
"""

import pytest

from conftest import once

from repro.litmus import all_suites, load_suite
from repro.pitchfork import analyze


def _audit(cases):
    results = {}
    for case in cases:
        report = analyze(case.program, case.config(), bound=case.min_bound,
                         fwd_hazards=case.needs_fwd_hazards,
                         explore_aliasing=case.needs_aliasing,
                         jmpi_targets=case.jmpi_targets,
                         rsb_targets=case.rsb_targets,
                         rsb_policy=case.rsb_policy, max_paths=8000)
        results[case.name] = not report.secure
    return results


@pytest.mark.parametrize("suite", sorted(all_suites()))
def test_suite_audit(benchmark, suite):
    cases = load_suite(suite)
    results = once(benchmark, _audit, cases)
    flagged = sum(results.values())
    print(f"\n{suite}: {flagged}/{len(cases)} flagged")
    for case in cases:
        expected = case.leaks_speculatively or case.leaks_sequentially
        assert results[case.name] == expected, case.name


def test_kocher_suite_flags_14_of_15(benchmark):
    """All Kocher variants except the cmov-compiled v08 are flagged
    (the original suite is uniformly vulnerable as written in C; v08 is
    the known compiler-dependent exception)."""
    cases = load_suite("kocher")
    results = once(benchmark, _audit, cases)
    assert sum(results.values()) == 14
    assert results["kocher_08"] is False
