"""Table 1: every instruction and its transient forms, exercised.

Asserts that each physical instruction fetches into the documented
transient form and benchmarks raw machine throughput (steps/second) on
straight-line code — the substrate cost every other experiment pays.
"""

import pytest

from repro.asm import ProgramBuilder, assemble
from repro.core import (Config, Machine, Memory, Region, RETIRE, PUBLIC,
                        TBr, TCallMarker, TFence, TJmpi, TLoad, TOp,
                        TRetMarker, TStore, execute, fetch, run,
                        run_sequential)


def test_table1_transient_forms(benchmark):
    """Fetch each instruction kind; check its transient form (Table 1)."""
    prog = assemble("""
        %r0 = op add, 1, 2
        %r1 = load [0x40]
        store %r0, [0x41]
        br eq, 0, 0 -> 4, 4
        jmpi [7]
        halt
        halt
        call f
        halt
        f: ret
    """)
    mem = Memory().with_region(Region("stack", 0xF0, 8, PUBLIC), None)

    def fetch_all():
        m = Machine(prog)
        c = Config.initial({"rsp": 0xF7}, mem, pc=1)
        forms = []
        for directive in (fetch(), fetch(), fetch(), fetch(True)):
            c, _ = m.step(c, directive)
        forms = [type(e).__name__ for _i, e in c.buf.items()]
        # jmpi / call / ret fetched from their own points:
        c2 = Config.initial({"rsp": 0xF7}, mem, pc=5)
        c2, _ = m.step(c2, fetch(7))
        forms.append(type(c2.buf[1]).__name__)
        c3 = Config.initial({"rsp": 0xF7}, mem, pc=8)
        c3, _ = m.step(c3, fetch())
        forms += [type(e).__name__ for _i, e in c3.buf.items()]
        c3, _ = m.step(c3, fetch())  # the ret at f
        forms.append(type(c3.buf[c3.buf.max_index() - 3]).__name__)
        return forms

    forms = benchmark(fetch_all)
    assert forms[:4] == ["TOp", "TLoad", "TStore", "TBr"]
    assert forms[4] == "TJmpi"
    assert forms[5:8] == ["TCallMarker", "TOp", "TStore"]
    assert forms[8] == "TRetMarker"


def test_machine_throughput(benchmark):
    """Steps/second on a 100-instruction straight-line program."""
    b = ProgramBuilder()
    for k in range(100):
        b.op(f"r{k % 4}", "add", [f"r{(k + 1) % 4}", k])
    b.halt()
    prog = b.build()
    m = Machine(prog)
    c0 = Config.initial({f"r{k}": k for k in range(4)}, Memory(), 1)

    result = benchmark(lambda: run_sequential(m, c0))
    assert result.retired == 100
    assert result.final.is_terminal()


def test_speculative_window_throughput(benchmark):
    """Cost of deep speculation: fill a 64-entry window, execute, drain."""
    b = ProgramBuilder()
    for k in range(64):
        b.op(f"r{k % 4}", "xor", [f"r{(k + 1) % 4}", k])
    b.halt()
    prog = b.build()
    m = Machine(prog)
    c0 = Config.initial({f"r{k}": k for k in range(4)}, Memory(), 1)
    schedule = ([fetch()] * 64 + [execute(i) for i in range(1, 65)]
                + [RETIRE] * 64)

    result = benchmark(lambda: run(m, c0, schedule, record_steps=False))
    assert result.retired == 64
