"""Figures 11, 12, 13: Spectre v2, ret2spec, and the retpoline.

Replays each appendix figure's schedule, asserts the paper's leakage,
and contrasts core-tool blindness with the extended exploration.
"""

import pytest

from repro.core import (Jump, Machine, PUBLIC, Read, Rollback, SECRET, run,
                        secret_observations)
from repro.litmus import find_case
from repro.pitchfork import analyze


class TestFig11SpectreV2:
    def test_replay(self, benchmark):
        case = find_case("v2_fig11")
        m = Machine(case.program)
        res = benchmark(run, m, case.config(), case.attack_schedule)
        assert res.trace == (Read(0x49, PUBLIC), Read(0xB2 + 0x44, SECRET))

    def test_core_blind_extended_finds(self, benchmark):
        case = find_case("v2_fig11")

        def both():
            core = analyze(case.program, case.config(), bound=12,
                           fwd_hazards=False)
            extended = analyze(case.program, case.config(), bound=12,
                               fwd_hazards=False,
                               jmpi_targets=case.jmpi_targets)
            return core, extended

        core, extended = benchmark(both)
        assert core.secure and not extended.secure


class TestFig12Ret2spec:
    def test_replay(self, benchmark):
        case = find_case("ret2spec_fig12")
        m = Machine(case.program)
        res = benchmark(run, m, case.config(), case.attack_schedule)
        leaks = secret_observations(res.trace)
        assert leaks == (Read(0x40 + 0xC1, SECRET),)

    def test_extended_detection(self, benchmark):
        case = find_case("ret2spec_fig12")
        report = benchmark(analyze, case.program, case.config(),
                           bound=16, fwd_hazards=False,
                           rsb_targets=case.rsb_targets)
        assert not report.secure


class TestFig13Retpoline:
    def test_replay(self, benchmark):
        case = find_case("retpoline_fig13")
        m = Machine(case.program)
        res = benchmark(run, m, case.config(), case.attack_schedule)
        assert res.trace[-2:] == (Rollback(), Jump(20, PUBLIC))
        assert res.final.pc == 20
        assert not secret_observations(res.trace)

    def test_retpolined_gadget_secure_under_mistraining(self, benchmark):
        case = find_case("v2_retpolined")
        report = benchmark(analyze, case.program, case.config(),
                           bound=16, fwd_hazards=False,
                           jmpi_targets=case.jmpi_targets)
        assert report.secure
