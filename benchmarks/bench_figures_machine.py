"""Figures 4, 5, 8: branch prediction, store hazards, fences.

These figures illustrate the machine's internals; the benchmarks assert
the buffer evolution shown in the paper and time the operations.
"""

import pytest

from repro.asm import assemble
from repro.core import (Config, Fwd, Jump, Machine, Memory, PUBLIC, Rollback,
                        StuckError, TJump, execute, fetch, run)
from repro.litmus import find_case


class TestFig4BranchPrediction:
    def _machine(self):
        from repro.core.isa import Op
        from repro.core.program import Program
        from repro.core.values import Reg, operands
        from repro.core.isa import Br
        return Machine(Program({
            3: Op(Reg("rb"), "mov", operands(4), 4),
            4: Br("lt", operands(2, "ra"), 9, 12),
            9: Op(Reg("rc"), "add", operands(1, "rb"), 10),
            12: Op(Reg("rd"), "mul", operands("rg", "rh"), 13),
        }, entry=3))

    def test_correct_prediction(self, benchmark):
        """Fig 4(a): jump resolves in place, successor survives."""
        m = self._machine()
        c0 = Config.initial({"ra": 3, "rg": 1, "rh": 1}, Memory(), 3)
        res = benchmark(run, m, c0,
                        [fetch(), fetch(True), fetch(), execute(2)])
        assert res.final.buf[2] == TJump(9)
        assert 3 in res.final.buf
        assert res.trace == (Jump(9, PUBLIC),)

    def test_incorrect_prediction(self, benchmark):
        """Fig 4(b): rollback to the branch, successor squashed."""
        m = self._machine()
        c0 = Config.initial({"ra": 3, "rg": 1, "rh": 1}, Memory(), 3)
        res = benchmark(run, m, c0,
                        [fetch(), fetch(False), fetch(), execute(2)])
        assert res.final.buf[2] == TJump(9)
        assert 3 not in res.final.buf
        assert res.trace == (Rollback(), Jump(9, PUBLIC))


class TestFig5StoreHazard:
    def test_replay(self, benchmark):
        m = Machine(assemble(
            "store 12, [0x43]\nstore 20, [3, %ra]\n%rc = load [0x43]\nhalt"))
        c0 = Config.initial({"ra": 0x40}, Memory(), 1)
        schedule = [fetch(), fetch(), fetch(), execute(1, "addr"),
                    execute(3), execute(2, "addr")]
        res = benchmark(run, m, c0, schedule)
        assert res.trace == (Fwd(0x43, PUBLIC), Fwd(0x43, PUBLIC),
                             Rollback(), Fwd(0x43, PUBLIC))
        assert res.final.pc == 3


class TestFig8Fence:
    def test_fence_blocks_and_squashes(self, benchmark):
        case = find_case("v1_fig8_fence")
        m = Machine(case.program)

        def attack_attempt():
            res = run(m, case.config(),
                      [fetch(True), fetch(), fetch(), fetch()])
            blocked = 0
            for i in (3, 4):
                try:
                    m.step(res.final, execute(i))
                except StuckError:
                    blocked += 1
            after, leak = m.step(res.final, execute(1))
            return blocked, after, leak

        blocked, after, leak = benchmark(attack_attempt)
        assert blocked == 2               # both loads fenced off
        assert after.pc == 5              # misprediction exposed
        assert Rollback() in leak

    def test_detection_clean(self, benchmark):
        from repro.pitchfork import analyze
        case = find_case("v1_fig8_fence")
        report = benchmark(analyze, case.program, case.config(),
                           bound=20, fwd_hazards=False)
        assert report.secure
