"""Partial-order reduction: pruned vs unreduced schedule exploration.

The trajectory point for ``repro.engine.por``: run the Kocher v1 suite
at speculation bound 20 (the CI smoke point) under two workloads —

* **v4** — forwarding-hazard exploration on (the §4.1 store-address
  deferral is live);
* **aliasing** — additionally the §3.5 aliasing-prediction extension
  (one guessed-forward probe per load × older store: the quadratic
  blowup the validation joins are built for);

at all three pruning levels, plus the curve25519-donna case study at
bound 20 (real code, where the store-hazard joins collapse the
forwarding-probe space outright).

Hard gates (all counters are deterministic, so the gates are exact):

* **findings identity** — every pruning level flags the identical
  violation observation set on every Kocher case and workload, and on
  donna (``sleepset`` vs ``full``; the raw baseline is *recorded* on
  donna but truncates — the unreduced space is not enumerable there,
  which is the point);
* **suite-wide step reduction** — ``full`` explores ≥ 2× fewer
  machine steps than the unreduced baseline under the v4 workload and
  ≥ 8× fewer under aliasing;
* **per-case reduction** — ≥ 7 Kocher cases shrink ≥ 2× in
  fork-by-copy machine steps (``states_stepped``), and ≥ 10 cases
  explore strictly fewer schedules at ``full`` than unreduced.  (The
  remaining single-fork gadgets have 2–4 Mazurkiewicz classes total
  and are already near-optimal — their ~1.8× ratios are recorded,
  honestly, in the JSON.)
* **donna** — ``full`` explores ≥ 10× fewer machine steps than
  ``sleepset`` (measured ~94×) with identical findings.

Running this file as a script (what the CI perf-smoke job does) writes
``BENCH_por.json``.

    PYTHONPATH=src python benchmarks/bench_por.py
"""

import json
import sys
from pathlib import Path

BOUND = 20
MAX_PATHS = 60_000
LEVELS = ("none", "sleepset", "full")
WORKLOADS = {
    "v4": dict(fwd_hazards=True),
    "aliasing": dict(fwd_hazards=True, explore_aliasing=True),
}
OUT = Path(__file__).resolve().parent.parent / "BENCH_por.json"

# The exact gates, kept in one place (also asserted by the pytest
# entry point below).
GATE_SUITE_V4 = 2.0
GATE_SUITE_ALIASING = 8.0
GATE_CASES_2X_STEPPED = 7
GATE_CASES_FEWER_SCHEDULES = 10
GATE_DONNA = 10.0


def _explore(program, config, level, rsb_policy="directive", **kw):
    from repro.core.machine import Machine
    from repro.pitchfork.explorer import ExplorationOptions, Explorer
    machine = Machine(program, rsb_policy=rsb_policy)
    options = ExplorationOptions(bound=BOUND, max_paths=MAX_PATHS,
                                 prune=level, **kw)
    return Explorer(machine, options).explore(config, stop_at_first=False)


def _obs(result):
    from repro.pitchfork import observation_set
    return observation_set(result.violations)


def run_benchmark():
    from repro.casestudies import all_case_studies
    from repro.litmus import load_suite

    record = {"suite": "kocher", "bound": BOUND,
              "workloads": sorted(WORKLOADS), "levels": list(LEVELS),
              "cases": {}, "mismatches": []}
    totals = {w: {level: {"applied": 0, "stepped": 0, "paths": 0,
                          "skipped": 0}
                  for level in LEVELS} for w in WORKLOADS}
    cases_2x_stepped = set()
    cases_fewer_schedules = set()

    for case in load_suite("kocher"):
        row = {}
        for wname, knobs in WORKLOADS.items():
            runs = {level: _explore(case.program, case.make_config(),
                                    level, rsb_policy=case.rsb_policy,
                                    **knobs)
                    for level in LEVELS}
            reference = _obs(runs["none"])
            for level in LEVELS:
                if runs[level].truncated:
                    record["mismatches"].append(
                        f"{case.name}/{wname}/{level}: truncated")
                if _obs(runs[level]) != reference:
                    record["mismatches"].append(
                        f"{case.name}/{wname}/{level}: findings diverge")
                t = totals[wname][level]
                t["applied"] += runs[level].applied_steps
                t["stepped"] += runs[level].states_stepped
                t["paths"] += runs[level].paths_explored
                t["skipped"] += runs[level].pruning.schedules_skipped
            none, full = runs["none"], runs["full"]
            stepped_ratio = none.states_stepped / max(full.states_stepped, 1)
            if stepped_ratio >= 2.0:
                cases_2x_stepped.add(case.name)
            if full.paths_explored < none.paths_explored:
                cases_fewer_schedules.add(case.name)
            row[wname] = {
                level: {"paths": runs[level].paths_explored,
                        "applied_steps": runs[level].applied_steps,
                        "states_stepped": runs[level].states_stepped,
                        "schedules_skipped":
                            runs[level].pruning.schedules_skipped}
                for level in LEVELS}
            row[wname]["stepped_reduction"] = round(stepped_ratio, 2)
            row[wname]["applied_reduction"] = round(
                none.applied_steps / max(full.applied_steps, 1), 2)
        record["cases"][case.name] = row

    record["totals"] = totals
    record["suite_reduction"] = {
        w: round(totals[w]["none"]["applied"]
                 / max(totals[w]["full"]["applied"], 1), 2)
        for w in WORKLOADS}
    record["cases_2x_stepped"] = sorted(cases_2x_stepped)
    record["cases_fewer_schedules"] = sorted(cases_fewer_schedules)

    # -- donna: real code, sleepset vs full (none is unenumerable) ----------
    donna = [v for cs in all_case_studies() for v in cs.variants()
             if v.name == "donna-c"][0]
    druns = {level: _explore(donna.program, donna.make_config(), level,
                             fwd_hazards=True)
             for level in ("none", "sleepset", "full")}
    if _obs(druns["sleepset"]) != _obs(druns["full"]):
        record["mismatches"].append("donna-c: findings diverge")
    if druns["sleepset"].truncated or druns["full"].truncated:
        record["mismatches"].append("donna-c: reduced run truncated")
    record["donna"] = {
        level: {"paths": r.paths_explored,
                "applied_steps": r.applied_steps,
                "truncated": r.truncated}
        for level, r in druns.items()}
    record["donna"]["reduction_full_vs_sleepset"] = round(
        druns["sleepset"].applied_steps
        / max(druns["full"].applied_steps, 1), 2)

    record["findings_identical"] = not record["mismatches"]
    return record


def check_gates(record):
    failures = []
    if not record["findings_identical"]:
        failures.append(f"findings diverged: {record['mismatches']}")
    if record["suite_reduction"]["v4"] < GATE_SUITE_V4:
        failures.append(f"v4 suite reduction {record['suite_reduction']}")
    if record["suite_reduction"]["aliasing"] < GATE_SUITE_ALIASING:
        failures.append(
            f"aliasing suite reduction {record['suite_reduction']}")
    if len(record["cases_2x_stepped"]) < GATE_CASES_2X_STEPPED:
        failures.append(
            f"only {record['cases_2x_stepped']} cases at >=2x stepped")
    if len(record["cases_fewer_schedules"]) < GATE_CASES_FEWER_SCHEDULES:
        failures.append(
            f"only {record['cases_fewer_schedules']} cases with "
            f"strictly fewer schedules")
    if record["donna"]["reduction_full_vs_sleepset"] < GATE_DONNA:
        failures.append(f"donna reduction "
                        f"{record['donna']['reduction_full_vs_sleepset']}")
    return failures


def write_record(record, path=OUT):
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


# -- pytest entry point -------------------------------------------------------

def test_por_gates(benchmark):
    from conftest import once
    record = once(benchmark, run_benchmark)
    write_record(record)
    failures = check_gates(record)
    assert not failures, failures


def main() -> int:
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    record = run_benchmark()
    path = write_record(record)
    print(f"partial-order reduction on the Kocher suite (bound {BOUND}):")
    for w in sorted(WORKLOADS):
        t = record["totals"][w]
        print(f"  [{w}] machine steps: {t['none']['applied']:>8} (none) -> "
              f"{t['sleepset']['applied']:>7} (sleepset) -> "
              f"{t['full']['applied']:>6} (full)  "
              f"[{record['suite_reduction'][w]}x]")
        print(f"  [{w}] schedules    : {t['none']['paths']:>8} -> "
              f"{t['sleepset']['paths']:>7} -> {t['full']['paths']:>6}")
    print(f"  cases >=2x stepped reduction: "
          f"{len(record['cases_2x_stepped'])} "
          f"({', '.join(record['cases_2x_stepped'])})")
    print(f"  cases with strictly fewer schedules: "
          f"{len(record['cases_fewer_schedules'])}/15")
    d = record["donna"]
    print(f"  donna-c: {d['sleepset']['applied_steps']} (sleepset) -> "
          f"{d['full']['applied_steps']} (full) "
          f"[{d['reduction_full_vs_sleepset']}x; unreduced truncates at "
          f"{d['none']['paths']} paths]")
    print(f"  findings identical: {record['findings_identical']}")
    print(f"wrote {path}")
    failures = check_gates(record)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
