"""Shard scaling: in-program multiprocess exploration, 1 vs 4 shards.

Two measurements, one gate each:

* **Kocher suite, bound 30** — every case explored to completion
  (``stop_at_first=False``) single-process and with ``shards=4``.
  Gate: the merged violation findings are identical to the
  single-shard run, case by case.  (The Kocher gadgets' DT(30) trees
  are tiny — the whole suite explores in tens of milliseconds — so
  this leg is the *correctness* gate, not a speedup demonstration.)
* **donna case study, bound 28** — the registry's heavy single target
  (§4.2's scaling pain point: one program saturating one core; ~9 200
  paths).  Gate: identical findings, and on a runner with ≥ 4 usable
  cores, ``shards=4`` must cut wall time by ≥ 2× over ``shards=1``.
  On fewer cores the speedup is recorded but not asserted (workers
  time-share the core and the gate would measure the scheduler, not
  the sharding).

Running this file as a script (what the CI perf-smoke job does) writes
the measurements to ``BENCH_shards.json`` and exits nonzero when the
findings gate fails; a speedup shortfall on a capable runner is
surfaced as a warning there (shared-vCPU scheduling noise must not
redden CI) and asserted hard by the pytest entry point.

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py
"""

import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

KOCHER_BOUND = 30
DONNA_BOUND = 28
SHARDS = 4
#: Wall times are min-of-REPEATS — the gate compares aggregates, and a
#: noisy-neighbour hiccup on a shared CI runner must not flip it.
REPEATS = 3
SPEEDUP_GATE = 2.0
OUT = Path(__file__).resolve().parent.parent / "BENCH_shards.json"


def _cores() -> int:
    if hasattr(os, "process_cpu_count"):          # 3.13+
        return os.process_cpu_count() or 1
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _canon_violations(result):
    from repro.pitchfork import violation_set
    return violation_set(result.violations)


def _explore(program, make_config, bound, fwd_hazards, shards, pool=None,
             rsb_policy="directive"):
    from repro.core.machine import Machine
    from repro.pitchfork import (ExplorationOptions, Explorer,
                                 ShardedExplorer)
    options = ExplorationOptions(bound=bound, fwd_hazards=fwd_hazards,
                                 max_paths=20_000)
    machine = Machine(program, rsb_policy=rsb_policy)
    if shards == 1:
        explorer = Explorer(machine, options)
    else:
        explorer = ShardedExplorer(machine, options, shards=shards,
                                   pool=pool, keep_paths=False)
    return explorer.explore(make_config(), stop_at_first=False)


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def run_benchmark():
    """Measure both legs; returns the JSON-able record."""
    from repro.casestudies import all_case_studies
    from repro.litmus import load_suite

    record = {
        "shards": SHARDS,
        "repeats": REPEATS,
        "cores": _cores(),
        "kocher": {"bound": KOCHER_BOUND, "cases": {}},
        "donna": {"bound": DONNA_BOUND},
    }
    with ProcessPoolExecutor(max_workers=SHARDS) as pool:
        # -- leg 1: Kocher suite, findings-identity gate ------------------
        mismatches = []
        wall_serial = wall_sharded = 0.0
        for case in load_suite("kocher"):
            serial = _explore(case.program, case.make_config, KOCHER_BOUND,
                              True, 1, rsb_policy=case.rsb_policy)
            sharded = _explore(case.program, case.make_config, KOCHER_BOUND,
                               True, SHARDS, pool=pool,
                               rsb_policy=case.rsb_policy)
            identical = _canon_violations(serial) == \
                _canon_violations(sharded)
            if not identical:
                mismatches.append(case.name)
            ws = min(_timed(_explore, case.program, case.make_config,
                            KOCHER_BOUND, True, 1,
                            rsb_policy=case.rsb_policy)
                     for _ in range(REPEATS))
            wp = min(_timed(_explore, case.program, case.make_config,
                            KOCHER_BOUND, True, SHARDS, pool=pool,
                            rsb_policy=case.rsb_policy)
                     for _ in range(REPEATS))
            wall_serial += ws
            wall_sharded += wp
            record["kocher"]["cases"][case.name] = {
                "paths": serial.paths_explored,
                "violations": len(serial.violations),
                "identical": identical,
                "wall_shards1": round(ws, 6),
                "wall_shards4": round(wp, 6),
            }
        record["kocher"]["findings_identical"] = not mismatches
        record["kocher"]["mismatches"] = mismatches
        record["kocher"]["wall_shards1"] = round(wall_serial, 6)
        record["kocher"]["wall_shards4"] = round(wall_sharded, 6)

        # -- leg 2: donna, the in-target scaling gate ---------------------
        donna = next(v for study in all_case_studies()
                     for v in study.variants() if v.name == "donna-c")
        serial = _explore(donna.program, donna.make_config, DONNA_BOUND,
                          False, 1)
        sharded = _explore(donna.program, donna.make_config, DONNA_BOUND,
                           False, SHARDS, pool=pool)
        record["donna"]["paths"] = serial.paths_explored
        record["donna"]["findings_identical"] = (
            _canon_violations(serial) == _canon_violations(sharded))
        record["donna"]["shard_jobs"] = len(sharded.shards)
        ws = min(_timed(_explore, donna.program, donna.make_config,
                        DONNA_BOUND, False, 1) for _ in range(REPEATS))
        wp = min(_timed(_explore, donna.program, donna.make_config,
                        DONNA_BOUND, False, SHARDS, pool=pool)
                 for _ in range(REPEATS))
        record["donna"]["wall_shards1"] = round(ws, 6)
        record["donna"]["wall_shards4"] = round(wp, 6)
        record["donna"]["speedup"] = round(ws / max(wp, 1e-9), 3)

    record["speedup_gate"] = SPEEDUP_GATE
    record["speedup_gate_active"] = record["cores"] >= SHARDS
    # The CI-failing condition is findings divergence; the speedup is
    # recorded (and asserted by the pytest entry on capable machines)
    # but a shared runner's scheduling noise must not redden CI.
    record["ok"] = (record["kocher"]["findings_identical"]
                    and record["donna"]["findings_identical"])
    record["speedup_ok"] = (not record["speedup_gate_active"]
                            or record["donna"]["speedup"] >= SPEEDUP_GATE)
    return record


def write_record(record, path=OUT):
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


# -- pytest entry points ------------------------------------------------------

def test_shard_scaling(benchmark):
    """Identical findings always; >=2x wall on >=4 usable cores."""
    from conftest import once
    record = once(benchmark, run_benchmark)
    write_record(record)
    assert record["kocher"]["findings_identical"], \
        record["kocher"]["mismatches"]
    assert record["donna"]["findings_identical"]
    if record["speedup_gate_active"]:
        assert record["donna"]["speedup"] >= SPEEDUP_GATE, record["donna"]


def main() -> int:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    record = run_benchmark()
    path = write_record(record)
    k, d = record["kocher"], record["donna"]
    print(f"shard scaling (shards={SHARDS}, cores={record['cores']}):")
    print(f"  kocher suite @ bound {KOCHER_BOUND}: findings identical = "
          f"{k['findings_identical']}; wall {k['wall_shards1']:.3f}s -> "
          f"{k['wall_shards4']:.3f}s")
    print(f"  donna @ bound {DONNA_BOUND}: {d['paths']} paths over "
          f"{d['shard_jobs']} jobs; findings identical = "
          f"{d['findings_identical']}")
    gate = ("ACTIVE" if record["speedup_gate_active"]
            else "skipped: fewer than 4 usable cores")
    print(f"  donna wall    : {d['wall_shards1']:.3f}s -> "
          f"{d['wall_shards4']:.3f}s  ({d['speedup']}x, gate {gate})")
    if not record["speedup_ok"]:
        print(f"WARNING: sharded speedup {d['speedup']}x below the "
              f"{SPEEDUP_GATE}x target on {record['cores']} cores",
              file=sys.stderr)
    print(f"wrote {path}")
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
