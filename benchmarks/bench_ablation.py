"""Ablations of the reproduction's design choices.

Quantifies the knobs that make the detector practical and the
extensions that go beyond the original tool:

* probe pruning (end mispredicted-branch paths at their rollback,
  justified by Thm B.7) — path counts with the pruning are measured
  here; see the module docstring of `repro.pitchfork.explorer`;
* per-load forwarding arms (§4.1's construction) vs. the exponential
  per-store deferral the naive reading of Def B.18 suggests;
* RSB policies (App A.2): the "directive" policy is attackable by
  ret2spec, "refuse" (AMD) and "circular" (most Intel) change the
  attack surface;
* symbolic vs concrete detection cost on the same gadget.
"""

import pytest

from conftest import once

from repro.asm import ProgramBuilder
from repro.core import Config, Machine, Memory, StuckError, Value, fetch, run
from repro.core.lattice import PUBLIC
from repro.litmus import find_case
from repro.pitchfork import (ExplorationOptions, Explorer, Sym, analyze,
                             analyze_symbolic, schedule_stats)


def _branchy_program(branches: int):
    """A chain of two-sided public branches — probe-pruning's worst
    case without it (each misprediction would re-explore the whole
    suffix, giving 2^branches paths)."""
    b = ProgramBuilder()
    for k in range(branches):
        # taken arm runs one extra op; fall-through skips it
        b.br("ltu", [f"r{k % 4}", 2], b.here() + 1, b.here() + 2)
        b.op(f"r{k % 4}", "add", [f"r{k % 4}", 1])
    b.halt()
    prog = b.build()
    cfg = Config.initial({f"r{k}": 0 for k in range(4)}, Memory(), 1)
    return Machine(prog), cfg


@pytest.mark.parametrize("branches", [4, 8, 12])
def test_probe_pruning_keeps_paths_linear(benchmark, branches):
    """With pruning, tool paths grow linearly in the branch count (one
    probe family per site, sized by how many branches fit one window)
    instead of the 2^branches a naive suffix re-exploration gives."""
    machine, cfg = _branchy_program(branches)
    stats = once(benchmark, schedule_stats, machine, cfg, 8, False)
    print(f"\nbranches={branches}: schedules={stats.schedules} "
          f"(naive would be {2 ** branches})")
    assert stats.schedules <= 32 * branches          # linear envelope
    assert stats.schedules < 2 ** branches or branches <= 6


def test_per_load_arms_vs_bound_growth(benchmark):
    """§4.1's per-load outcomes: path count grows with the number of
    *matching* stores per load, not with the total store count."""
    def build(matching: bool):
        b = ProgramBuilder()
        for k in range(4):
            b.store(k, [0x40 if matching else 0x40 + k])
        b.load("r0", [0x40])
        b.halt()
        prog = b.build()
        return Machine(prog), Config.initial({"r0": 0}, Memory(), 1)

    def measure():
        m1, c1 = build(matching=True)
        m2, c2 = build(matching=False)
        return (schedule_stats(m1, c1, 8, True).schedules,
                schedule_stats(m2, c2, 8, True).schedules)

    same_slot, distinct_slots = once(benchmark, measure)
    print(f"\n4 stores same slot: {same_slot} schedules; "
          f"distinct slots: {distinct_slots}")
    assert same_slot > distinct_slots  # matching stores create outcomes


class TestRSBPolicies:
    """Appendix A.2's three RSB-underflow behaviours on ret2spec."""

    def test_directive_policy_is_attackable(self, benchmark):
        case = find_case("ret2spec_fig12")
        m = Machine(case.program, rsb_policy="directive")
        res = once(benchmark, run, m, case.config(), case.attack_schedule)
        from repro.core import secret_observations
        assert secret_observations(res.trace)

    def test_refuse_policy_blocks_the_attack(self, benchmark):
        """AMD-style: with an empty RSB, ret does not speculate; the
        attacker's fetch: n directive is simply stuck."""
        case = find_case("ret2spec_fig12")
        m = Machine(case.program, rsb_policy="refuse")

        def attempt():
            try:
                run(m, case.config(), case.attack_schedule)
            except StuckError:
                return "stuck"
            return "ran"

        assert once(benchmark, attempt) == "stuck"

    def test_circular_policy_replays_stale_slot(self, benchmark):
        """Intel-style circular RSB: the underflowing ret predicts the
        stale popped value, not an attacker-chosen target."""
        case = find_case("ret2spec_fig12")
        m = Machine(case.program, rsb_policy="circular")

        def steer_attempt():
            try:
                run(m, case.config(), case.attack_schedule)
            except StuckError:
                return "not steerable"
            return "steered"

        assert once(benchmark, steer_attempt) == "not steerable"


def test_symbolic_vs_concrete_cost(benchmark):
    """The symbolic back end costs more per schedule but answers the
    all-inputs question; measure both on Fig 1's gadget."""
    from repro.asm import assemble
    from repro.core import layout
    from repro.core.lattice import SECRET

    prog = assemble("""
        br gt, 4, %ra -> 2, 4
        %rb = load [0x40, %ra]
        %rc = load [0x44, %rb]
        halt
    """)
    mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]), ("B", 4, PUBLIC, None),
                 ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))

    def both():
        concrete = analyze(prog, Config.initial({"ra": 9}, mem, 1),
                           bound=12, fwd_hazards=False)
        symbolic = analyze_symbolic(
            prog,
            Config.initial({"ra": Value(Sym("x", tuple(range(12))))},
                           mem, 1),
            bound=12, fwd_hazards=False)
        return concrete, symbolic

    concrete, symbolic = once(benchmark, both)
    assert not concrete.secure
    assert symbolic and all(f.model["x"] >= 4 for f in symbolic)
