"""Speculation-passing second opinion vs the pitchfork explorer.

The trajectory point for ``repro.sps``: run both backends on the full
question (``stop_at_first=False``, identical knobs) across the Kocher
v1 suite and the ``diffregress`` suite — the minimised repros of real
explorer bugs the differential sweep found — and record the agreement
verdict and each backend's deterministic counters side by side.

Hard gates (the flagged observation sets are deterministic, so the
gates are exact):

* **no disagreements** — on every case either the flagged sets are
  identical or a search budget explains the divergence
  (``explained-budget``); a divergence with both runs complete fails
  the benchmark, because it means one oracle is wrong;
* **diffregress stays caught** — every minimised regression case
  agrees with a *non-empty* flagged set: the bugs the sweep found stay
  found by both backends;
* **sps completeness** — the sequential product check finishes every
  Kocher case inside its default budgets (no truncation, no exhausted
  paths): the second opinion is a full answer, not a sample;
* **end-to-end** — ``repro analyze kocher_01 --cross-check --json``
  exits 1 (flagged, backends agreeing) and the report carries the
  schema-8 ``cross_check`` section with classification ``agree``.

Running this file as a script (what the CI perf-smoke job does) writes
``BENCH_sps.json``.

    PYTHONPATH=src python benchmarks/bench_sps.py
"""

import contextlib
import io
import json
import sys
from pathlib import Path

OUT = Path(__file__).resolve().parent.parent / "BENCH_sps.json"


def _compare(case):
    from repro.api import AnalysisOptions
    from repro.sps.diff import compare
    return compare(case.program, case.config(),
                   AnalysisOptions.for_case(case), name=case.name)


def _case_entry(rec):
    return {
        "status": rec.status,
        "observations": list(rec.pf_obs),
        "pitchfork": {"complete": rec.pf_complete,
                      "wall": round(rec.pf_wall, 4)},
        "sps": {"complete": rec.sps_complete,
                "wall": round(rec.sps_wall, 4)},
    }


def run_benchmark():
    from repro.litmus import load_suite
    from repro.sps import explore_sps

    record = {"suites": ["kocher", "diffregress"], "cases": {},
              "disagreements": [], "explained_budget": [],
              "sps_incomplete": [], "diffregress": {}}

    kocher = load_suite("kocher")
    for case in kocher:
        rec = _compare(case)
        record["cases"][case.name] = _case_entry(rec)
        if rec.disagree:
            record["disagreements"].append(case.name)
        elif rec.explained:
            record["explained_budget"].append(case.name)
        if not rec.sps_complete:
            record["sps_incomplete"].append(case.name)

    for case in load_suite("diffregress"):
        rec = _compare(case)
        record["diffregress"][case.name] = _case_entry(rec)
        if rec.disagree:
            record["disagreements"].append(case.name)

    # -- wall time (informational only; no gate reads it) -------------------
    # Min-of-N on the full second-opinion sweep of the Kocher suite —
    # the run a --cross-check user pays for on top of the explorer.
    from _timing import measure

    def sps_sweep():
        from repro.api import AnalysisOptions
        for case in kocher:
            options = AnalysisOptions.for_case(case)
            explore_sps(case.program, case.config(), bound=options.bound,
                        fwd_hazards=options.fwd_hazards,
                        explore_aliasing=options.explore_aliasing,
                        jmpi_targets=options.jmpi_targets,
                        rsb_targets=options.rsb_targets,
                        rsb_policy=options.rsb_policy,
                        max_paths=options.max_paths,
                        stop_at_first=False)

    record["timing"] = {"sps_kocher_sweep": measure(sps_sweep)}

    # -- the verdict survives the CLI --json round trip ---------------------
    from repro.api.cli import main as cli_main
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        code = cli_main(["analyze", "kocher_01", "--cross-check", "--json"])
    cli_report = json.loads(buf.getvalue())
    section = cli_report.get("cross_check") or {}
    record["cli_end_to_end"] = {
        "target": "kocher_01", "exit_code": code,
        "classification": section.get("classification"),
        "schema_version": cli_report.get("schema_version"),
    }
    return record


def check_gates(record):
    failures = []
    if record["disagreements"]:
        failures.append(f"backends disagree with both runs complete: "
                        f"{record['disagreements']}")
    if record["sps_incomplete"]:
        failures.append(f"sps truncated/exhausted on: "
                        f"{record['sps_incomplete']}")
    for name, entry in record["diffregress"].items():
        if entry["status"] != "agree" or not entry["observations"]:
            failures.append(f"regression case {name}: {entry['status']} "
                            f"with {len(entry['observations'])} obs")
    e2e = record["cli_end_to_end"]
    if (e2e["exit_code"] != 1 or e2e["classification"] != "agree"
            or e2e["schema_version"] != 8):
        failures.append(f"CLI cross-check end-to-end broken: {e2e}")
    return failures


def write_record(record, path=OUT):
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


# -- pytest entry point -------------------------------------------------------

def test_sps_gates(benchmark):
    from conftest import once
    record = once(benchmark, run_benchmark)
    write_record(record)
    failures = check_gates(record)
    assert not failures, failures


def main() -> int:
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    record = run_benchmark()
    path = write_record(record)
    statuses = [c["status"] for c in record["cases"].values()]
    agree = statuses.count("agree")
    print(f"speculation-passing second opinion on the Kocher suite:")
    print(f"  agreement: {agree}/{len(statuses)} agree, "
          f"{len(record['explained_budget'])} explained-budget, "
          f"{len(record['disagreements'])} disagree")
    pf_wall = sum(c["pitchfork"]["wall"] for c in record["cases"].values())
    sps_wall = sum(c["sps"]["wall"] for c in record["cases"].values())
    print(f"  wall (sum): pitchfork {pf_wall:.2f}s, sps {sps_wall:.2f}s")
    print(f"  diffregress: " + ", ".join(
        f"{name}={entry['status']}"
        for name, entry in sorted(record["diffregress"].items())))
    e2e = record["cli_end_to_end"]
    print(f"  CLI round trip: {e2e['target']} exit {e2e['exit_code']}, "
          f"classification {e2e['classification']} "
          f"(schema v{e2e['schema_version']})")
    print(f"wrote {path}")
    failures = check_gates(record)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
