"""Shared wall-clock measurement for the benchmark scripts.

Every BENCH record is built from deterministic counters so the JSON is
byte-stable and the gates are exact; wall time is still worth *having*
(it is what a human reading the perf-smoke log wants first), it just
must not leak into anything a gate compares.  ``measure`` is the one
sanctioned way to put wall time in a record: monotonic clock, warm-up
runs discarded, min-of-N best (the minimum is the standard noise floor
estimator — scheduling jitter only ever adds time), all runs reported
so a reader can judge the spread.  Callers stash the result under a
``timing`` key that no gate inspects.
"""

import time
from typing import Any, Callable, Dict

__all__ = ["measure"]


def measure(fn: Callable[[], Any], repeats: int = 3,
            warmup: int = 1) -> Dict[str, Any]:
    """Min-of-N wall-clock timing of ``fn`` on the monotonic clock.

        timing = measure(lambda: explorer.explore(config))
        record["timing"] = timing        # {"best": …, "runs": […], …}

    ``warmup`` runs execute first and are discarded (import caches,
    allocator warm-up); then ``repeats`` timed runs.  Returns a
    JSON-ready dict: ``clock`` ("perf_counter"), ``warmup``,
    ``repeats``, ``runs`` (each wall time, seconds, rounded to 6
    places) and ``best`` (their minimum).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    runs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        runs.append(round(time.perf_counter() - t0, 6))
    return {"clock": "perf_counter", "warmup": warmup,
            "repeats": repeats, "runs": runs, "best": min(runs)}
