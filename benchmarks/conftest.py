"""Shared helpers for the benchmark harness.

Every benchmark both *asserts* the paper's qualitative result (who
leaks, what is observed, which tool phase finds it) and *times* the
reproduction, so `pytest benchmarks/ --benchmark-only` doubles as the
experiment runner.  EXPERIMENTS.md records paper-vs-measured for each.
"""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run a slow experiment exactly once under the benchmark harness."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
