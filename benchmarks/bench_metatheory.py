"""Appendix B: the metatheory, checked empirically at scale.

Times the randomized theorem sweep (determinism, sequential
equivalence, consistency, label stability, tool soundness) that
:mod:`repro.verify` runs over generated programs.
"""

import pytest

from conftest import once

from repro.verify import run_experiments


def test_metatheory_sweep(benchmark):
    stats = once(benchmark, run_experiments, 0, 30, 4, 12)
    print(f"\n{stats.experiments} experiments, {stats.failures} failures, "
          f"{stats.skipped} vacuous")
    assert stats.ok
    assert stats.experiments >= 400


def test_metatheory_deep_programs(benchmark):
    stats = once(benchmark, run_experiments, 7, 10, 3, 20)
    print(f"\n{stats.experiments} experiments, {stats.failures} failures")
    assert stats.ok


def test_sct_definition_on_figure_one(benchmark):
    """Definition 3.1 checked directly (two-trace) over DT schedules."""
    from repro.core import Machine, check_sct
    from repro.litmus import find_case
    from repro.pitchfork import enumerate_schedules

    case = find_case("v1_fig1")
    machine = Machine(case.program)
    config = case.config()

    def check():
        schedules = enumerate_schedules(machine, config, bound=8,
                                        fwd_hazards=False)
        return check_sct(machine, config, schedules)

    result = once(benchmark, check)
    assert not result.ok                    # Fig 1 violates SCT
    assert result.counterexample is not None
