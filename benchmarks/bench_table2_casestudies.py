"""Table 2: the Pitchfork audit of the four crypto case studies.

Reproduces the paper's flag pattern under the two-phase procedure
(§4.2.1) and times the full audit plus each individual cell.

Paper's result (✓ = violation, f = forwarding-only violation)::

    Case Study                    C    FaCT
    curve25519-donna              -    -
    libsodium secretbox           ✓    -
    OpenSSL ssl3 record validate  ✓    f
    OpenSSL MEE-CBC               ✓    f
"""

import pytest

from conftest import once

from repro.api import AnalysisManager, AnalysisOptions, Project
from repro.casestudies import (all_case_studies, evaluate_variant,
                               render_table2, table2)

PAPER_TABLE2 = {
    "curve25519-donna": {"C": "clean", "FaCT": "clean"},
    "libsodium secretbox": {"C": "v1", "FaCT": "clean"},
    "OpenSSL ssl3 record validate": {"C": "v1", "FaCT": "f"},
    "OpenSSL MEE-CBC": {"C": "v1", "FaCT": "f"},
}


def test_table2_full_audit(benchmark):
    """The whole table, timed once (the paper's headline experiment)."""
    results = once(benchmark, lambda: table2(all_case_studies()))
    print("\n" + render_table2(results))
    assert results == PAPER_TABLE2


@pytest.mark.parametrize("study_name,variant_attr", [
    ("libsodium secretbox", "c"),
    ("OpenSSL ssl3 record validate", "c"),
    ("OpenSSL ssl3 record validate", "fact"),
    ("OpenSSL MEE-CBC", "c"),
    ("OpenSSL MEE-CBC", "fact"),
])
def test_flagged_cells(benchmark, study_name, variant_attr):
    """Each flagged cell individually (these stop at first violation,
    so they time the tool's time-to-first-finding)."""
    study = next(cs for cs in all_case_studies() if cs.name == study_name)
    variant = getattr(study, variant_attr)
    flag = once(benchmark, evaluate_variant, variant)
    assert flag == PAPER_TABLE2[study_name][
        "C" if variant_attr == "c" else "FaCT"]


def test_clean_cells_donna(benchmark):
    """The clean row pays full exploration cost (no early exit)."""
    study = next(cs for cs in all_case_studies()
                 if cs.name == "curve25519-donna")
    flags = once(benchmark, lambda: (evaluate_variant(study.c),
                                     evaluate_variant(study.fact)))
    assert flags == ("clean", "clean")


def test_table2_parallel_audit(benchmark):
    """The same table through the AnalysisManager worker pool: the
    batch path the API makes possible, asserted identical to serial."""
    studies = all_case_studies()
    manager = AnalysisManager("two-phase", workers=4)
    projects = [Project.from_variant(v, options=AnalysisOptions.table2())
                for cs in studies for v in cs.variants()]
    reports = once(benchmark, manager.run, projects)
    results = {cs.name: {"C": c.status, "FaCT": f.status}
               for cs, (c, f) in zip(studies,
                                     zip(reports[::2], reports[1::2]))}
    assert results == PAPER_TABLE2
