"""Figures 1, 2, 6, 7: the paper's attack walkthroughs, replayed.

Each benchmark replays the figure's exact directive schedule, asserts
the leakage sequence printed in the paper, and times the replay plus
the Pitchfork detection of the same gadget.
"""

import pytest

from repro.core import (Fwd, Machine, PUBLIC, Read, Rollback, SECRET, run)
from repro.litmus import find_case
from repro.pitchfork import analyze


def _replay(case):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    return run(machine, case.config(), case.attack_schedule)


class TestFig1SpectreV1:
    def test_replay(self, benchmark):
        case = find_case("v1_fig1")
        res = benchmark(_replay, case)
        assert res.trace == (Read(0x49, PUBLIC), Read(0xA2 + 0x44, SECRET))

    def test_detection(self, benchmark):
        case = find_case("v1_fig1")
        report = benchmark(analyze, case.program, case.config(),
                           bound=20, fwd_hazards=False)
        assert not report.secure


class TestFig2Aliasing:
    def test_replay(self, benchmark):
        case = find_case("aliasing_fig2")
        res = benchmark(_replay, case)
        assert res.trace == (Read(0x99 + 0x48, SECRET), Fwd(0x42, PUBLIC),
                             Rollback(), Fwd(0x45, PUBLIC))

    def test_detection_needs_aliasing_extension(self, benchmark):
        case = find_case("aliasing_fig2")
        def both():
            core = analyze(case.program, case.config(), bound=12,
                           fwd_hazards=True)
            extended = analyze(case.program, case.config(), bound=12,
                               fwd_hazards=True, explore_aliasing=True)
            return core, extended
        core, extended = benchmark(both)
        assert core.secure and not extended.secure


class TestFig6SpectreV11:
    def test_replay(self, benchmark):
        case = find_case("v11_fig6")
        res = benchmark(_replay, case)
        assert res.trace == (Fwd(0x45, PUBLIC), Fwd(0x45, PUBLIC),
                             Read(0x77 + 0x48, SECRET))

    def test_detection(self, benchmark):
        case = find_case("v11_fig6")
        report = benchmark(analyze, case.program, case.config(),
                           bound=20, fwd_hazards=False)
        assert not report.secure


class TestFig7SpectreV4:
    def test_replay(self, benchmark):
        case = find_case("v4_fig7")
        res = benchmark(_replay, case)
        assert res.trace == (Read(0x43, PUBLIC), Read(0x24 + 0x44, SECRET),
                             Rollback(), Fwd(0x43, PUBLIC))

    def test_detection_needs_fwd_hazards(self, benchmark):
        case = find_case("v4_fig7")
        def both():
            no_fwd = analyze(case.program, case.config(), bound=20,
                             fwd_hazards=False)
            fwd = analyze(case.program, case.config(), bound=20,
                          fwd_hazards=True)
            return no_fwd, fwd
        no_fwd, fwd = benchmark(both)
        assert no_fwd.secure and not fwd.secure
