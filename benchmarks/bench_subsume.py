"""Redundant-state subsumption: covered fork arms vs full re-exploration.

The trajectory point for ``repro.engine.subsume``: run the Kocher v1
suite at speculation bound 20 with the SeenStates table off and on, and
curve25519-donna at bound 28 — a bound at which the plain exploration
*truncates* (it hits the path cap without finishing) while the subsumed
run completes.  Loop-free gadgets re-converge after their bounds check,
so the same configuration is reached along every mispredicted arm; the
table prunes every arm after the first.

Hard gates (all counters are deterministic, so the gates are exact):

* **findings identity** — subsume on and off flag the identical
  violation observation set on every Kocher case, and on donna;
* **never more work** — on every case the subsumed run executes the
  same or fewer machine steps and explores the same or fewer paths;
* **strict reduction** — on ≥ 2 Kocher cases the table fires
  (``states_subsumed > 0``) and strictly shrinks the step count;
* **donna** — at bound 28 the plain run truncates; the subsumed run
  completes with ≥ 5× fewer machine steps and identical findings;
* **end-to-end counter** — ``states_subsumed`` survives the full trip:
  explorer → AnalysisReport → Report JSON → CLI ``--json`` output.

Running this file as a script (what the CI perf-smoke job does) writes
``BENCH_subsume.json``.

    PYTHONPATH=src python benchmarks/bench_subsume.py
"""

import contextlib
import io
import json
import sys
from pathlib import Path

BOUND = 20
DONNA_BOUND = 28
MAX_PATHS = 20_000
MAX_STEPS = 200_000
OUT = Path(__file__).resolve().parent.parent / "BENCH_subsume.json"

# The exact gates, kept in one place (also asserted by the pytest
# entry point below).
GATE_CASES_STRICT = 2
GATE_DONNA = 5.0


def _explore(program, config, subsume, rsb_policy="directive",
             bound=BOUND, **kw):
    from repro.core.machine import Machine
    from repro.pitchfork.explorer import ExplorationOptions, Explorer
    machine = Machine(program, rsb_policy=rsb_policy)
    options = ExplorationOptions(bound=bound, max_paths=MAX_PATHS,
                                 max_steps=MAX_STEPS, subsume=subsume,
                                 **kw)
    return Explorer(machine, options).explore(config, stop_at_first=False)


def _obs(result):
    from repro.pitchfork import observation_set
    return observation_set(result.violations)


def run_benchmark():
    from repro.casestudies import all_case_studies
    from repro.litmus import load_suite

    record = {"suite": "kocher", "bound": BOUND, "cases": {},
              "mismatches": []}
    totals = {flag: {"applied": 0, "paths": 0, "subsumed": 0}
              for flag in ("off", "on")}
    strict_cases = []

    for case in load_suite("kocher"):
        off = _explore(case.program, case.make_config(), False,
                       rsb_policy=case.rsb_policy, fwd_hazards=True)
        on = _explore(case.program, case.make_config(), True,
                      rsb_policy=case.rsb_policy, fwd_hazards=True)
        if _obs(on) != _obs(off):
            record["mismatches"].append(f"{case.name}: findings diverge")
        if on.applied_steps > off.applied_steps:
            record["mismatches"].append(f"{case.name}: subsumed run "
                                        f"stepped more")
        if on.paths_explored > off.paths_explored:
            record["mismatches"].append(f"{case.name}: subsumed run "
                                        f"explored more paths")
        subsumed = on.subsumption.states_subsumed
        if subsumed > 0 and on.applied_steps < off.applied_steps:
            strict_cases.append(case.name)
        totals["off"]["applied"] += off.applied_steps
        totals["off"]["paths"] += off.paths_explored
        totals["on"]["applied"] += on.applied_steps
        totals["on"]["paths"] += on.paths_explored
        totals["on"]["subsumed"] += subsumed
        record["cases"][case.name] = {
            "off": {"paths": off.paths_explored,
                    "applied_steps": off.applied_steps},
            "on": {"paths": on.paths_explored,
                   "applied_steps": on.applied_steps,
                   "states_seen": on.subsumption.states_seen,
                   "states_subsumed": subsumed},
            "step_reduction": round(
                off.applied_steps / max(on.applied_steps, 1), 2),
        }

    record["totals"] = totals
    record["strict_reduction_cases"] = sorted(strict_cases)

    # -- donna: a bound the plain exploration cannot finish -----------------
    donna = [v for cs in all_case_studies() for v in cs.variants()
             if v.name == "donna-c"][0]
    doff = _explore(donna.program, donna.make_config(), False,
                    bound=DONNA_BOUND, fwd_hazards=True)
    don = _explore(donna.program, donna.make_config(), True,
                   bound=DONNA_BOUND, fwd_hazards=True)
    if _obs(don) != _obs(doff):
        record["mismatches"].append("donna-c: findings diverge")
    record["donna"] = {
        "bound": DONNA_BOUND,
        "off": {"paths": doff.paths_explored,
                "applied_steps": doff.applied_steps,
                "truncated": doff.truncated},
        "on": {"paths": don.paths_explored,
               "applied_steps": don.applied_steps,
               "truncated": don.truncated,
               "states_subsumed": don.subsumption.states_subsumed},
        "step_reduction": round(
            doff.applied_steps / max(don.applied_steps, 1), 2),
    }

    # -- wall time (informational only; no gate reads it) -------------------
    # Everything above is deterministic counters; this timing block is
    # the record's only wall-clock content.  Min-of-N on the subsumed
    # donna exploration — the run the trajectory point is about.
    from _timing import measure
    record["timing"] = {
        "donna_subsumed": measure(
            lambda: _explore(donna.program, donna.make_config(), True,
                             bound=DONNA_BOUND, fwd_hazards=True)),
    }

    # -- the counter survives the Report + CLI round trip -------------------
    from repro.api.cli import main as cli_main
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        code = cli_main(["analyze", "kocher_05", "--subsume",
                         "--bound", str(BOUND), "--json"])
    cli_report = json.loads(buf.getvalue())
    record["cli_end_to_end"] = {
        "target": "kocher_05", "exit_code": code,
        "states_subsumed":
            (cli_report.get("subsumption") or {}).get("states_subsumed", 0),
        "schema_version": cli_report.get("schema_version"),
    }

    record["findings_identical"] = not any(
        "findings diverge" in m for m in record["mismatches"])
    return record


def check_gates(record):
    failures = []
    if record["mismatches"]:
        failures.append(f"invariants violated: {record['mismatches']}")
    if len(record["strict_reduction_cases"]) < GATE_CASES_STRICT:
        failures.append(f"table fired on only "
                        f"{record['strict_reduction_cases']}")
    donna = record["donna"]
    if not donna["off"]["truncated"]:
        failures.append("donna plain run no longer truncates at bound "
                        f"{donna['bound']} — raise DONNA_BOUND so the "
                        f"gate keeps measuring an unreachable baseline")
    if donna["on"]["truncated"]:
        failures.append("donna subsumed run truncated")
    if donna["on"]["states_subsumed"] <= 0:
        failures.append("donna: table never fired")
    if donna["step_reduction"] < GATE_DONNA:
        failures.append(f"donna step reduction {donna['step_reduction']}")
    e2e = record["cli_end_to_end"]
    if e2e["states_subsumed"] <= 0 or e2e["exit_code"] not in (0, 1):
        failures.append(f"CLI end-to-end counter missing: {e2e}")
    return failures


def write_record(record, path=OUT):
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


# -- pytest entry point -------------------------------------------------------

def test_subsume_gates(benchmark):
    from conftest import once
    record = once(benchmark, run_benchmark)
    write_record(record)
    failures = check_gates(record)
    assert not failures, failures


def main() -> int:
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    record = run_benchmark()
    path = write_record(record)
    t = record["totals"]
    print(f"redundant-state subsumption on the Kocher suite "
          f"(bound {BOUND}):")
    print(f"  machine steps: {t['off']['applied']:>8} (off) -> "
          f"{t['on']['applied']:>7} (on)  "
          f"[{round(t['off']['applied'] / max(t['on']['applied'], 1), 2)}x, "
          f"{t['on']['subsumed']} arms subsumed]")
    print(f"  schedules    : {t['off']['paths']:>8} -> "
          f"{t['on']['paths']:>7}")
    print(f"  strict-reduction cases: "
          f"{', '.join(record['strict_reduction_cases'])}")
    d = record["donna"]
    print(f"  donna-c @ bound {d['bound']}: {d['off']['applied_steps']} "
          f"steps (off, truncated={d['off']['truncated']}) -> "
          f"{d['on']['applied_steps']} (on, complete) "
          f"[{d['step_reduction']}x, "
          f"{d['on']['states_subsumed']} arms subsumed]")
    e2e = record["cli_end_to_end"]
    print(f"  CLI round trip: {e2e['target']} reports "
          f"states_subsumed={e2e['states_subsumed']} "
          f"(schema v{e2e['schema_version']})")
    print(f"  findings identical: {record['findings_identical']}")
    print(f"wrote {path}")
    failures = check_gates(record)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
