"""Serve-mode economics: warm daemon submits vs cold CLI processes.

The serve subsystem's claim is that analysis-as-a-service amortises
what one-shot CLI calls pay every time: interpreter + import start-up,
worker-pool spawn, and the exploration itself (via the persistent
result store).  This benchmark measures that claim on a 10-case batch:

* **cold** — one ``python -m repro analyze <case> --json`` subprocess
  per case: the pre-serve unit of work, starting from nothing;
* **warm** — the same batch resubmitted over one socket to a running
  daemon that has already seen the keys: answered from the in-memory
  tier, no pool traffic;
* **store** — the batch against a *freshly restarted* daemon over the
  same store directory: answered from disk, the pool never starts.

Gates (both hard — this is the PR's acceptance bar):

* findings identity — every daemon report is byte-identical (modulo
  wall-clock fields, :func:`repro.serve.strip_volatile`) to the cold
  CLI report for the same case: **100 %** of the batch;
* warm speedup — the warm batch completes **≥ 3×** faster than the
  cold batch.  (In practice the margin is orders of magnitude — warm
  hits skip process start-up *and* exploration — so shared-runner
  noise cannot flip the gate.)

Running as a script (the CI perf-smoke job) writes ``BENCH_serve.json``
and exits nonzero when a gate fails:

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

CASES = [f"kocher_{i:02d}" for i in range(1, 11)]
SPEEDUP_GATE = 3.0
#: Warm walls are min-of-REPEATS (cheap; cold subprocess runs are
#: measured once — start-up cost is the thing being measured, noise
#: and all).
REPEATS = 3
OUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
SRC = str(Path(__file__).resolve().parent.parent / "src")


def _cold_run(case: str):
    """One pre-serve unit of work: a fresh CLI process, timed."""
    env = dict(os.environ, PYTHONPATH=SRC)
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", case, "--json"],
        capture_output=True, text=True, env=env)
    wall = time.perf_counter() - t0
    if proc.returncode not in (0, 1):            # 1 = violation found
        raise RuntimeError(f"cold analyze {case} failed "
                           f"(exit {proc.returncode}): {proc.stderr}")
    return wall, json.loads(proc.stdout)


def run_benchmark():
    from repro.serve import ServeClient, start_in_thread, strip_volatile

    record = {"cases": CASES, "speedup_gate": SPEEDUP_GATE,
              "repeats": REPEATS, "per_case": {}}

    # -- cold leg: one subprocess per case --------------------------------
    cold_wall = 0.0
    cold_reports = {}
    for case in CASES:
        wall, payload = _cold_run(case)
        cold_wall += wall
        cold_reports[case] = strip_volatile(payload)
        record["per_case"][case] = {"cold_wall": round(wall, 6)}
    record["cold_wall"] = round(cold_wall, 6)

    tmp = tempfile.mkdtemp(prefix="repro-bench-serve-")
    sock = os.path.join(tmp, "daemon.sock")
    store = os.path.join(tmp, "store")
    mismatches = []

    # -- fill + warm leg: one daemon, one client, one socket --------------
    handle = start_in_thread(socket_path=sock, store=store, workers=2)
    try:
        with ServeClient(socket_path=sock) as client:
            for case in CASES:                       # fill (computed)
                report, _ = client.submit_and_wait(
                    {"kind": "name", "name": case})
                if strip_volatile(report.to_dict()) != cold_reports[case]:
                    mismatches.append(case)
            warm_wall = None
            for _ in range(REPEATS):                 # warm (memory tier)
                t0 = time.perf_counter()
                for case in CASES:
                    client.submit_and_wait({"kind": "name", "name": case})
                wall = time.perf_counter() - t0
                warm_wall = wall if warm_wall is None \
                    else min(warm_wall, wall)
            stats = client.stats()
    finally:
        handle.stop()
    record["warm_wall"] = round(warm_wall, 6)
    record["warm_source_counts"] = stats["cache"]

    # -- store leg: restarted daemon, disk tier, pool never starts --------
    handle = start_in_thread(socket_path=sock, store=store, workers=2)
    try:
        with ServeClient(socket_path=sock) as client:
            t0 = time.perf_counter()
            for case in CASES:
                report, cache = client.submit_and_wait(
                    {"kind": "name", "name": case})
                if strip_volatile(report.to_dict()) != cold_reports[case]:
                    mismatches.append(f"{case} (store)")
            record["store_wall"] = round(time.perf_counter() - t0, 6)
            record["store_pool_started"] = handle.server.pool.started
    finally:
        handle.stop()

    record["mismatches"] = mismatches
    record["findings_identical"] = not mismatches
    record["identity_rate"] = round(
        1.0 - len(set(m.split(" ")[0] for m in mismatches)) / len(CASES),
        3)
    record["speedup"] = round(cold_wall / max(warm_wall, 1e-9), 2)
    record["speedup_ok"] = record["speedup"] >= SPEEDUP_GATE
    record["ok"] = (record["findings_identical"] and record["speedup_ok"]
                    and record["store_pool_started"] is False)
    return record


def write_record(record, path=OUT):
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


# -- pytest entry point -------------------------------------------------------

def test_serve_warm_vs_cold(benchmark):
    """100% findings identity; warm batch >=3x faster than cold."""
    from conftest import once
    record = once(benchmark, run_benchmark)
    write_record(record)
    assert record["findings_identical"], record["mismatches"]
    assert record["speedup_ok"], record["speedup"]
    assert record["store_pool_started"] is False


def main() -> int:
    sys.path.insert(0, SRC)
    record = run_benchmark()
    path = write_record(record)
    print(f"serve warm-vs-cold ({len(CASES)} cases):")
    print(f"  cold  (one process per case): {record['cold_wall']:.3f}s")
    print(f"  warm  (resident daemon)     : {record['warm_wall']:.3f}s  "
          f"({record['speedup']}x, gate >= {SPEEDUP_GATE}x)")
    print(f"  store (restarted daemon)    : {record['store_wall']:.3f}s  "
          f"(pool started: {record['store_pool_started']})")
    print(f"  findings identity: {record['identity_rate']:.0%}"
          + (f"; MISMATCHES: {record['mismatches']}"
             if record["mismatches"] else ""))
    print(f"wrote {path}")
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
