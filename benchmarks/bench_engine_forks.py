"""Engine speedup: prefix-shared replay vs from-scratch replay.

The first trajectory point for the execution engine (`repro.engine`):
run the Kocher v1 suite's symbolic analysis — at speculation bound 20
(the CI smoke point) and at 30 (paper-scale; sharing compounds with
the window size) — twice per case:

* **baseline** — the pre-refactor pipeline, kept here verbatim:
  enumerate DT(bound) flat (no trial-step cache), then replay *every*
  schedule from step 0 with :meth:`SymbolicRunner.run`;
* **engine** — :func:`analyze_symbolic_result`: enumerate once keeping
  the DFS fork structure, then walk the schedule tree so each shared
  prefix executes once (fully concrete targets harvest the recorded
  traces outright).

Both produce identical findings (asserted), and the engine must hit
the PR's acceptance bar: **≥ 3× fewer machine steps** and **≥ 2× lower
wall time** across the suite.  Running this file as a script (what the
CI perf-smoke job does) writes the measurements to ``BENCH_engine.json``.

    PYTHONPATH=src python benchmarks/bench_engine_forks.py
"""

import json
import sys
import time
from pathlib import Path

BOUNDS = (20, 30)
FWD_MODES = (False, True)
#: Wall times are min-of-REPEATS per (case, bound, mode) — the gate
#: compares aggregates, so a single noisy-neighbour hiccup on a shared
#: CI runner must not be able to flip the >=2x wall assertion.
REPEATS = 5
OUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


class _UncachedEvaluator:
    """Marker evaluator: concrete semantics, engine step cache off —
    the seed's enumeration re-executed every trial-stepped directive,
    so the baseline must too."""

    pure = False

    def __new__(cls):
        from repro.core.isa import ConcreteEvaluator
        obj = ConcreteEvaluator()
        obj.pure = False
        return obj


def _naive_analyze(program, config, bound, fwd_hazards,
                   max_schedules=512, max_worlds=256):
    """The seed pipeline: flat enumeration (no trial-step cache), then
    replay each schedule from step 0.

    Returns (findings, machine steps) — enumeration steps are counted
    through the explorer's engine, replay steps through the runner.
    """
    from repro.core.machine import Machine
    from repro.core.observations import secret_observations
    from repro.pitchfork.explorer import ExplorationOptions, Explorer
    from repro.pitchfork.symex import (SymbolicFinding, SymbolicRunner,
                                       representative_config)
    rep = representative_config(config)
    machine = Machine(program, evaluator=_UncachedEvaluator())
    options = ExplorationOptions(bound=bound, fwd_hazards=fwd_hazards,
                                 max_paths=max_schedules,
                                 assume_unknown_branches=True)
    explorer = Explorer(machine, options)
    schedules = [p.schedule for p in explorer.explore(rep).paths
                 if p.complete]
    runner = SymbolicRunner(program, max_worlds=max_worlds)
    findings = []
    for schedule in schedules:
        for world in runner.run(config, schedule):
            leaks = secret_observations(tuple(world.trace))
            if not leaks:
                continue
            model = world.model()
            if model is None:
                continue
            for obs in leaks:
                findings.append(SymbolicFinding(
                    obs, schedule, tuple(world.constraints), model))
    steps = explorer.engine.stats.steps + runner.stats.steps
    return findings, steps


def _engine_analyze(program, config, bound, fwd_hazards):
    from repro.pitchfork.symex import analyze_symbolic_result
    result = analyze_symbolic_result(program, config, bound=bound,
                                     fwd_hazards=fwd_hazards)
    return result.findings, result.states_stepped, result.states_reused


def _suite():
    from repro.litmus import load_suite
    return load_suite("kocher")


def run_benchmark():
    """Measure both pipelines across the suite; returns the record."""
    cases = [(case, case.make_config()) for case in _suite()]
    record = {
        "suite": "kocher",
        "bounds": list(BOUNDS),
        "fwd_modes": list(FWD_MODES),
        "repeats": REPEATS,
        "cases": {},
    }
    total = {"steps_baseline": 0, "steps_engine": 0, "states_reused": 0,
             "wall_baseline": 0.0, "wall_engine": 0.0}
    mismatches = []
    for case, config in cases:
        row = {}
        for bound in BOUNDS:
            for fwd in FWD_MODES:
                base_findings, base_steps = _naive_analyze(
                    case.program, config, bound, fwd)
                eng_findings, eng_steps, reused = _engine_analyze(
                    case.program, config, bound, fwd)
                if sorted(map(repr, base_findings)) != \
                        sorted(map(repr, eng_findings)):
                    mismatches.append((case.name, bound, fwd))
                wall_base = min(
                    _timed(_naive_analyze, case.program, config, bound, fwd)
                    for _ in range(REPEATS))
                wall_eng = min(
                    _timed(_engine_analyze, case.program, config, bound, fwd)
                    for _ in range(REPEATS))
                row[f"bound={bound} fwd={fwd}"] = {
                    "findings": len(eng_findings),
                    "steps_baseline": base_steps,
                    "steps_engine": eng_steps,
                    "states_reused": reused,
                    "wall_baseline": round(wall_base, 6),
                    "wall_engine": round(wall_eng, 6),
                }
                total["steps_baseline"] += base_steps
                total["steps_engine"] += eng_steps
                total["states_reused"] += reused
                total["wall_baseline"] += wall_base
                total["wall_engine"] += wall_eng
        record["cases"][case.name] = row
    record["total"] = {
        **{k: (round(v, 6) if isinstance(v, float) else v)
           for k, v in total.items()},
        "step_speedup": round(
            total["steps_baseline"] / max(total["steps_engine"], 1), 3),
        "wall_speedup": round(
            total["wall_baseline"] / max(total["wall_engine"], 1e-9), 3),
    }
    record["findings_identical"] = not mismatches
    record["mismatches"] = [f"{n} bound={b} fwd={f}"
                            for n, b, f in mismatches]
    return record


def _timed(fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def write_record(record, path=OUT):
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


# -- pytest entry points ------------------------------------------------------

def test_engine_beats_baseline(benchmark):
    """≥3× fewer machine steps and ≥2× lower wall time, identical
    findings — the PR's acceptance bar, measured on the spot."""
    from conftest import once
    record = once(benchmark, run_benchmark)
    write_record(record)
    assert record["findings_identical"], record["mismatches"]
    assert record["total"]["step_speedup"] >= 3.0, record["total"]
    assert record["total"]["wall_speedup"] >= 2.0, record["total"]


def main() -> int:
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    record = run_benchmark()
    path = write_record(record)
    total = record["total"]
    print(f"engine vs baseline on the Kocher suite (bounds {BOUNDS}):")
    print(f"  machine steps : {total['steps_baseline']:>8} -> "
          f"{total['steps_engine']:>8}  ({total['step_speedup']}x)")
    print(f"  states reused : {total['states_reused']:>8}")
    print(f"  wall time     : {total['wall_baseline']:>8.4f}s -> "
          f"{total['wall_engine']:>8.4f}s  ({total['wall_speedup']}x)")
    print(f"  findings identical: {record['findings_identical']}")
    print(f"wrote {path}")
    ok = (record["findings_identical"]
          and total["step_speedup"] >= 3.0
          and total["wall_speedup"] >= 2.0)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
