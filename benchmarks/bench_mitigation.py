"""Mitigation synthesis: minimal placement vs the blanket baseline.

Three legs, two hard gates:

* **Kocher suite, fence policy** — every speculatively-leaking,
  sequentially-CT Kocher case is repaired with fences only.
  Gate A (hard): every repaired case re-verifies clean, its certificate
  checks out from scratch, and its sequential semantics are preserved.
  Gate B (hard): the minimal placement inserts *strictly fewer* fences
  than the blanket Fig 8 pass on at least :data:`FEWER_GATE` cases.
* **Kocher suite, auto policy** — the same cases repaired with SLH
  masking preferred; records mask counts and the (usually zero) fence
  counts, plus sequential-step overhead and repair wall time.
* **Case studies (ssl3 / mee-cbc)** — the Table 2 cells that leak at
  the phase-2 bound, repaired end to end (gated clean like Gate A):
  the repair workload generalizes past litmus-sized gadgets.

Running this file as a script (what the CI perf-smoke job does) writes
``BENCH_mitigate.json`` and exits nonzero when a hard gate fails; the
pytest entry point asserts the same gates under the benchmark harness.

    PYTHONPATH=src python benchmarks/bench_mitigation.py
"""

import json
import os
import sys
import time
from pathlib import Path

#: Minimum number of repaired Kocher cases that must beat the blanket
#: fence count strictly (the PR's acceptance gate).
FEWER_GATE = 10
CASESTUDY_BOUND = 20
OUT = Path(__file__).resolve().parent.parent / "BENCH_mitigate.json"


def _repair_case(case, policy):
    from repro.api import AnalysisOptions
    from repro.mitigate import repair, verify_certificate
    options = AnalysisOptions.for_case(case)
    kwargs = dict(bound=options.bound, fwd_hazards=options.fwd_hazards,
                  explore_aliasing=options.explore_aliasing,
                  jmpi_targets=options.jmpi_targets,
                  rsb_targets=options.rsb_targets,
                  max_paths=options.max_paths)
    t0 = time.perf_counter()
    result = repair(case.program, case.make_config(), name=case.name,
                    policy=policy, rsb_policy=case.rsb_policy, **kwargs)
    wall = time.perf_counter() - t0
    certified = verify_certificate(result.certificate, case.make_config(),
                                   rsb_policy=case.rsb_policy,
                                   original=case.program, **kwargs)
    return result, certified, wall


def _case_row(case, result, certified, wall):
    from repro.litmus import expected_repair_status
    return {
        "status": result.status,
        "expected": expected_repair_status(case),
        "fences": result.fences_added,
        "slh_sites": result.slh_sites,
        "blanket_fences": result.blanket_fences,
        "shrink_removed": result.shrink_removed,
        "overhead_steps": result.overhead_steps,
        "sequential_steps": result.sequential_steps,
        "verifications": result.verifications,
        "certified": certified,
        "semantics_preserved": result.semantics_preserved,
        "wall_time": round(wall, 6),
    }


def run_benchmark():
    """Measure all three legs; returns the JSON-able record."""
    from repro.casestudies import all_case_studies, repair_variant
    from repro.litmus import load_suite

    record = {"fewer_gate": FEWER_GATE,
              "kocher_fence": {}, "kocher_auto": {}, "casestudies": {}}
    clean = True
    strictly_fewer = 0
    for case in load_suite("kocher"):
        for policy, leg in (("fence", "kocher_fence"),
                            ("auto", "kocher_auto")):
            result, certified, wall = _repair_case(case, policy)
            row = _case_row(case, result, certified, wall)
            record[leg][case.name] = row
            ok = (row["status"] == row["expected"] and certified
                  and result.semantics_preserved)
            clean = clean and ok
            if policy == "fence" and row["status"] == "repaired" and \
                    row["fences"] < row["blanket_fences"]:
                strictly_fewer += 1

    from repro.mitigate import verify_certificate
    for study in all_case_studies():
        for variant in study.variants():
            if variant.name.split("-")[0] not in ("ssl3", "mee"):
                continue   # donna/secretbox are clean below bound ~24
            t0 = time.perf_counter()
            report = repair_variant(variant, bound=CASESTUDY_BOUND)
            wall = time.perf_counter() - t0
            m = report.mitigation
            # Same knobs repair_variant hands the verifier.
            certified = verify_certificate(
                m, variant.make_config(), original=variant.program,
                bound=CASESTUDY_BOUND, max_paths=20_000)
            record["casestudies"][variant.name] = {
                "status": report.status,
                "fences": m["fences_added"],
                "slh_sites": m["slh_sites"],
                "blanket_fences": m["blanket_fences"],
                "overhead_steps": m["overhead_steps"],
                "certified": certified,
                "semantics_preserved": m["semantics_preserved"],
                "wall_time": round(wall, 6),
            }
            clean = clean and certified and m["semantics_preserved"] \
                and report.status in ("repaired", "already-secure")

    record["strictly_fewer"] = strictly_fewer
    record["all_repairs_clean"] = clean
    record["fewer_gate_ok"] = strictly_fewer >= FEWER_GATE
    record["ok"] = clean and record["fewer_gate_ok"]
    return record


def write_record(record, path=OUT):
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


# -- pytest entry point -------------------------------------------------------

def test_mitigation_minimality(benchmark):
    """Every repaired Kocher case re-verifies clean; the minimal
    placement beats the blanket fence count on >= FEWER_GATE cases."""
    from conftest import once
    record = once(benchmark, run_benchmark)
    write_record(record)
    bad = {name: row for leg in ("kocher_fence", "kocher_auto")
           for name, row in record[leg].items()
           if row["status"] != row["expected"] or not row["certified"]}
    assert not bad, bad
    assert record["all_repairs_clean"]
    assert record["strictly_fewer"] >= FEWER_GATE, record["strictly_fewer"]


def main() -> int:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    record = run_benchmark()
    path = write_record(record)
    fence = record["kocher_fence"]
    auto = record["kocher_auto"]
    repaired = [n for n, r in fence.items() if r["status"] == "repaired"]
    print("mitigation synthesis (Kocher suite):")
    print(f"  repaired (fence policy): {len(repaired)} cases, "
          f"{sum(fence[n]['fences'] for n in repaired)} fences total vs "
          f"{sum(fence[n]['blanket_fences'] for n in repaired)} blanket")
    print(f"  strictly fewer than blanket on {record['strictly_fewer']} "
          f"cases (gate: >= {record['fewer_gate']})")
    masks = sum(r["slh_sites"] for r in auto.values())
    fences_auto = sum(r["fences"] for r in auto.values())
    print(f"  auto policy: {masks} SLH masks + {fences_auto} fences")
    for name, row in record["casestudies"].items():
        print(f"  {name}: {row['status']} ({row['fences']} fences, "
              f"{row['slh_sites']} masks, +{row['overhead_steps']} seq "
              f"steps, {row['wall_time']:.2f}s)")
    print(f"  all repairs clean & certified: {record['all_repairs_clean']}")
    print(f"wrote {path}")
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
