"""§4.2 scalability: path explosion vs speculation bound.

The paper: "exploring every speculative branch and potential
store-forward within a given speculation bound leads to an explosion in
state space.  In our tests, we were able to support speculation bounds
of up to 20 instructions.  We were able to increase this bound to 250
instructions when we disabled checking for store-forwarding hazards."

These benchmarks regenerate the underlying series: tool-schedule counts
as a function of the bound, with and without forwarding-hazard
exploration, plus the bound-sensitivity of gadget detection.
"""

import pytest

from conftest import once

from repro.asm import ProgramBuilder
from repro.core import Config, Machine, Memory
from repro.litmus import find_case
from repro.pitchfork import analyze, schedule_stats


def _store_load_chain(n: int):
    """n store/load pairs to one slot: every pair adds forwarding
    outcomes, the worst case for fwd-hazard exploration."""
    b = ProgramBuilder()
    for k in range(n):
        b.store(k, [0x40])
        b.load("r0", [0x40])
    b.halt()
    prog = b.build()
    return Machine(prog), Config.initial({"r0": 0}, Memory(), 1)


@pytest.mark.parametrize("bound", [4, 8, 12, 16, 20])
def test_schedules_with_fwd_hazards(benchmark, bound):
    machine, config = _store_load_chain(4)
    stats = once(benchmark, schedule_stats, machine, config, bound, True)
    print(f"\nbound={bound:3}  fwd=on   schedules={stats.schedules:6}  "
          f"steps={stats.total_steps}")
    assert stats.schedules >= 1


@pytest.mark.parametrize("bound", [4, 20, 60, 120, 250])
def test_schedules_without_fwd_hazards(benchmark, bound):
    """Without forwarding exploration even bound 250 stays trivial —
    the paper's reason for the 250/20 split."""
    machine, config = _store_load_chain(4)
    stats = once(benchmark, schedule_stats, machine, config, bound, False)
    print(f"\nbound={bound:3}  fwd=off  schedules={stats.schedules:6}  "
          f"steps={stats.total_steps}")
    assert stats.schedules == 1


def test_explosion_crossover(benchmark):
    """The with-forwarding series grows where the without-series stays
    flat: the shape behind Table 2's two-phase procedure."""
    machine, config = _store_load_chain(5)

    def series():
        with_fwd = [schedule_stats(machine, config, b, True).schedules
                    for b in (4, 8, 12, 16)]
        without = [schedule_stats(machine, config, b, False).schedules
                   for b in (4, 8, 12, 16)]
        return with_fwd, without

    with_fwd, without = once(benchmark, series)
    print(f"\nfwd=on : {with_fwd}\nfwd=off: {without}")
    assert without == [1, 1, 1, 1]
    assert with_fwd[-1] > with_fwd[0]          # grows with the bound
    assert with_fwd[-1] > without[-1] * 10     # and dwarfs the off-series


@pytest.mark.parametrize("bound,found", [(12, False), (24, True),
                                         (40, True)])
def test_detection_depth_secretbox(benchmark, bound, found):
    """The Fig 9 gadget needs ≥ 24 in-flight instructions: shallow
    bounds miss real bugs, the paper's motivation for bound 250."""
    from repro.casestudies.secretbox import case_study
    variant = case_study().c
    report = once(benchmark, analyze, variant.program, variant.config(),
                  bound, False)
    assert (not report.secure) == found


@pytest.mark.parametrize("bound,found", [(12, False), (40, True)])
def test_detection_depth_loop_gadget(benchmark, bound, found):
    """kocher_05's loop-carried leak likewise needs a deep window."""
    case = find_case("kocher_05")
    report = once(benchmark, analyze, case.program, case.config(),
                  bound, False)
    assert (not report.secure) == found
