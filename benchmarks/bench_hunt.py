"""Best-first violation hunting: steps-to-first-violation, mcts vs dfs.

The trajectory point for ``repro.engine.mcts``: on every litmus case
flagged ``leaks_speculatively`` — the hunting population, including the
haystack suite whose gadgets hide behind decoy work — run each search
strategy with ``stop_at_first`` and record the engine's deterministic
time-to-first-violation counters (frontier pops and applied machine
steps).  Wall time lives only in the record's ``timing`` block
(min-of-N via :mod:`_timing`); every gate compares counters, so the
gated content stays byte-stable run to run.

Context for reading the numbers: the single-gadget litmus programs are
near DFS-optimal by construction — the violating arm is the
mispredicted one the explorer pushes last, which is exactly what a
LIFO order pops first, so on most of them the best any strategy can do
is tie.  The steering signals pay off where there is straw to skip:
the haystack cases and the handful of classic cases (kocher_05's loop,
kocher_10's value-dependent branch) whose violating schedule is not
the depth-first one.

Hard gates (all counters are deterministic, so the gates are exact):

* **completeness** — every strategy finds a violation on every flagged
  case within the step/path caps (a frontier that loses findings is
  broken, per Theorem B.20's order-invariance);
* **findings identity** — run to completion, ``mcts`` flags the
  identical violation observation set as ``dfs`` on every flagged
  case;
* **median** — the mcts median steps-to-first-violation is *strictly
  below* the dfs median over the flagged population;
* **haystacks** — mcts strictly beats dfs on every haystack case;
* **anytime end-to-end** — a budgeted CLI hunt on ``haystack_01``
  reports ``first_violation`` and ``anytime`` stats through ``--json``.

Running this file as a script (what the CI perf-smoke job does) writes
``BENCH_hunt.json``.

    PYTHONPATH=src python benchmarks/bench_hunt.py
"""

import contextlib
import io
import json
import statistics
import sys
from pathlib import Path

BOUND = 20
MAX_PATHS = 20_000
MAX_STEPS = 200_000
STRATEGIES = ("dfs", "coverage", "mcts")
OUT = Path(__file__).resolve().parent.parent / "BENCH_hunt.json"


def _options(case, strategy):
    from repro.pitchfork.explorer import ExplorationOptions
    return ExplorationOptions(
        bound=max(BOUND, case.min_bound), max_paths=MAX_PATHS,
        max_steps=MAX_STEPS, strategy=strategy,
        fwd_hazards=case.needs_fwd_hazards,
        explore_aliasing=case.needs_aliasing,
        jmpi_targets=case.jmpi_targets, rsb_targets=case.rsb_targets)


def _explore(case, strategy, stop_at_first):
    from repro.core.machine import Machine
    from repro.pitchfork.explorer import Explorer
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    explorer = Explorer(machine, _options(case, strategy))
    return explorer.explore(case.make_config(), stop_at_first=stop_at_first)


def _obs(result):
    from repro.pitchfork import observation_set
    return observation_set(result.violations)


def run_benchmark():
    from repro.litmus import all_cases

    flagged = [c for c in all_cases() if c.leaks_speculatively]
    record = {"bound": BOUND, "strategies": list(STRATEGIES), "cases": {},
              "mismatches": []}
    steps = {s: [] for s in STRATEGIES}

    for case in flagged:
        row = {}
        for strategy in STRATEGIES:
            hunt = _explore(case, strategy, stop_at_first=True)
            row[strategy] = {
                "steps": hunt.engine.first_violation_steps,
                "pops": hunt.engine.first_violation_pops,
            }
            if hunt.engine.first_violation_steps is None:
                record["mismatches"].append(
                    f"{case.name}: {strategy} found no violation within "
                    f"the caps")
            else:
                steps[strategy].append(hunt.engine.first_violation_steps)
        full_dfs = _explore(case, "dfs", stop_at_first=False)
        full_mcts = _explore(case, "mcts", stop_at_first=False)
        if _obs(full_mcts) != _obs(full_dfs):
            record["mismatches"].append(f"{case.name}: findings diverge")
        row["full_run_findings_identical"] = \
            _obs(full_mcts) == _obs(full_dfs)
        record["cases"][case.name] = row

    record["medians"] = {
        s: statistics.median(steps[s]) if steps[s] else None
        for s in STRATEGIES}
    record["totals"] = {s: sum(steps[s]) for s in STRATEGIES}
    record["haystack_wins"] = sorted(
        name for name, row in record["cases"].items()
        if name.startswith("haystack")
        and row["mcts"]["steps"] is not None
        and row["dfs"]["steps"] is not None
        and row["mcts"]["steps"] < row["dfs"]["steps"])
    record["findings_identical"] = not any(
        "findings diverge" in m for m in record["mismatches"])

    # -- wall time (informational only; no gate reads it) -------------------
    # Every gate above compares deterministic counters; this timing
    # block is the record's only wall-clock content.  Min-of-N on the
    # mcts haystack hunt — the workload this benchmark exists for.
    from _timing import measure
    haystack = next(c for c in flagged if c.name == "haystack_01")
    record["timing"] = {
        "mcts_haystack_hunt": measure(
            lambda: _explore(haystack, "mcts", stop_at_first=True)),
    }

    # -- the anytime counters survive the CLI round trip --------------------
    from repro.api.cli import main as cli_main
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        code = cli_main(["analyze", "haystack_01", "--strategy", "mcts",
                         "--bound", str(BOUND), "--budget-seconds", "600",
                         "--json"])
    cli_report = json.loads(buf.getvalue())
    record["cli_end_to_end"] = {
        "target": "haystack_01", "exit_code": code,
        "first_violation_steps":
            (cli_report.get("first_violation") or {}).get("steps"),
        "anytime_present": cli_report.get("anytime") is not None,
        "schema_version": cli_report.get("schema_version"),
    }
    return record


def check_gates(record):
    failures = []
    if record["mismatches"]:
        failures.append(f"invariants violated: {record['mismatches']}")
    m = record["medians"]
    if m["mcts"] is None or m["dfs"] is None or m["mcts"] > m["dfs"]:
        failures.append(f"mcts median steps-to-first-violation "
                        f"{m['mcts']} exceeds dfs {m['dfs']}")
    elif m["mcts"] == m["dfs"]:
        failures.append(f"mcts median steps-to-first-violation "
                        f"{m['mcts']} no longer strictly below dfs "
                        f"{m['dfs']} — the haystack wins eroded")
    expected_haystacks = sorted(
        name for name in record["cases"] if name.startswith("haystack"))
    if record["haystack_wins"] != expected_haystacks:
        failures.append(f"mcts only beats dfs on {record['haystack_wins']} "
                        f"of {expected_haystacks}")
    e2e = record["cli_end_to_end"]
    if e2e["exit_code"] != 1 or e2e["first_violation_steps"] is None \
            or not e2e["anytime_present"]:
        failures.append(f"CLI end-to-end hunt stats missing: {e2e}")
    return failures


def write_record(record, path=OUT):
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


# -- pytest entry point -------------------------------------------------------

def test_hunt_gates(benchmark):
    from conftest import once
    record = once(benchmark, run_benchmark)
    write_record(record)
    failures = check_gates(record)
    assert not failures, failures


def main() -> int:
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    record = run_benchmark()
    path = write_record(record)
    m, t = record["medians"], record["totals"]
    n = len(record["cases"])
    print(f"best-first hunting on the {n} flagged litmus cases "
          f"(bound {BOUND}, steps to first violation):")
    for s in STRATEGIES:
        print(f"  {s:<9} median {m[s]:>6}   total {t[s]:>6}")
    wins = sum(1 for row in record["cases"].values()
               if row["mcts"]["steps"] is not None
               and row["dfs"]["steps"] is not None
               and row["mcts"]["steps"] < row["dfs"]["steps"])
    losses = sum(1 for row in record["cases"].values()
                 if row["mcts"]["steps"] is not None
                 and row["dfs"]["steps"] is not None
                 and row["mcts"]["steps"] > row["dfs"]["steps"])
    print(f"  mcts vs dfs: {wins} wins / {n - wins - losses} ties / "
          f"{losses} losses; haystack wins: "
          f"{', '.join(record['haystack_wins'])}")
    e2e = record["cli_end_to_end"]
    print(f"  CLI round trip: {e2e['target']} hunts in "
          f"{e2e['first_violation_steps']} steps under a budget "
          f"(anytime stats present: {e2e['anytime_present']}, "
          f"schema v{e2e['schema_version']})")
    print(f"  findings identical: {record['findings_identical']}")
    print(f"wrote {path}")
    failures = check_gates(record)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
