"""Packaging for the repro distribution (src/ layout, stdlib-only).

``pip install -e .`` exposes the library as ``repro`` and installs the
``repro`` console command (the same entry point as ``python -m repro``).
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    init = os.path.join(here, "src", "repro", "__init__.py")
    with open(init, encoding="utf-8") as fh:
        match = re.search(r'^__version__ = "([^"]+)"', fh.read(), re.M)
    return match.group(1) if match else "0.0.0"


setup(
    name="repro-spectre-ct",
    version=_version(),
    description=("Reproduction of 'Constant-Time Foundations for the New "
                 "Spectre Era' (Cauligi et al., PLDI 2020): speculative "
                 "out-of-order semantics, SCT, and the Pitchfork detector"),
    long_description=("A self-contained, stdlib-only reproduction of the "
                      "PLDI 2020 paper: the speculative machine semantics, "
                      "the speculative constant-time property, the "
                      "Pitchfork detector, litmus suites, the Table 2 "
                      "crypto case studies, and an angr-style Project/"
                      "AnalysisManager front end with batch execution."),
    long_description_content_type="text/plain",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=[],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.api.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Security",
        "Topic :: Scientific/Engineering",
    ],
)
