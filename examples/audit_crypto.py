#!/usr/bin/env python3
"""Reproduce Table 2: Pitchfork's audit of the four crypto case studies.

Runs the paper's two-phase procedure (§4.2.1) on each case study's C
and FaCT builds and prints the flag table:

* blank — no SCT violation found;
* ``✓``  — violation found in phase 1 (v1/v1.1, no forwarding hazards);
* ``f``  — violation found only with forwarding-hazard detection at the
  reduced bound (phase 2).

Run:  python examples/audit_crypto.py          (~1 min; CLI equivalent:
      python -m repro table2 --workers 4)
"""

import time

from repro.casestudies import (all_case_studies, render_table2, table2)
from repro.pitchfork import analyze, format_violation


def main() -> None:
    studies = all_case_studies()
    t0 = time.time()
    # table2 now rides repro.api's AnalysisManager; workers=4 fans the
    # eight Table 2 cells out over a process pool.
    results = table2(studies, workers=4)
    print(render_table2(results))
    print(f"\n({time.time() - t0:.1f}s with 4 workers; "
          f"✓ = SCT violation, f = needs forwarding-hazard detection)")

    # Show the two violations the paper walks through (§4.2.2).
    print("\n--- libsodium secretbox (C): the Fig 9 __libc_message walk ---")
    sb = next(cs for cs in studies if "secretbox" in cs.name).c
    report = analyze(sb.program, sb.config(), bound=28, fwd_hazards=False)
    print(format_violation(report.violations[0], sb.program))

    print("\n--- OpenSSL MEE-CBC (FaCT): the Fig 10 stale return ---")
    mee = next(cs for cs in studies if "MEE" in cs.name).fact
    report = analyze(mee.program, mee.config(), bound=20, fwd_hazards=True)
    print(format_violation(report.violations[0], mee.program))


if __name__ == "__main__":
    main()
