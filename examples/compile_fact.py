#!/usr/bin/env python3
"""The MiniCT compiler: C vs FaCT pipelines, plus the mitigation passes.

Compiles a Lucky13-style padding clamp both ways, shows the generated
code, and contrasts the security verdicts; then demonstrates the fence
insertion (Fig 8) and retpoline (Fig 13) passes on vulnerable programs.

Run:  python examples/compile_fact.py
"""

from repro.asm import disassemble
from repro.core import (Machine, PUBLIC, SECRET, run_sequential,
                        secret_observations)
from repro.ctcomp import (Assign, BinOp, Const, Func, If, Index, Module,
                          Var, VarDecl, ArrayDecl, compile_module,
                          count_fences, insert_fences, retpolinize,
                          type_report)
from repro.api import Project
from repro.litmus import find_case


def padding_clamp() -> Module:
    """``pad = out[7]; if (pad > maxpad) { pad = maxpad; good = 0 }``"""
    return Module(
        "clamp",
        arrays=(ArrayDecl("out", 8, SECRET, tuple(range(8))),),
        variables=(VarDecl("pad", SECRET, 0),
                   VarDecl("maxpad", PUBLIC, 3),
                   VarDecl("good", SECRET, 1)),
        funcs=(Func("main", (
            Assign("pad", Index("out", Const(7))),
            If(BinOp("gt", Var("pad"), Var("maxpad")),
               then=(Assign("pad", Var("maxpad")),
                     Assign("good", Const(0)))),
        )),))


def main() -> None:
    module = padding_clamp()
    report = type_report(module)
    print("type report: secret branches in", report.secret_branch_sites)

    for style in ("c", "fact"):
        build = compile_module(module, style=style)
        machine = Machine(build.program)
        seq = run_sequential(machine, build.initial_config())
        pitchfork = Project(build.program, build.initial_config(),
                            name=f"clamp-{style}").run(
                                "pitchfork", bound=16, fwd_hazards=False)
        print(f"\n== {style}-style build ==")
        print(disassemble(build.program))
        print("sequential leaks:",
              secret_observations(seq.trace) or "none")
        print("Pitchfork:", "FLAGGED" if not pitchfork.ok else "secure")

    # -- the fence pass on Fig 1's gadget ---------------------------------
    case = find_case("v1_fig1")
    fenced = insert_fences(case.program)
    verdict = Project(fenced, case.config(), name="v1_fig1+fence").run(
        "pitchfork", bound=16, fwd_hazards=False)
    print(f"\n== fence insertion on {case.name} ==")
    print(f"fences added: {count_fences(fenced)}; "
          f"Pitchfork: {'FLAGGED' if not verdict.ok else 'secure'}")

    # -- the retpoline pass on Fig 11's gadget ------------------------------
    from repro.core import Memory, Reg, Region, Value
    v2 = find_case("v2_fig11")
    transformed = retpolinize(v2.program)
    mem = v2.config().mem.with_region(Region("stack", 0x200, 8, PUBLIC),
                                      None)
    regs = dict(v2.config().regs)
    regs[Reg("rsp")] = Value(0x207)
    config = v2.config().with_(regs=regs, mem=mem)
    verdict = Project(transformed, config, name="v2+retpoline").run(
        "pitchfork", bound=16, fwd_hazards=False,
        jmpi_targets=v2.jmpi_targets)
    print(f"\n== retpoline on {v2.name} ==")
    print(disassemble(transformed))
    print(f"Pitchfork (with mistraining): "
          f"{'FLAGGED' if not verdict.ok else 'secure'}")


if __name__ == "__main__":
    main()
