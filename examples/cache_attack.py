#!/usr/bin/env python3
"""End-to-end Spectre v1 key extraction through the cache model.

The paper's semantics never models the cache — §3.1 argues the final
cache state is a function of the observation sequence.  This script
makes the full attack concrete:

1. a Spectre v1 victim speculatively touches ``probe[Key[i] * 64]``;
2. the observation trace is folded into a set-associative cache;
3. a Flush+Reload attacker probes the 256 candidate lines and recovers
   each key byte — using only cache presence, never the labels.

Run:  python examples/cache_attack.py
"""

from repro.api import Project
from repro.cache import CacheConfig, build_setup, run_attack
from repro.core import run, secret_observations


def main() -> None:
    key = [0xDE, 0xAD, 0xBE, 0xEF]
    print("victim key bytes:", " ".join(f"{b:02x}" for b in key))
    recovered = []
    for i, byte in enumerate(key):
        setup = build_setup(secret_byte=byte, oob_index=4 + 0)
        # place the byte under attack at Key[0] each round
        result = run(setup.machine, setup.config, setup.schedule)
        leak = secret_observations(result.trace)
        got = run_attack(setup)
        recovered.append(got)
        print(f"  byte {i}: trace leaks {leak[0]!r:28} "
              f"flush+reload recovers 0x{got:02x}")
    ok = recovered == key
    print("recovered key:   ", " ".join(f"{b:02x}" for b in recovered),
          "(match)" if ok else "(MISMATCH)")

    # The same recovery works across cache geometries and policies —
    # the trace, not the cache, carries the secret.
    for cfg in (CacheConfig(sets=64, ways=2, line_size=64),
                CacheConfig(sets=512, ways=16, line_size=64,
                            policy="FIFO")):
        setup = build_setup(secret_byte=0x5A, cache=cfg)
        got = run_attack(setup)
        print(f"geometry {cfg.sets}x{cfg.ways} {cfg.policy}: "
              f"recovered 0x{got:02x}")

    # The cache-attack analysis packages the same argument: find a
    # violation with Pitchfork, fold its trace into the cache, report
    # the attacker-probeable footprint.
    report = Project.from_litmus("v1_fig1").analyses.cache_attack()
    print(f"\ncache-attack analysis on v1_fig1: {report.status}; "
          f"probeable lines: {report.details.get('lines_touched')}")


if __name__ == "__main__":
    main()
