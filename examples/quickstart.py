#!/usr/bin/env python3
"""Quickstart: build the Figure 1 Spectre v1 victim, leak a key byte
under attacker directives, watch the fence mitigation kill the attack,
and let Pitchfork find the violation automatically.

Run:  python examples/quickstart.py
"""

from repro.api import Project
from repro.asm import assemble, disassemble
from repro.core import (Config, Machine, PUBLIC, SECRET, execute, fetch,
                        layout, run, run_sequential, secret_observations)


def main() -> None:
    # -- 1. The victim: Figure 1's bounds-check-bypass gadget. -----------
    program = assemble("""
        ; if (ra < 4) { rb = A[ra]; rc = B[rb]; }
        check:  br gt, 4, %ra -> body, done
        body:   %rb = load [0x40, %ra]      ; A[ra] -- or Key, OOB!
                %rc = load [0x44, %rb]      ; B[rb] -- address leaks rb
        done:   halt
    """)
    print("== victim ==")
    print(disassemble(program))

    memory = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                    ("B", 4, PUBLIC, [0, 0, 0, 0]),
                    ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))
    config = Config.initial({"ra": 9}, memory, pc=program.entry)
    machine = Machine(program)

    # -- 2. Architecturally the program is constant-time. -----------------
    seq = run_sequential(machine, config)
    print("\nsequential trace:", seq.trace)
    print("sequential secret leaks:", secret_observations(seq.trace) or "none")

    # -- 3. The attacker directs speculation (Fig 1's schedule). ----------
    schedule = [fetch(True),   # mistrained: follow the 'in bounds' arm
                fetch(), fetch(),
                execute(2),    # load A[9] = Key[1], speculatively
                execute(3)]    # load B[Key[1]] -- the address leaks!
    res = run(machine, config, schedule)
    print("\nspeculative trace:", res.trace)
    print("leaked:", secret_observations(res.trace))

    # -- 4. Pitchfork finds it without being told the schedule. ----------
    #    (The Project facade is the 5-line front door: wrap the target,
    #    pick an analysis off `project.analyses`, read the Report.)
    project = Project(program, config, name="fig1")
    report = project.analyses.pitchfork(bound=20, fwd_hazards=False)
    print("\n" + report.render())

    # -- 5. The Fig 8 mitigation: a fence after the branch. ---------------
    fenced = Project.from_asm("""
        check:  br gt, 4, %ra -> body, done
        body:   fence
                %rb = load [0x40, %ra]
                %rc = load [0x44, %rb]
        done:   halt
    """, regs={"ra": 9}, mem=memory, name="fig1+fence")
    report = fenced.analyses.pitchfork(bound=20, fwd_hazards=False)
    print(report.render())


if __name__ == "__main__":
    main()
