#!/usr/bin/env python3
"""Counterexample-guided repair: detect a Spectre v1 leak, localize it,
synthesize a minimal mitigation, and check the certificate.

Walks the same Figure 1 gadget as `quickstart.py` through
`repro.mitigate`: Pitchfork finds the violation, localization names the
mispredicted branch / the access load that read the secret / the
transmitting load, the synthesizer places one SLH mask (auto policy) or
one fence (fence policy) — against a blanket `insert_fences` baseline
of two — and the result re-verifies clean.

Run:  python examples/repair_loop.py
"""

from repro.api import Project
from repro.asm import disassemble
from repro.core.machine import Machine
from repro.ctcomp.passes import count_fences, insert_fences
from repro.litmus import find_case
from repro.mitigate import localize_all, repair, verify_certificate
from repro.pitchfork import analyze


def main() -> None:
    case = find_case("v1_fig1")
    print("== victim (Fig 1) ==")
    print(disassemble(case.program))

    # -- 1. Detect and localize. ------------------------------------------
    report = analyze(case.program, case.make_config(), bound=12,
                     stop_at_first=False)
    sites = localize_all(Machine(case.program), case.make_config(),
                         report.violations)
    print("\nviolations:", len(report.violations))
    for site in sites:
        print("  ", site.describe())

    # -- 2. Repair under both policies. ------------------------------------
    blanket = count_fences(insert_fences(case.program))
    for policy in ("auto", "fence"):
        result = repair(case.program, case.make_config(), name=case.name,
                        policy=policy, bound=12)
        print(f"\n== repaired [{policy}] == status={result.status}, "
              f"{result.fences_added} fence(s) + {result.slh_sites} SLH "
              f"mask(s) vs {blanket} blanket fences, "
              f"+{result.overhead_steps} sequential steps")
        print(result.certificate["program"])
        assert verify_certificate(result.certificate, case.make_config(),
                                  original=case.program, bound=12)
        print("certificate re-verified: OK")

    # -- 3. Or in one line through the API. ---------------------------------
    api_report = Project.from_litmus("kocher_01").analyses.repair()
    print("\nkocher_01 via project.analyses.repair():", api_report.status,
          api_report.mitigation["slh_sites"], "SLH mask(s)")


if __name__ == "__main__":
    main()
