#!/usr/bin/env python3
"""Symbolic Spectre hunting: solve for the attacker input that leaks.

The concrete detector answers "does THIS configuration leak?".  The
symbolic back end answers the question the original (angr-based)
Pitchfork answered: "is there ANY attacker input that leaks — and which
one?"  It enumerates worst-case schedules, replays them over symbolic
inputs with path constraints, concretizes addresses angr-style (to the
extreme satisfiable values), and solves each finding for a witness.

Run:  python examples/symbolic_hunt.py
"""

from repro.api import Project
from repro.core import PUBLIC, SECRET, Value, layout
from repro.pitchfork import Sym, analyze_symbolic


def main() -> None:
    # Fig 1's gadget, but the attacker index is a symbol: which values
    # of x make the gadget leak?
    memory = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                    ("B", 4, PUBLIC, None),
                    ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))
    x = Sym("x", tuple(range(16)))
    project = Project.from_asm("""
        check:  br gt, 4, %ra -> body, done
        body:   %rb = load [0x40, %ra]
                %rc = load [0x44, %rb]
        done:   halt
    """, regs={"ra": Value(x, PUBLIC)}, mem=memory, name="fig1-symbolic")

    findings = analyze_symbolic(project.program, project.config(),
                                bound=12, fwd_hazards=False)
    print(f"findings: {len(findings)}")
    for f in findings:
        print(f"  {f.observation!r}")
        print(f"    witness input: {f.model}")
        print(f"    path constraints: {[repr(c) for c in f.constraints]}")

    # A properly masked index admits NO leaking input at all:
    masked = Project.from_asm("""
        %ra = op and, %ra, 3
        br gt, 4, %ra -> 3, 5
        %rb = load [0x40, %ra]
        %rc = load [0x44, %rb]
        halt
    """, regs={"ra": Value(x, PUBLIC)}, mem=memory, name="fig1-masked")
    findings = analyze_symbolic(masked.program, masked.config(), bound=12,
                                fwd_hazards=False)
    print(f"\nmasked variant findings: {len(findings)} "
          f"(no input leaks — the mitigation is input-independent)")


if __name__ == "__main__":
    main()
