#!/usr/bin/env python3
"""The Spectre zoo: replay every attack figure of the paper.

For each litmus case derived from a figure (1, 2, 6, 7, 11, 12, 13) the
script replays the paper's exact directive schedule, prints the leakage
trace, and cross-checks Pitchfork's verdict — including the cases the
core tool is blind to (v2/ret2spec/aliasing) until the extended
exploration is switched on.

Run:  python examples/spectre_zoo.py
"""

from repro.api import Project
from repro.core import render_execution, run, secret_observations
from repro.litmus import all_cases


def main() -> None:
    figure_cases = [c for c in all_cases() if c.figure]
    figure_cases.sort(key=lambda c: int(c.figure.split()[-1]))
    for case in figure_cases:
        print("=" * 72)
        print(f"{case.figure}: {case.name} [{case.variant}]")
        print(case.description)
        print("-" * 72)
        # Project.from_litmus mirrors the case's ground-truth knobs
        # (bound, fwd hazards, aliasing, indirect targets) into options.
        project = Project.from_litmus(case)
        if case.attack_schedule:
            res = run(project.machine(), project.config(),
                      case.attack_schedule)
            print(render_execution(res, show_quiet_steps=False))
            leaks = secret_observations(res.trace)
            print(f"  secret observations: {leaks or 'none'}")

        # The core tool, as evaluated in the paper: no aliasing
        # prediction, no mistrained indirect targets.
        core = project.analyses.pitchfork(explore_aliasing=False,
                                          jmpi_targets=(), rsb_targets=())
        verdict = "FLAGGED" if not core.ok else "clean"
        print(f"  Pitchfork (core):     {verdict}")
        if case.jmpi_targets or case.rsb_targets or case.needs_aliasing:
            extended = project.analyses.pitchfork()
            verdict = "FLAGGED" if not extended.ok else "clean"
            print(f"  Pitchfork (extended): {verdict}")
    print("=" * 72)


if __name__ == "__main__":
    main()
