#!/usr/bin/env python3
"""The Spectre zoo: replay every attack figure of the paper.

For each litmus case derived from a figure (1, 2, 6, 7, 11, 12, 13) the
script replays the paper's exact directive schedule, prints the leakage
trace, and cross-checks Pitchfork's verdict — including the cases the
core tool is blind to (v2/ret2spec/aliasing) until the extended
exploration is switched on.

Run:  python examples/spectre_zoo.py
"""

from repro.asm import disassemble
from repro.core import Machine, render_execution, run, secret_observations
from repro.litmus import all_cases
from repro.pitchfork import analyze


def main() -> None:
    figure_cases = [c for c in all_cases() if c.figure]
    figure_cases.sort(key=lambda c: int(c.figure.split()[-1]))
    for case in figure_cases:
        print("=" * 72)
        print(f"{case.figure}: {case.name} [{case.variant}]")
        print(case.description)
        print("-" * 72)
        machine = Machine(case.program, rsb_policy=case.rsb_policy)
        if case.attack_schedule:
            res = run(machine, case.config(), case.attack_schedule)
            print(render_execution(res, show_quiet_steps=False))
            leaks = secret_observations(res.trace)
            print(f"  secret observations: {leaks or 'none'}")

        core = analyze(case.program, case.config(), bound=case.min_bound,
                       fwd_hazards=case.needs_fwd_hazards,
                       rsb_policy=case.rsb_policy)
        verdict = "FLAGGED" if not core.secure else "clean"
        print(f"  Pitchfork (core):     {verdict}")
        if case.jmpi_targets or case.rsb_targets or case.needs_aliasing:
            extended = analyze(case.program, case.config(),
                               bound=case.min_bound,
                               fwd_hazards=case.needs_fwd_hazards,
                               explore_aliasing=case.needs_aliasing,
                               jmpi_targets=case.jmpi_targets,
                               rsb_targets=case.rsb_targets,
                               rsb_policy=case.rsb_policy)
            verdict = "FLAGGED" if not extended.secure else "clean"
            print(f"  Pitchfork (extended): {verdict}")
    print("=" * 72)


if __name__ == "__main__":
    main()
