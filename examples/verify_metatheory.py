#!/usr/bin/env python3
"""Empirically validate the paper's metatheory (Appendix B).

Randomly generates hundreds of programs, configurations and well-formed
schedules, then checks:

* determinism of the step relation (Lemma B.1);
* sequential equivalence, C ⇓_D^N ≈ C ⇓_seq^N (Theorem 3.2 / B.7);
* consistency of terminal executions (Corollary B.8);
* label stability (Theorem B.9 / Corollary B.10);
* soundness of the tool-schedule family DT(n) (Theorem B.20).

Run:  python examples/verify_metatheory.py
"""

import time

from repro.api import Project
from repro.verify import run_experiments


def main() -> None:
    total_exp = 0
    total_fail = 0
    t0 = time.time()
    for seed in range(6):
        stats = run_experiments(seed=seed, programs=20,
                                schedules_per_program=4,
                                program_length=12)
        total_exp += stats.experiments
        total_fail += stats.failures
        print(f"seed {seed}: {stats.experiments:4} experiments, "
              f"{stats.failures} failures, {stats.skipped} vacuous")
    dt = time.time() - t0
    print(f"\n{total_exp} experiments in {dt:.1f}s — "
          f"{'ALL THEOREMS HOLD' if total_fail == 0 else 'FAILURES!'}")

    # The same theorem checks are an analysis: replay them on a concrete
    # target of interest instead of random programs.
    report = Project.from_litmus("v1_fig1").analyses.metatheory(
        experiments=6, seed=1)
    print(f"\nmetatheory on v1_fig1: {report.status} "
          f"({report.details['experiments']} experiments, "
          f"{report.details['skipped']} vacuous)")


if __name__ == "__main__":
    main()
