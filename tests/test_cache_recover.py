"""End-to-end secret recovery (`repro.cache.recover`) — coverage
backfill for the Fig 1 attack demonstrator.

The module was exercised nowhere in the tier-1 suite; these tests pin
its contract: the directive schedule runs the Fig 1 victim under
speculation, the observation trace drives the cache model, and
Flush+Reload recovers the planted key byte from timing alone.
"""

import pytest

from repro.cache.recover import SpectreV1Setup, build_setup, run_attack


class TestBuildSetup:
    def test_components_are_consistent(self):
        setup = build_setup(secret_byte=0x5A)
        assert isinstance(setup, SpectreV1Setup)
        assert setup.secret_value == 0x5A
        assert setup.machine.program.get(setup.config.pc) is not None
        # the probe array distinguishes every byte candidate
        assert len(setup.attacker.probe.candidates) == 256

    def test_schedule_is_well_formed(self):
        """Every directive of the attack schedule steps the machine."""
        setup = build_setup()
        config = setup.config
        for directive in setup.schedule:
            config, _leak = setup.machine.step(config, directive)

    def test_secret_region_is_labelled(self):
        setup = build_setup(secret_byte=0x77)
        value = setup.config.mem.read(0x44)
        assert value.val == 0x77
        assert not value.is_public()


class TestRunAttack:
    def test_recovers_default_secret(self):
        assert run_attack() == 0xA2

    @pytest.mark.parametrize("secret", (0x00, 0x01, 0x7F, 0xFF))
    def test_recovers_arbitrary_bytes(self, secret):
        assert run_attack(build_setup(secret_byte=secret)) == secret

    def test_recovery_uses_timing_not_labels(self):
        """The attacker sees only post-run cache probes: a run whose
        trace is withheld recovers nothing."""
        setup = build_setup(secret_byte=0x3C)
        assert setup.attacker.recover(()) == []

    def test_in_bounds_index_leaks_nothing_secret(self):
        """With an in-bounds index the transient load reads public
        array data, so the 'recovered' byte is the public element —
        not the key."""
        setup = build_setup(secret_byte=0xA2, oob_index=1)
        recovered = run_attack(setup)
        assert recovered != 0xA2
        assert recovered == 2    # A[1] == 2 in the Fig 1 arena
