"""Machine tests: aliasing prediction (§3.5, Fig 2)."""

import pytest

from repro.asm import assemble
from repro.core import (Config, Fwd, Machine, Memory, Read, Rollback,
                        StuckError, TLoad, TValue, execute, fetch, run)
from repro.core.lattice import PUBLIC, SECRET
from repro.core.values import BOTTOM, Value, secret


def _machine(src):
    return Machine(assemble(src))


class TestForwardGuess:
    SRC = "store %rb, [0x40, %ra]\n%rc = load [0x45]\nhalt"

    def test_guess_records_prediction(self):
        m = _machine(self.SRC)
        c = Config.initial({"ra": 2, "rb": secret(0x99)}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), execute(1, "value"),
                         execute(2, 1)])
        entry = res.final.buf[2]
        assert isinstance(entry, TLoad)
        assert entry.pred == (secret(0x99), 1)

    def test_guess_requires_resolved_store_value(self):
        m = _machine(self.SRC)
        c = Config.initial({"ra": 2, "rb": secret(0x99)}, Memory(), 1)
        res = run(m, c, [fetch(), fetch()])
        with pytest.raises(StuckError):
            m.step(res.final, execute(2, 1))

    def test_guess_source_must_be_older(self):
        m = _machine("%rc = load [0x45]\nstore 3, [0x40]\nhalt")
        res = run(m, Config.initial({}, Memory(), 1), [fetch(), fetch()])
        with pytest.raises(StuckError):
            m.step(res.final, execute(1, 2))

    def test_predicted_value_visible_to_younger_instructions(self):
        """§3.5's register-resolve extension feeds dependent loads."""
        m = _machine("store %rb, [0x40, %ra]\n%rc = load [0x45]\n"
                     "%rd = load [0x48, %rc]\nhalt")
        c = Config.initial({"ra": 2, "rb": secret(0x99)}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), fetch(), execute(1, "value"),
                         execute(2, 1), execute(3)])
        (leak,) = res.trace
        assert isinstance(leak, Read) and leak.label == SECRET
        assert leak.addr == 0x48 + 0x99

    def test_double_guess_stuck(self):
        m = _machine(self.SRC)
        c = Config.initial({"ra": 2, "rb": 7}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), execute(1, "value"),
                         execute(2, 1)])
        with pytest.raises(StuckError):
            m.step(res.final, execute(2, 1))


class TestResolveAgainstStoreInBuffer:
    def test_addr_ok_when_store_unresolved(self):
        """load-execute-addr-ok case 2: originating store address still
        unknown — optimistically keep the forward."""
        m = _machine("store %rb, [0x40, %ra]\n%rc = load [0x45]\nhalt")
        c = Config.initial({"ra": 2, "rb": 7}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), execute(1, "value"),
                         execute(2, 1), execute(2)])
        entry = res.final.buf[2]
        assert isinstance(entry, TValue)
        assert entry.dep == 1 and entry.addr == 0x45
        assert res.trace[-1] == Fwd(0x45, PUBLIC)

    def test_addr_ok_when_store_matches(self):
        m = _machine("store %rb, [0x45]\n%rc = load [0x45]\nhalt")
        c = Config.initial({"rb": 7}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), execute(1, "value"),
                         execute(2, 1), execute(1, "addr"), execute(2)])
        assert res.final.buf[2].value.val == 7

    def test_addr_hazard_on_mismatch(self):
        """Fig 2's ending: the store resolves elsewhere → rollback."""
        m = _machine("store %rb, [0x40, %ra]\n%rc = load [0x45]\nhalt")
        c = Config.initial({"ra": 2, "rb": 7}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), execute(1, "value"),
                         execute(2, 1), execute(1, "addr"), execute(2)])
        assert res.trace[-2:] == (Rollback(), Fwd(0x45, PUBLIC))
        assert res.final.pc == 2 and 2 not in res.final.buf

    def test_hazard_on_intervening_store(self):
        """A different store resolving to the load's address kills the
        prediction even if the origin store still matches."""
        m = _machine("store 1, [0x45]\nstore 2, [0x45]\n%rc = load [0x45]\n"
                     "halt")
        c = Config.initial({}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), fetch(),
                         execute(3, 1),          # predict from store 1
                         execute(2, "addr"),     # store 2 resolves to 0x45
                         execute(3)])
        assert any(isinstance(o, Rollback) for o in res.trace)


class TestResolveAgainstMemory:
    def test_mem_match_keeps_value(self):
        """Origin store retired; memory agrees with the prediction."""
        m = _machine("store 7, [0x45]\n%rc = load [0x45]\nhalt")
        from repro.core import RETIRE
        c = Config.initial({}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), execute(2, 1),
                         execute(1, "addr"), RETIRE, execute(2)])
        entry = res.final.buf[2]
        assert entry.value.val == 7
        assert entry.dep is BOTTOM          # annotated as if from memory
        assert res.trace[-1] == Read(0x45, PUBLIC)

    def test_mem_hazard_on_mismatch(self):
        """Origin store retired to a different address: memory disagrees."""
        from repro.core import RETIRE
        m = _machine("store 7, [0x46]\n%rc = load [0x45]\nhalt")
        c = Config.initial({}, Memory().write(0x45, Value(3)), 1)
        res = run(m, c, [fetch(), fetch(), execute(2, 1),
                         execute(1, "addr"), RETIRE, execute(2)])
        assert res.trace[-2:] == (Rollback(), Read(0x45, PUBLIC))
        assert res.final.pc == 2
