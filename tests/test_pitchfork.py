"""Tests for the Pitchfork explorer, detector and schedule utilities."""

import pytest

from repro.asm import assemble
from repro.core import Config, Machine, Memory, Retire, secret
from repro.core.directives import Execute, Fetch
from repro.core.lattice import PUBLIC, SECRET
from repro.core.memory import layout
from repro.litmus import find_case
from repro.pitchfork import (AnalysisReport, ExplorationOptions, Explorer,
                             analyze, analyze_two_phase, enumerate_schedules,
                             format_report, format_violation, schedule_stats)


def _machine(src):
    return Machine(assemble(src))


class TestExplorerBasics:
    def test_straightline_single_schedule(self):
        m = _machine("%ra = op mov, 1\n%rb = op mov, 2\nhalt")
        c = Config.initial({}, Memory(), 1)
        result = Explorer(m, ExplorationOptions(bound=4)).explore(c)
        assert result.paths_explored == 1
        assert result.paths[0].final.is_terminal()

    def test_branch_forks_two_paths(self):
        m = _machine("br eq, %ra, 0 -> 2, 3\n%rb = op mov, 1\nhalt")
        c = Config.initial({"ra": 0}, Memory(), 1)
        result = Explorer(m, ExplorationOptions(bound=4)).explore(c)
        assert result.paths_explored == 2

    def test_store_load_forks_on_fwd_hazards(self):
        m = _machine("store 1, [0x40]\n%ra = load [0x40]\nhalt")
        c = Config.initial({}, Memory(), 1)
        with_fwd = Explorer(m, ExplorationOptions(bound=4)).explore(c)
        without = Explorer(
            m, ExplorationOptions(bound=4, fwd_hazards=False)).explore(c)
        assert with_fwd.paths_explored > without.paths_explored
        assert without.paths_explored == 1

    def test_architectural_results_agree_across_paths(self):
        """All complete paths commit the same architectural state
        (consistency, Cor. B.8)."""
        m = _machine("store 1, [0x40]\n%ra = load [0x40]\nhalt")
        c = Config.initial({}, Memory(), 1)
        result = Explorer(m, ExplorationOptions(bound=4)).explore(c)
        finals = {(p.final.reg("ra").val, p.final.mem.read(0x40).val)
                  for p in result.paths if p.complete}
        assert finals == {(1, 1)}

    def test_max_paths_truncates(self):
        m = _machine("\n".join(
            f"br eq, %r{i}, 0 -> {i + 2}, {i + 2}" for i in range(8))
            + "\nhalt")
        regs = {f"r{i}": 0 for i in range(8)}
        c = Config.initial(regs, Memory(), 1)
        result = Explorer(m, ExplorationOptions(bound=16, max_paths=5)
                          ).explore(c)
        assert result.truncated

    def test_stop_at_first_violation(self):
        case = find_case("v1_fig1")
        m = Machine(case.program)
        result = Explorer(m, ExplorationOptions(bound=8, fwd_hazards=False)
                          ).explore(case.config(), stop_at_first=True)
        assert result.violations
        assert result.paths_explored <= 2


class TestScheduleEnumeration:
    def test_schedules_are_well_formed(self):
        from repro.core import is_well_formed
        case = find_case("v1_fig1")
        m = Machine(case.program)
        schedules = enumerate_schedules(m, case.config(), bound=8,
                                        fwd_hazards=False)
        assert schedules
        for schedule in schedules:
            assert is_well_formed(m, case.config(), schedule)

    def test_stats_count_paths(self):
        case = find_case("v1_fig1")
        m = Machine(case.program)
        stats = schedule_stats(m, case.config(), bound=8, fwd_hazards=False)
        assert stats.schedules == 2  # correct arm + mispredicted arm
        assert not stats.truncated

    def test_deferred_stores_multiply_schedules(self):
        m = _machine("store 1, [0x40]\nstore 2, [0x40]\n%ra = load [0x40]\n"
                     "halt")
        c = Config.initial({}, Memory(), 1)
        n_with = schedule_stats(m, c, bound=6, fwd_hazards=True).schedules
        n_without = schedule_stats(m, c, bound=6, fwd_hazards=False).schedules
        assert n_without == 1
        assert n_with >= 4  # defer/now per store, at least


class TestDetector:
    def test_flags_violation_with_witness(self):
        case = find_case("v1_fig1")
        report = analyze(case.program, case.config(), bound=8,
                         fwd_hazards=False)
        assert not report.secure
        v = report.violations[0]
        assert v.observation.label == SECRET
        assert isinstance(v.directive, Execute)
        assert v.schedule  # replayable witness

    def test_violation_witness_replays(self):
        from repro.core import run, secret_observations
        case = find_case("v1_fig1")
        report = analyze(case.program, case.config(), bound=8,
                         fwd_hazards=False)
        v = report.violations[0]
        res = run(Machine(case.program), case.config(), v.schedule)
        assert secret_observations(res.trace)

    def test_two_phase_stops_after_phase_one_hit(self):
        case = find_case("v1_fig1")
        report = analyze_two_phase(case.program, case.config(),
                                   bound_no_fwd=20, bound_fwd=8)
        assert report.phase == "v1/v1.1" and not report.secure

    def test_two_phase_falls_through_to_v4(self):
        case = find_case("v4_fig7")
        report = analyze_two_phase(case.program, case.config(),
                                   bound_no_fwd=20, bound_fwd=8)
        assert report.phase == "v4" and not report.secure

    def test_two_phase_clean_program(self):
        m = assemble("%ra = op mov, 1\nhalt")
        c = Config.initial({}, Memory(), 1)
        report = analyze_two_phase(m, c, bound_no_fwd=8, bound_fwd=8)
        assert report.secure and report.phase == "v4"


class TestReports:
    def test_format_secure(self):
        m = assemble("%ra = op mov, 1\nhalt")
        report = analyze(m, Config.initial({}, Memory(), 1), bound=4)
        text = format_report(report)
        assert "SECURE" in text

    def test_format_violations(self):
        case = find_case("v1_fig1")
        report = analyze(case.program, case.config(), bound=8,
                         fwd_hazards=False, name="fig1")
        text = format_report(report, case.program)
        assert "VIOLATIONS FOUND" in text and "fig1" in text
        assert "read" in text

    def test_format_violation_shows_schedule(self):
        case = find_case("v1_fig1")
        report = analyze(case.program, case.config(), bound=8,
                         fwd_hazards=False)
        text = format_violation(report.violations[0])
        assert "witnessing schedule" in text
