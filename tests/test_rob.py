"""Unit tests for the reorder buffer and register resolve function (Fig 3)."""

import pytest

from repro.core.rob import (ReorderBuffer, resolve_operand, resolve_operands,
                            resolve_register)
from repro.core.transient import TLoad, TOp, TStore, TValue
from repro.core.values import BOTTOM, Reg, Value, operands, public, secret

RA, RB = Reg("ra"), Reg("rb")


def _buf(*instrs):
    buf = ReorderBuffer()
    for instr in instrs:
        _i, buf = buf.insert_next(instr)
    return buf


class TestBufferBasics:
    def test_empty_min_max_zero(self):
        buf = ReorderBuffer()
        assert buf.min_index() == 0 and buf.max_index() == 0

    def test_first_insert_at_one(self):
        i, buf = ReorderBuffer().insert_next(TValue(RA, public(1)))
        assert i == 1 and buf.min_index() == buf.max_index() == 1

    def test_contiguous_domain(self):
        buf = _buf(*(TValue(RA, public(k)) for k in range(5)))
        assert list(buf.indices()) == [1, 2, 3, 4, 5]

    def test_set_replaces(self):
        buf = _buf(TValue(RA, public(1)))
        buf2 = buf.set(1, TValue(RA, public(2)))
        assert buf2[1].value.val == 2 and buf[1].value.val == 1  # immutable

    def test_set_missing_raises(self):
        with pytest.raises(KeyError):
            ReorderBuffer().set(1, TValue(RA, public(1)))

    def test_remove_min_advances_base(self):
        buf = _buf(TValue(RA, public(1)), TValue(RB, public(2)))
        buf2 = buf.remove_min()
        assert buf2.min_index() == 2 and 1 not in buf2

    def test_indices_monotone_after_drain(self):
        """Drained buffers keep counting up (matches Fig 13's numbering)."""
        buf = _buf(TValue(RA, public(1)))
        buf = buf.remove_min()
        i, buf = buf.insert_next(TValue(RB, public(2)))
        assert i == 2

    def test_truncate_before(self):
        buf = _buf(*(TValue(RA, public(k)) for k in range(5)))
        buf2 = buf.truncate_before(3)
        assert list(buf2.indices()) == [1, 2]

    def test_truncate_to_empty_reuses_index(self):
        buf = _buf(TValue(RA, public(1)), TValue(RB, public(2)))
        buf = buf.remove_min()          # min is now 2
        buf = buf.truncate_before(2)    # empty
        i, _ = buf.insert_next(TValue(RA, public(3)))
        assert i == 2                   # reuses the squashed slot

    def test_truncate_beyond_max_noop(self):
        buf = _buf(TValue(RA, public(1)))
        assert buf.truncate_before(99) == buf

    def test_equality_and_hash(self):
        a = _buf(TValue(RA, public(1)))
        b = _buf(TValue(RA, public(1)))
        assert a == b and hash(a) == hash(b)

    def test_empty_buffers_equal(self):
        assert ReorderBuffer() == _buf(TValue(RA, public(1))).remove_min()

    def test_retire_empty_raises(self):
        with pytest.raises(KeyError):
            ReorderBuffer().remove_min()


class TestRegisterResolve:
    """The (buf +i ρ) function of Figure 3."""

    def test_falls_back_to_register_file(self):
        buf = ReorderBuffer()
        assert resolve_register(buf, 1, {RA: public(9)}, RA) == public(9)

    def test_latest_resolved_assignment_wins(self):
        buf = _buf(TValue(RA, public(1)), TValue(RA, public(2)))
        assert resolve_register(buf, 3, {RA: public(0)}, RA) == public(2)

    def test_only_assignments_before_i(self):
        buf = _buf(TValue(RA, public(1)), TValue(RA, public(2)))
        assert resolve_register(buf, 2, {RA: public(0)}, RA) == public(1)

    def test_unresolved_assignment_is_bottom(self):
        buf = _buf(TOp(RA, "add", operands(1, 2)))
        assert resolve_register(buf, 2, {RA: public(0)}, RA) is BOTTOM

    def test_unresolved_load_is_bottom(self):
        buf = _buf(TLoad(RA, operands(0x40), pp=1))
        assert resolve_register(buf, 2, {RA: public(0)}, RA) is BOTTOM

    def test_pending_assignment_shadows_older_resolved(self):
        """Fig 3: the *latest* assignment counts, even if unresolved."""
        buf = _buf(TValue(RA, public(1)), TOp(RA, "add", operands(1, 2)))
        assert resolve_register(buf, 3, {RA: public(0)}, RA) is BOTTOM

    def test_partially_resolved_load_provides_value(self):
        """Section 3.5's extension: a predicted-forward load resolves."""
        buf = _buf(TLoad(RA, operands(0x40), pp=1, pred=(secret(7), 0)))
        assert resolve_register(buf, 2, {RA: public(0)}, RA) == secret(7)

    def test_missing_register_raises(self):
        with pytest.raises(KeyError):
            resolve_register(ReorderBuffer(), 1, {}, RA)

    def test_stores_do_not_assign(self):
        buf = _buf(TStore(RA, operands(0x40)))
        assert resolve_register(buf, 2, {RA: public(5)}, RA) == public(5)

    def test_resolve_operand_value_identity(self):
        v = secret(3)
        assert resolve_operand(ReorderBuffer(), 1, {}, v) == v

    def test_resolve_operands_none_on_bottom(self):
        buf = _buf(TOp(RA, "add", operands(1, 2)))
        assert resolve_operands(buf, 2, {RA: public(0)}, (RA, RB)) is None

    def test_resolve_operands_all_good(self):
        buf = _buf(TValue(RA, public(1)))
        out = resolve_operands(buf, 2, {RB: public(2)}, operands("ra", "rb", 3))
        assert out == (public(1), public(2), public(3))
