"""The engine changes *how much work* exploration does, never *what*
it computes.

These tests hold the engine-backed Explorer to path-for-path identical
results against :class:`ReferenceExplorer` — the seed's fork-by-copy
implementation kept here verbatim: every fork duplicates the full
schedule/trace/violation lists and every step runs the raw machine (no
trial-step cache, no shared logs).  Equivalence is checked on
randomized programs from :mod:`repro.verify.generators` and, byte for
byte (``repr``), across the full litmus registry.
"""

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set

import pytest

from repro.core.config import Config
from repro.core.directives import Execute, Fetch, Retire
from repro.core.errors import StuckError
from repro.core.machine import Machine
from repro.core.observations import Rollback, is_secret_dependent
from repro.core.transient import TBr
from repro.litmus import all_cases
from repro.pitchfork.explorer import (ExplorationOptions, ExplorationResult,
                                      Explorer, PathResult, Violation,
                                      _Defer, _DelayJmpi)
from repro.verify.generators import random_config, random_program


# ---------------------------------------------------------------------------
# The reference implementation (the seed's fork-by-copy explorer)
# ---------------------------------------------------------------------------

@dataclass
class _RefPath:
    config: Config
    schedule: List
    trace: List
    violations: List
    delayed: Set[int]
    fetches: int = 0
    steps: int = 0
    exhausted: bool = False
    finished: bool = False
    deferred: Set[int] = field(default_factory=set)


class ReferenceExplorer(Explorer):
    """Fork-by-deep-copy exploration: the pre-engine implementation.

    Inherits the scheduler (Definition B.18's decision logic) and
    replaces the execution machinery: full list copies at forks, raw
    machine steps everywhere (no cache, no persistent logs).
    """

    def explore(self, initial: Config,
                stop_at_first: bool = False) -> ExplorationResult:
        result = ExplorationResult()
        stack = [_RefPath(initial, [], [], [], set())]
        while stack:
            if result.paths_explored >= self.options.max_paths:
                result.truncated = True
                break
            path = stack.pop()
            forks = self._run_path(path)
            if forks is None:
                result.paths_explored += 1
                result.states_stepped += path.steps
                result.paths.append(PathResult(
                    tuple(path.schedule), tuple(path.trace), path.config,
                    tuple(path.violations), complete=not path.exhausted))
                result.violations.extend(path.violations)
                if path.exhausted:
                    result.exhausted_paths += 1
                if stop_at_first and path.violations:
                    return result
            else:
                stack.extend(forks)
        return result

    def _run_path(self, path):
        while True:
            if path.exhausted or path.finished:
                return None
            if path.steps >= self.options.max_steps or \
                    path.fetches >= self.options.max_fetches:
                path.exhausted = True
                return None
            arms = self._next_actions(path)
            if arms is None:
                return None
            if len(arms) == 1:
                for action in arms[0]:
                    if not self._apply(path, action):
                        return None
                continue
            forks = []
            for arm in arms:
                clone = _RefPath(path.config, list(path.schedule),
                                 list(path.trace), list(path.violations),
                                 set(path.delayed),
                                 path.fetches, path.steps,
                                 deferred=set(path.deferred))
                for action in arm:
                    if not self._apply(clone, action):
                        break
                forks.append(clone)
            return forks

    def _apply(self, path, action) -> bool:
        if isinstance(action, _DelayJmpi):
            path.delayed.add(action.index)
            return True
        if isinstance(action, _Defer):
            path.deferred.add(action.index)
            return True
        try:
            config, leak = self.machine.step(path.config, action)
        except StuckError:
            path.exhausted = True
            return False
        path.steps += 1
        if isinstance(action, Fetch):
            path.fetches += 1
        for k, obs in enumerate(leak):
            if is_secret_dependent(obs):
                buffer_index = action.index \
                    if isinstance(action, Execute) else None
                path.violations.append(Violation(
                    obs, len(path.schedule), action, buffer_index,
                    tuple(path.schedule) + (action,),
                    tuple(path.trace) + leak[:k + 1]))
        if any(isinstance(o, Rollback) for o in leak):
            path.delayed = {i for i in path.delayed if i in config.buf}
            path.deferred = {i for i in path.deferred if i in config.buf}
            if isinstance(action, Execute) and \
                    isinstance(path.config.buf.get(action.index), TBr):
                path.finished = True
        elif isinstance(action, Retire) and path.deferred:
            path.deferred = {i for i in path.deferred if i in config.buf}
        path.schedule.append(action)
        path.trace.extend(leak)
        path.config = config
        return True

    def _can(self, config, d) -> bool:
        try:
            self.machine.step(config, d)
        except StuckError:
            return False
        return True

    def _can_sequence(self, config, arm) -> bool:
        current = config
        for action in arm:
            if not isinstance(action, Execute):
                return True
            try:
                current, _leak = self.machine.step(current, action)
            except StuckError:
                return False
        return True


# ---------------------------------------------------------------------------
# Equivalence assertions
# ---------------------------------------------------------------------------

def _assert_identical(machine: Machine, config: Config,
                      options: ExplorationOptions, label: str) -> None:
    got = Explorer(machine, options).explore(config)
    want = ReferenceExplorer(machine, options).explore(config)
    assert got.paths_explored == want.paths_explored, label
    assert got.truncated == want.truncated, label
    assert got.states_stepped == want.states_stepped, label
    assert len(got.paths) == len(want.paths), label
    for k, (g, w) in enumerate(zip(got.paths, want.paths)):
        where = f"{label}, path {k}"
        assert g.schedule == w.schedule, where
        assert g.trace == w.trace, where
        assert g.violations == w.violations, where
        assert g.complete == w.complete, where
        assert g.final == w.final, where
        assert repr(g) == repr(w), where
    assert [repr(v) for v in got.violations] \
        == [repr(v) for v in want.violations], label


class TestRandomizedEquivalence:
    """Path-for-path identity on random programs (both fwd modes)."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_program(self, seed):
        rng = random.Random(seed)
        program = random_program(rng, length=rng.randrange(6, 12))
        config = random_config(rng)
        machine = Machine(program)
        options = ExplorationOptions(
            bound=rng.choice((4, 6, 8)),
            fwd_hazards=bool(seed % 2),
            assume_unknown_branches=(seed % 5 == 0),
            max_paths=4000)
        _assert_identical(machine, config, options,
                          label=f"seed={seed}")

    @pytest.mark.parametrize("seed", range(6))
    def test_tight_budgets_truncate_identically(self, seed):
        """Budget-capped paths (exhausted/truncated) must also agree."""
        rng = random.Random(1000 + seed)
        program = random_program(rng, length=10)
        config = random_config(rng)
        machine = Machine(program)
        options = ExplorationOptions(bound=6, fwd_hazards=True,
                                     max_paths=5, max_steps=30)
        _assert_identical(machine, config, options,
                          label=f"budget seed={seed}")


class TestRegistryEquivalence:
    """Byte-identical exploration across the full litmus registry."""

    @pytest.mark.parametrize("case", all_cases(), ids=lambda c: c.name)
    def test_case(self, case):
        machine = Machine(case.program, rsb_policy=case.rsb_policy)
        options = ExplorationOptions(
            bound=case.min_bound,
            fwd_hazards=case.needs_fwd_hazards,
            explore_aliasing=case.needs_aliasing,
            jmpi_targets=tuple(case.jmpi_targets),
            rsb_targets=tuple(case.rsb_targets),
            max_paths=4000)
        _assert_identical(machine, case.make_config(), options,
                          label=case.name)
