"""Unit tests for the serve transport layer (`repro.serve.protocol`)
and the owned-lifecycle worker pool (`repro.serve.pool`).

The e2e daemon tests exercise the happy paths over a real socket;
these pin the edges — malformed frames, broken pools, drain/shutdown
semantics — without a daemon in the loop.
"""

import time

import pytest

from repro.serve import WarmPool
from repro.serve.pool import _worker_ping
from repro.serve import protocol
from repro.serve.protocol import ProtocolError, ServeError


# -- frames ------------------------------------------------------------------


def test_request_response_roundtrip():
    frame = protocol.request(7, "submit", {"target": {"kind": "name"}})
    decoded = protocol.decode(protocol.encode(frame))
    assert decoded == frame
    reply = protocol.decode(protocol.encode(
        protocol.response(7, {"job": "job-1"})))
    assert reply["result"] == {"job": "job-1"}


def test_request_without_params_omits_them():
    assert "params" not in protocol.request(1, "ping")


def test_error_response_carries_code_and_data():
    frame = protocol.error_response(3, protocol.UNKNOWN_JOB, "nope",
                                    {"job": "job-9"})
    decoded = protocol.decode(protocol.encode(frame))
    assert decoded["error"]["code"] == protocol.UNKNOWN_JOB
    assert decoded["error"]["data"] == {"job": "job-9"}
    assert "data" not in protocol.error_response(3, -1, "x")["error"]


def test_encode_is_one_line():
    line = protocol.encode(protocol.request(1, "ping"))
    assert line.endswith(b"\n") and line.count(b"\n") == 1


@pytest.mark.parametrize("line,code", [
    (b"{ not json", protocol.PARSE_ERROR),
    (b"\xff\xfe", protocol.PARSE_ERROR),
    (b'"a bare string"', protocol.INVALID_REQUEST),
    (b'{"jsonrpc": "1.0", "method": "ping"}', protocol.INVALID_REQUEST),
    (b'{"jsonrpc": "2.0", "method": 42}', protocol.INVALID_REQUEST),
    (b'{"jsonrpc": "2.0", "method": "ping", "params": [1]}',
     protocol.INVALID_PARAMS),
])
def test_bad_frames_raise_typed_errors(line, code):
    with pytest.raises(ProtocolError) as err:
        protocol.decode(line)
    assert err.value.code == code


def test_oversized_frame_rejected():
    huge = b" " * (protocol.MAX_LINE + 1)
    with pytest.raises(ProtocolError) as err:
        protocol.decode(huge)
    assert err.value.code == protocol.INVALID_REQUEST


def test_serve_error_defaults_empty_data():
    err = ServeError(protocol.DRAINING, "draining")
    assert err.code == protocol.DRAINING and err.data == {}


# -- the warm pool -----------------------------------------------------------


def test_pool_starts_lazily_and_counts():
    pool = WarmPool(workers=1)
    assert pool.started is False
    try:
        assert pool.submit(_worker_ping).result(timeout=60) > 0
        assert pool.started is True
        pool.drain(timeout=60)
        stats = pool.stats()
        assert stats["tasks_submitted"] == 1
        assert stats["tasks_completed"] == 1
        assert stats["tasks_failed"] == 0
    finally:
        pool.shutdown()


def test_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        WarmPool(workers=0)


def test_health_check_answers_true():
    pool = WarmPool(workers=1)
    try:
        assert pool.health_check(timeout=60) is True
    finally:
        pool.shutdown()


def test_restart_tears_down_and_rebuilds_on_demand():
    pool = WarmPool(workers=1)
    try:
        pool.start()
        assert pool.started
        pool.restart()
        assert pool.started is False
        assert pool.restarts == 1
        # Next submit transparently rebuilds.
        assert pool.submit(_worker_ping).result(timeout=60) > 0
    finally:
        pool.shutdown()


def test_health_check_rebuilds_a_broken_pool():
    pool = WarmPool(workers=1)
    try:
        pool.start()
        # Simulate the OOM-killer scenario: nuke the workers behind
        # the executor's back, then health-check.
        for proc in pool._executor._processes.values():
            proc.terminate()
        time.sleep(0.2)
        assert pool.health_check(timeout=60) is True
        assert pool.restarts >= 0          # rebuilt via either path
        assert pool.submit(_worker_ping).result(timeout=60) > 0
    finally:
        pool.shutdown()


def test_drain_waits_for_inflight_work():
    pool = WarmPool(workers=1)
    try:
        future = pool.submit(time.sleep, 0.3)
        assert pool.inflight >= 1
        assert pool.drain(timeout=60) is True
        assert future.done()
        assert pool.inflight == 0
    finally:
        pool.shutdown()


def test_drain_with_nothing_inflight_is_immediate():
    pool = WarmPool(workers=1)
    try:
        assert pool.drain(timeout=0.01) is True
    finally:
        pool.shutdown()


def test_shutdown_is_idempotent_and_final():
    pool = WarmPool(workers=1)
    pool.submit(_worker_ping).result(timeout=60)
    pool.shutdown()
    pool.shutdown()                        # second call is a no-op
    assert pool.started is False
    with pytest.raises(RuntimeError):
        pool.submit(_worker_ping)
    with pytest.raises(RuntimeError):
        pool.start()


def test_failed_task_counted_not_raised_at_submit():
    pool = WarmPool(workers=1)
    try:
        future = pool.submit(divmod, 1, 0)      # ZeroDivisionError
        with pytest.raises(ZeroDivisionError):
            future.result(timeout=60)
        pool.drain(timeout=60)
        assert pool.stats()["tasks_failed"] == 1
    finally:
        pool.shutdown()
