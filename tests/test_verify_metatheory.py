"""Tests for the executable metatheory (Appendix B) and its generators."""

import random

import pytest

from repro.core import Machine, run
from repro.verify import (check_consistency, check_determinism,
                          check_label_stability,
                          check_sequential_equivalence, check_tool_soundness,
                          random_config, random_program, random_schedule,
                          run_experiments)


class TestGenerators:
    def test_programs_are_loop_free(self):
        rng = random.Random(7)
        for _ in range(20):
            program = random_program(rng)
            for n, _instr in program.items():
                for succ in program.successors(n):
                    assert succ > n

    def test_random_schedule_is_well_formed(self):
        rng = random.Random(3)
        for _ in range(10):
            program = random_program(rng)
            machine = Machine(program)
            config = random_config(rng)
            schedule, final = random_schedule(machine, config, rng)
            replay = run(machine, config, schedule, record_steps=False)
            assert replay.final == final

    def test_random_schedules_differ(self):
        rng = random.Random(5)
        program = random_program(rng, length=12)
        machine = Machine(program)
        config = random_config(rng)
        s1, _ = random_schedule(machine, config, rng)
        s2, _ = random_schedule(machine, config, rng)
        assert s1 != s2  # overwhelmingly likely


class TestSingleChecks:
    @pytest.fixture()
    def instance(self):
        rng = random.Random(11)
        program = random_program(rng, length=12)
        machine = Machine(program)
        config = random_config(rng)
        schedule, _ = random_schedule(machine, config, rng)
        return machine, config, schedule, rng

    def test_determinism(self, instance):
        machine, config, schedule, _rng = instance
        assert check_determinism(machine, config, schedule)

    def test_sequential_equivalence(self, instance):
        machine, config, schedule, _rng = instance
        assert check_sequential_equivalence(machine, config, schedule)

    def test_label_stability(self, instance):
        machine, config, schedule, _rng = instance
        assert check_label_stability(machine, config, schedule)

    def test_tool_soundness(self, instance):
        machine, config, schedule, _rng = instance
        assert check_tool_soundness(machine, config, schedule, bound=12)

    def test_consistency(self, instance):
        machine, config, schedule, rng = instance
        other, _ = random_schedule(machine, config, rng)
        assert check_consistency(machine, config, schedule, other)


class TestSweeps:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_experiment_sweep(self, seed):
        stats = run_experiments(seed=seed, programs=10,
                                schedules_per_program=3)
        assert stats.ok, f"{stats.failures} failures of {stats.experiments}"

    def test_longer_programs(self):
        stats = run_experiments(seed=9, programs=6,
                                schedules_per_program=2, program_length=18)
        assert stats.ok
