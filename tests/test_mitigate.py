"""repro.mitigate: localization, per-site passes, the repair loop, and
the asm round-trip the repaired programs rely on."""

import json

import pytest

from repro.api import AnalysisManager, AnalysisOptions, Project, Report
from repro.asm import assemble, to_source
from repro.asm.disasm import _referenced_points
from repro.core.machine import Machine
from repro.core.isa import Fence, Load, Op
from repro.core.sct import check_sct
from repro.ctcomp.passes import (count_fences, fence_loads, harden,
                                 insert_fences, retpolinize)
from repro.litmus import all_cases, expected_repair_status, find_case, \
    load_suite
from repro.mitigate import (MitigationError, apply_fence, apply_slh,
                            localize_all, remove_fence, remove_slh, repair,
                            verify_certificate)
from repro.pitchfork import analyze, enumerate_schedules


def _case_kwargs(case):
    """The exploration knobs a litmus case's ground truth requires."""
    options = AnalysisOptions.for_case(case)
    return dict(bound=options.bound, fwd_hazards=options.fwd_hazards,
                explore_aliasing=options.explore_aliasing,
                jmpi_targets=options.jmpi_targets,
                rsb_targets=options.rsb_targets,
                max_paths=options.max_paths)


def _repair_case(case, **overrides):
    kwargs = _case_kwargs(case)
    kwargs.update(overrides)
    return repair(case.program, case.make_config(), name=case.name,
                  rsb_policy=case.rsb_policy, **kwargs)


def _round_trips(program) -> bool:
    base = _referenced_points(program)[0]
    return assemble(to_source(program), base=base) == program


# ---------------------------------------------------------------------------
# asm round-trip (satellite): every pass output prints and re-parses
# ---------------------------------------------------------------------------

class TestAsmRoundTrip:
    def test_explicit_successor_grammar(self):
        program = assemble("%ra = op mov, 1 -> 4\n"
                           "%rb = load [32] -> 1\n"
                           "store %ra, [33] -> 5\n"
                           "fence -> 2\n"
                           "halt\n")
        assert program[1].next == 4
        assert program[2].next == 1
        assert program[3].next == 5
        assert program[4].next == 2

    def test_entry_directive_accepts_points(self):
        program = assemble(".entry 2\n%ra = op mov, 1\n%rb = op mov, 2\n")
        assert program.entry == 2

    def test_every_litmus_program_round_trips(self):
        for case in all_cases():
            assert _round_trips(case.program), case.name

    @pytest.mark.parametrize("transform", [insert_fences, retpolinize,
                                           fence_loads, harden])
    def test_every_blanket_pass_output_round_trips(self, transform):
        for case in all_cases():
            assert _round_trips(transform(case.program)), case.name

    def test_program_equality_is_structural(self):
        a = assemble("%ra = op mov, 1\nhalt\n")
        b = assemble("lbl: %ra = op mov, 1\nhalt\n")
        assert a == b                # labels are metadata
        c = assemble("%ra = op mov, 2\nhalt\n")
        assert a != c
        assert hash(a) == hash(b)


# ---------------------------------------------------------------------------
# localization
# ---------------------------------------------------------------------------

class TestLocalize:
    def _sites(self, name):
        case = find_case(name)
        kwargs = _case_kwargs(case)
        report = analyze(case.program, case.make_config(),
                         name=case.name, stop_at_first=False,
                         rsb_policy=case.rsb_policy, **kwargs)
        machine = Machine(case.program, rsb_policy=case.rsb_policy)
        return case, localize_all(machine, case.make_config(),
                                  report.violations)

    def test_kocher_01_attributed_to_transmit_load(self):
        case, sites = self._sites("kocher_01")
        assert len(sites) == 1
        site = sites[0]
        assert site.cause == "v1" and site.kind == "load"
        # The mispredicted bounds check opened the window…
        assert site.branch_pp == case.program.label("body") - 1
        # …the transmitting load was flagged, and the access load that
        # read the secret is recorded as the taint source.
        assert site.taint_pp == case.program.label("body")
        assert site.leak_pp == site.taint_pp + 1

    def test_v4_case_attributed_to_bypassed_store(self):
        _case, sites = self._sites("v4_fig7")
        assert any(s.cause == "v4" and s.store_pps for s in sites)

    def test_v2_and_ret2spec_attribution(self):
        _case, sites = self._sites("v2_fig11")
        assert any(s.cause == "v2" and s.jmpi_pp is not None for s in sites)
        _case, sites = self._sites("ret2spec_fig12")
        assert any(s.cause == "ret2spec" for s in sites)

    def test_sequential_leak_classified_as_sequential(self):
        _case, sites = self._sites("v1_sequential_leak")
        assert sites and all(s.cause == "sequential" for s in sites)


# ---------------------------------------------------------------------------
# per-site passes
# ---------------------------------------------------------------------------

class TestPasses:
    def test_fence_splice_and_inverse(self):
        case = find_case("kocher_01")
        pp = case.program.label("body")
        repaired, applied = apply_fence(case.program, pp)
        assert isinstance(repaired[pp], Fence)
        assert isinstance(repaired[applied.relocated_pp], Load)
        assert repaired[applied.relocated_pp] == case.program[pp]
        assert _round_trips(repaired)
        assert remove_fence(repaired, applied) == case.program

    def test_slh_masks_register_operands_only(self):
        case = find_case("kocher_01")
        machine = Machine(case.program)
        report = analyze(case.program, case.make_config(),
                         stop_at_first=False, **_case_kwargs(case))
        site = localize_all(machine, case.make_config(),
                            report.violations)[0]
        repaired, applied = apply_slh(case.program, site, site.taint_pp)
        assert applied.masked_regs == ("rx",)
        head = repaired[site.taint_pp]
        assert isinstance(head, Op)          # the mask sequence head
        load = repaired[applied.relocated_pp]
        assert isinstance(load, Load)
        assert _round_trips(repaired)
        assert remove_slh(repaired, applied) == case.program

    def test_slh_refuses_non_loads(self):
        case = find_case("kocher_01")
        machine = Machine(case.program)
        report = analyze(case.program, case.make_config(),
                         stop_at_first=False, **_case_kwargs(case))
        site = localize_all(machine, case.make_config(),
                            report.violations)[0]
        with pytest.raises(MitigationError):
            apply_slh(case.program, site, site.branch_pp)


# ---------------------------------------------------------------------------
# the repair loop across the whole registry (acceptance)
# ---------------------------------------------------------------------------

class TestRepairRegistry:
    def test_every_case_repairs_to_its_expected_status(self):
        for case in all_cases():
            result = _repair_case(case)
            assert result.status == expected_repair_status(case), \
                f"{case.name}: {result.status}"
            assert result.secure, case.name
            # The repaired program is printable and re-parseable.
            assert _round_trips(result.program), case.name
            # The certificate re-verifies from scratch.
            assert verify_certificate(
                result.certificate, case.make_config(),
                rsb_policy=case.rsb_policy, original=case.program,
                **_case_kwargs(case)), case.name
            # Repairs never alter the sequential semantics.
            assert result.semantics_preserved, case.name
            assert result.overhead_steps >= 0, case.name

    def test_sequential_residue_is_reported_not_hidden(self):
        case = find_case("kocher_02")
        result = _repair_case(case)
        assert result.status == "sequential-residual"
        assert result.sequential_leaks
        # The verifier's last word still shows the architectural leak.
        assert not result.final_report.secure


class TestSemanticsFailures:
    """Equivalence-check rejections are named and surfaced, never
    swallowed (the old bare ``except Exception`` hid them all)."""

    def test_preserves_semantics_names_the_divergence(self):
        from repro.core import Config, Memory, run_sequential
        from repro.mitigate.synth import _preserves_semantics
        cfg = Config.initial({}, Memory(), pc=1)
        base_prog = assemble("%ra = op add, 1, 0\nhalt")
        base = run_sequential(Machine(base_prog), cfg, max_retires=10)
        same = assemble("%ra = op add, 0, 1\nhalt")
        assert _preserves_semantics(base, same, cfg, "directive", 10) is None
        wrong_reg = assemble("%ra = op add, 2, 0\nhalt")
        why = _preserves_semantics(base, wrong_reg, cfg, "directive", 10)
        assert why == "final value of register ra diverges"
        extra_store = assemble(
            "%ra = op add, 1, 0\nstore 1, [0x40]\nhalt")
        why = _preserves_semantics(base, extra_store, cfg, "directive", 10)
        assert why == "observation trace diverges"

    def test_rejected_candidates_land_in_the_repair_report(self, monkeypatch):
        # Force every SLH candidate (no new fence) to fail equivalence:
        # the loop must fall back to fences, and the report must list
        # each rejection with its point and reason.
        import repro.mitigate.synth as synth
        case = find_case("kocher_01")
        real = synth._preserves_semantics
        base_fences = count_fences(case.program)

        def fake(base_result, candidate, config, rsb_policy, max_retires):
            if count_fences(candidate) == base_fences:
                return "injected divergence"
            return real(base_result, candidate, config, rsb_policy,
                        max_retires)

        monkeypatch.setattr(synth, "_preserves_semantics", fake)
        result = _repair_case(case, policy="slh")
        assert result.secure
        assert any("rejected): injected divergence" in entry
                   for entry in result.semantics_failures)
        assert result.certificate["semantics_failures"] == \
            list(result.semantics_failures)

    def test_clean_repairs_report_no_failures(self):
        result = _repair_case(find_case("kocher_01"))
        assert result.semantics_failures == ()
        assert result.certificate["semantics_failures"] == []


class TestMinimality:
    def test_fence_policy_beats_blanket_on_at_least_10_kocher_cases(self):
        strictly_fewer = 0
        for case in load_suite("kocher"):
            result = _repair_case(case, policy="fence")
            assert result.secure, case.name
            if result.status == "repaired" and \
                    result.fences_added < result.blanket_fences:
                strictly_fewer += 1
        assert strictly_fewer >= 10

    def test_every_remaining_fence_is_load_bearing(self):
        # Local minimality (the shrink invariant's fixpoint): removing
        # any single surviving fence re-introduces a transient leak.
        for name in ("kocher_01", "v4_fig7", "v2_fig11"):
            case = find_case(name)
            result = _repair_case(case, policy="fence")
            assert result.status == "repaired"
            fence_steps = [s for s in result.steps
                           if s.applied.policy == "fence"]
            assert fence_steps, name
            for step in fence_steps:
                weakened = remove_fence(result.program, step.applied)
                assert weakened is not None
                report = analyze(weakened,
                                 case.make_config().with_(
                                     pc=weakened.entry),
                                 stop_at_first=False,
                                 rsb_policy=case.rsb_policy,
                                 **_case_kwargs(case))
                assert not report.secure, (name, step.applied.site_pp)

    def test_auto_policy_prefers_masks_over_fences_for_v1(self):
        result = _repair_case(find_case("kocher_01"))
        assert result.status == "repaired"
        assert result.slh_sites == 1 and result.fences_added == 0
        assert result.fences_added < result.blanket_fences


# ---------------------------------------------------------------------------
# blanket hardening property (satellite): the baseline the loop beats
# ---------------------------------------------------------------------------

class TestBlanketHardening:
    def test_harden_closes_every_speculative_leak(self):
        # Pitchfork property across the full registry: the blanket
        # combination (retpoline + fence-after-branch + fence-before-
        # load) removes every speculation-introduced leak; what remains
        # violates *sequential* constant time, which no fence can fix.
        for case in all_cases():
            hardened = harden(case.program)
            config = case.make_config().with_(pc=hardened.entry)
            report = analyze(hardened, config, stop_at_first=False,
                             rsb_policy=case.rsb_policy,
                             **_case_kwargs(case))
            if case.leaks_sequentially:
                assert not report.secure, case.name
            else:
                assert report.secure, case.name

    def test_harden_passes_check_sct(self):
        # The two-trace Definition 3.1 check over enumerated tool
        # schedules agrees: hardened programs are SCT except the
        # sequentially-leaking ones.
        for case in all_cases():
            hardened = harden(case.program)
            machine = Machine(hardened, rsb_policy=case.rsb_policy)
            config = case.make_config().with_(pc=hardened.entry)
            schedules = enumerate_schedules(machine, config, bound=6,
                                            fwd_hazards=True, max_paths=400)
            result = check_sct(machine, config, schedules)
            assert result.ok == (not case.leaks_sequentially), case.name

    def test_blanket_baseline_is_recorded(self):
        # The fence counts the repair loop is measured against.
        for case in load_suite("kocher"):
            blanket = count_fences(insert_fences(case.program)) \
                - count_fences(case.program)
            result = _repair_case(case)
            assert result.blanket_fences == blanket
            if result.status == "repaired":
                assert blanket >= 2   # the baseline is never trivial


# ---------------------------------------------------------------------------
# API / Report / CLI integration
# ---------------------------------------------------------------------------

class TestRepairAnalysis:
    def test_hub_runs_repair(self):
        report = Project.from_litmus("kocher_01").analyses.repair()
        assert report.status == "repaired" and report.ok
        assert report.mitigation is not None
        assert report.mitigation["slh_sites"] == 1
        assert report.mitigation["fences_added"] == 0
        assert report.states_stepped > 0

    def test_report_round_trip_covers_mitigation(self):
        report = Project.from_litmus("kocher_01").analyses.repair()
        data = json.loads(report.to_json())
        assert data["schema_version"] == 8
        assert data["mitigation"]["steps"]
        assert Report.from_json(report.to_json()) == report

    def test_certificate_program_reassembles(self):
        project = Project.from_litmus("v4_fig7")
        report = project.analyses.repair()
        cert = report.mitigation
        repaired = assemble(cert["program"], base=cert["base"])
        check = analyze(repaired,
                        project.config().with_(pc=repaired.entry),
                        stop_at_first=False,
                        bound=project.options.bound,
                        fwd_hazards=project.options.fwd_hazards)
        assert check.secure

    def test_policy_fence_respected(self):
        report = Project.from_litmus("kocher_01").analyses.repair(
            policy="fence")
        assert report.mitigation["slh_sites"] == 0
        assert report.mitigation["fences_added"] >= 1

    def test_sharded_repair_matches_serial(self):
        project = Project.from_litmus("kocher_05")
        serial = project.analyses.repair(stop_at_first=None)
        sharded = project.analyses.repair(shards=2)
        assert serial.status == sharded.status == "repaired"
        assert (serial.mitigation["fences_added"]
                == sharded.mitigation["fences_added"])
        assert (serial.mitigation["slh_sites"]
                == sharded.mitigation["slh_sites"])

    def test_manager_batch_repair(self):
        projects = [Project.from_litmus(n)
                    for n in ("kocher_01", "kocher_03", "v4_fig7")]
        manager = AnalysisManager("repair")
        reports = manager.run(projects)
        assert [r.status for r in reports] == ["repaired"] * 3
        again = manager.run(projects)
        assert manager.cache_info.hits == 3
        assert again == reports

    def test_gave_up_surfaces_as_insecure(self):
        # A hopeless budget still terminates and reports honestly.
        report = Project.from_litmus("kocher_01").analyses.repair(
            max_repair_rounds=1, policy="fence", shrink=False)
        # One round places a fence but never re-verifies clean: the
        # loop ends without a "repaired" verdict.
        assert report.status in ("gave-up", "repaired")
        if report.status == "gave-up":
            assert not report.ok

    def test_options_validate_policy(self):
        with pytest.raises(ValueError):
            AnalysisOptions(policy="nonsense")
        with pytest.raises(ValueError):
            AnalysisOptions(max_repair_rounds=0)


class TestRepairCLI:
    def test_repair_flagged_case_exits_0_when_repaired(self, capsys):
        from repro.api.cli import main
        assert main(["repair", "kocher_01"]) == 0
        out = capsys.readouterr().out
        assert "REPAIRED" in out and "SLH" in out

    def test_repair_json_carries_certificate(self, capsys):
        from repro.api.cli import main
        assert main(["repair", "kocher_01", "--policy", "fence",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "repaired"
        assert data["mitigation"]["fences_added"] >= 1
        assert "fence" in data["mitigation"]["program"]

    def test_repair_sequential_residual_exits_1(self, capsys):
        from repro.api.cli import main
        assert main(["repair", "v1_sequential_leak"]) == 1

    def test_repair_check_passes_on_full_coverage(self, capsys):
        from repro.api.cli import main
        assert main(["repair", "kocher_01", "--check"]) == 0

    def test_repair_rejects_other_verifiers_exit_3(self, capsys):
        from repro.api.cli import main
        assert main(["repair", "kocher_01", "-a", "sct"]) == 3

    def test_repair_accepts_pitchfork_verifier_flag(self, capsys):
        from repro.api.cli import main
        assert main(["repair", "kocher_01", "-a", "pitchfork",
                     "--strategy", "coverage", "--shards", "2"]) == 0
