"""The frontier abstraction (repro.engine.frontier).

Unit tests for the four search strategies' ordering contracts, plus the
explorer-level guarantees: every strategy enumerates the same tool-
schedule set (Theorem B.20 makes the set order-invariant), ``dfs``
reproduces the seed explorer's order byte for byte, and seeded
strategies are deterministic.
"""

import pytest

from repro.core.machine import Machine
from repro.engine import available_strategies, make_frontier
from repro.litmus import find_case
from repro.pitchfork import ExplorationOptions, Explorer, violation_set


def _case_options(case, **kw):
    return ExplorationOptions(
        bound=case.min_bound, fwd_hazards=case.needs_fwd_hazards,
        explore_aliasing=case.needs_aliasing,
        jmpi_targets=case.jmpi_targets, rsb_targets=case.rsb_targets, **kw)


def _explore(case, **kw):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    explorer = Explorer(machine, _case_options(case, **kw))
    return explorer.explore(case.make_config(), stop_at_first=False)


def _violation_set(result):
    return violation_set(result.violations)


class TestFrontierOrdering:
    def test_registry(self):
        assert available_strategies() == (
            "bfs", "coverage", "dfs", "mcts", "random")

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            make_frontier("best-first")

    def test_dfs_is_lifo(self):
        f = make_frontier("dfs")
        f.extend([1, 2, 3])
        assert [f.pop(), f.pop(), f.pop()] == [3, 2, 1]

    def test_bfs_is_fifo(self):
        f = make_frontier("bfs")
        f.extend([1, 2, 3])
        f.push(4)
        assert [f.pop() for _ in range(4)] == [1, 2, 3, 4]

    def test_random_is_seed_deterministic(self):
        def drain(seed):
            f = make_frontier("random", seed=seed)
            f.extend(range(10))
            out = [f.pop() for _ in range(5)]
            f.extend(range(10, 15))
            out += [f.pop() for _ in range(len(f))]
            return out

        assert drain(7) == drain(7)
        assert sorted(drain(7)) == sorted(range(15))

    def test_coverage_prefers_unvisited_pcs(self):
        f = make_frontier("coverage", pc_of=lambda item: item[0])
        f.push((1, "a"))
        assert f.pop() == (1, "a")      # PC 1 now has one visit
        # An arm at the already-visited PC 1 scores 1 at push time; an
        # arm at the unvisited PC 2 scores 0 and jumps the queue even
        # though it was pushed later.
        f.push((1, "b"))
        f.push((2, "c"))
        assert f.pop() == (2, "c")
        assert f.pop() == (1, "b")

    def test_coverage_scores_at_push_time(self):
        f = make_frontier("coverage", pc_of=lambda item: item)
        f.push(5)
        assert f.pop() == 5             # visit count for PC 5 becomes 1
        f.push(5)
        f.push(6)
        assert f.pop() == 6             # 6 scored 0, 5 scored 1

    def test_len_and_bool(self):
        for name in available_strategies():
            f = make_frontier(name)
            assert not f and len(f) == 0
            f.push(1)
            assert f and len(f) == 1

    def test_empty_pop_raises_indexerror_everywhere(self):
        for name in available_strategies():
            with pytest.raises(IndexError):
                make_frontier(name).pop()


class TestExplorerStrategies:
    CASES = ("kocher_01", "kocher_05", "kocher_13", "v1_fig1")

    @pytest.mark.parametrize("name", CASES)
    @pytest.mark.parametrize("strategy", ("bfs", "random", "coverage",
                                          "mcts"))
    def test_same_violation_and_path_sets_as_dfs(self, name, strategy):
        case = find_case(name)
        dfs = _explore(case, strategy="dfs")
        other = _explore(case, strategy=strategy, seed=3)
        assert _violation_set(other) == _violation_set(dfs)
        assert sorted(repr(p.schedule) for p in other.paths) == \
            sorted(repr(p.schedule) for p in dfs.paths)

    def test_dfs_matches_seed_order_byte_for_byte(self):
        # The default options object never changed, so the DFS frontier
        # must reproduce the pre-frontier explorer's enumeration order
        # (the engine-equivalence suite pins the content; this pins the
        # order to a known observable: paths are enumerated with the
        # mispredicted arm first, see Explorer._fetch_choices).
        case = find_case("kocher_05")
        first = _explore(case)
        second = _explore(case)
        assert [p.schedule for p in first.paths] == \
            [p.schedule for p in second.paths]

    def test_random_same_seed_same_path_order(self):
        case = find_case("kocher_05")
        a = _explore(case, strategy="random", seed=11)
        b = _explore(case, strategy="random", seed=11)
        assert [p.schedule for p in a.paths] == [p.schedule for p in b.paths]

    def test_random_different_seed_same_set(self):
        case = find_case("kocher_05")
        a = _explore(case, strategy="random", seed=0)
        b = _explore(case, strategy="random", seed=1)
        assert sorted(repr(p.schedule) for p in a.paths) == \
            sorted(repr(p.schedule) for p in b.paths)

    def test_options_reject_unknown_strategy(self):
        from repro.api import AnalysisOptions
        with pytest.raises(ValueError, match="strategy"):
            AnalysisOptions(strategy="dijkstra")
        with pytest.raises(ValueError, match="shards"):
            AnalysisOptions(shards=0)
