"""Machine tests: load/store rules and hazards (§3.4, Fig 5)."""

import pytest

from repro.asm import assemble
from repro.core import (Config, Fwd, Machine, Memory, Read, RETIRE, Rollback,
                        StuckError, TStore, TValue, Write, execute, fetch,
                        run)
from repro.core.lattice import PUBLIC, SECRET
from repro.core.values import BOTTOM, Value, secret


def _machine(src: str) -> Machine:
    return Machine(assemble(src))


class TestLoadExecute:
    def test_nodep_reads_memory_and_annotates(self):
        m = _machine("%ra = load [0x40]\nhalt")
        mem = Memory().write(0x40, secret(7))
        res = run(m, Config.initial({}, mem, 1), [fetch(), execute(1)])
        entry = res.final.buf[1]
        assert isinstance(entry, TValue)
        assert entry.value == secret(7)
        assert entry.dep is BOTTOM and entry.addr == 0x40 and entry.pp == 1
        assert res.trace == (Read(0x40, PUBLIC),)

    def test_address_label_joins_operands(self):
        m = _machine("%ra = load [0x40, %rx]\nhalt")
        c = Config.initial({"rx": secret(2)}, Memory(), 1)
        res = run(m, c, [fetch(), execute(1)])
        assert res.trace == (Read(0x42, SECRET),)

    def test_forward_from_resolved_store(self):
        m = _machine("store 12, [0x43]\n%rc = load [0x43]\nhalt")
        res = run(m, Config.initial({}, Memory(), 1),
                  [fetch(), fetch(), execute(1, "addr"), execute(2)])
        entry = res.final.buf[2]
        assert entry.value.val == 12 and entry.dep == 1 and entry.addr == 0x43
        assert res.trace[-1] == Fwd(0x43, PUBLIC)

    def test_forward_needs_resolved_value(self):
        m = _machine("store %rv, [0x43]\n%rc = load [0x43]\nhalt")
        c = Config.initial({"rv": 5}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), execute(1, "addr")])
        with pytest.raises(StuckError):
            m.step(res.final, execute(2))

    def test_load_skips_unresolved_store_addresses(self):
        """The v4 behaviour: pending store addresses don't block loads."""
        m = _machine("store 0, [%rp]\n%rc = load [0x40]\nhalt")
        mem = Memory().write(0x40, secret(9))
        c = Config.initial({"rp": 0x40}, mem, 1)
        res = run(m, c, [fetch(), fetch(), execute(2)])
        assert res.final.buf[2].value == secret(9)  # stale read
        assert res.trace == (Read(0x40, PUBLIC),)

    def test_most_recent_matching_store_wins(self):
        m = _machine(
            "store 1, [0x40]\nstore 2, [0x40]\n%rc = load [0x40]\nhalt")
        res = run(m, Config.initial({}, Memory(), 1),
                  [fetch(), fetch(), fetch(),
                   execute(1, "addr"), execute(2, "addr"), execute(3)])
        assert res.final.buf[3].value.val == 2
        assert res.final.buf[3].dep == 2


class TestStoreExecute:
    def test_value_then_addr(self):
        m = _machine("store %rv, [0x40]\nhalt")
        c = Config.initial({"rv": secret(7)}, Memory(), 1)
        res = run(m, c, [fetch(), execute(1, "value"), execute(1, "addr")])
        entry = res.final.buf[1]
        assert entry.fully_resolved()
        assert entry.src == secret(7)
        assert entry.addr == Value(0x40, PUBLIC)

    def test_addr_then_value(self):
        m = _machine("store %rv, [0x40]\nhalt")
        c = Config.initial({"rv": secret(7)}, Memory(), 1)
        res = run(m, c, [fetch(), execute(1, "addr"), execute(1, "value")])
        assert res.final.buf[1].fully_resolved()

    def test_addr_resolution_leaks_fwd(self):
        m = _machine("store 0, [0x40, %rx]\nhalt")
        c = Config.initial({"rx": secret(2)}, Memory(), 1)
        res = run(m, c, [fetch(), execute(1, "addr")])
        assert res.trace == (Fwd(0x42, SECRET),)

    def test_double_value_resolution_stuck(self):
        m = _machine("store %rv, [0x40]\nhalt")
        c = Config.initial({"rv": 1}, Memory(), 1)
        res = run(m, c, [fetch(), execute(1, "value")])
        with pytest.raises(StuckError):
            m.step(res.final, execute(1, "value"))

    def test_immediate_value_resolution_stuck(self):
        """'Either step may be skipped if already immediate' (§3.4)."""
        m = _machine("store 3, [0x40]\nhalt")
        res = run(m, Config.initial({}, Memory(), 1), [fetch()])
        with pytest.raises(StuckError):
            m.step(res.final, execute(1, "value"))


class TestStoreHazard:
    """Figure 5: a late store-address resolution invalidates a forward."""

    SRC = """
        store 12, [0x43]
        store 20, [3, %ra]
        %rc = load [0x43]
        halt
    """

    def _run_fig5(self):
        m = _machine(self.SRC)
        c = Config.initial({"ra": 0x40}, Memory(), 1)
        return m, run(m, c, [fetch(), fetch(), fetch(), execute(1, "addr"),
                             execute(3), execute(2, "addr")])

    def test_hazard_rolls_back_to_load(self):
        m, res = self._run_fig5()
        assert res.final.pc == 3               # the load's program point
        assert 3 not in res.final.buf          # load squashed

    def test_hazard_resolves_the_store(self):
        _m, res = self._run_fig5()
        entry = res.final.buf[2]
        assert isinstance(entry, TStore) and entry.addr.val == 0x43

    def test_hazard_leakage(self):
        _m, res = self._run_fig5()
        assert res.trace == (Fwd(0x43, PUBLIC), Fwd(0x43, PUBLIC),
                             Rollback(), Fwd(0x43, PUBLIC))

    def test_no_hazard_when_forward_was_from_newer_store(self):
        """A load that forwarded from store j ≥ i is not a hazard for i."""
        m = _machine(self.SRC)
        c = Config.initial({"ra": 0x40}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), fetch(),
                         execute(2, "addr"), execute(3), execute(1, "addr")])
        # load forwarded from store 2 (newer than 1): resolving 1 is fine
        assert 3 in res.final.buf
        assert not any(isinstance(o, Rollback) for o in res.trace)

    def test_memory_loaded_value_hazards_with_any_store(self):
        """⊥ < n: a load that read memory hazards with *any* prior store
        resolving to its address (Fig 7's v4 pattern)."""
        m = _machine("store 0, [%rp]\n%rc = load [0x40]\nhalt")
        mem = Memory().write(0x40, secret(9))
        c = Config.initial({"rp": 0x40}, mem, 1)
        res = run(m, c, [fetch(), fetch(), execute(2), execute(1, "addr")])
        assert any(isinstance(o, Rollback) for o in res.trace)
        assert res.final.pc == 2


class TestRetire:
    def test_value_retire_commits_register(self):
        m = _machine("%ra = load [0x40]\nhalt")
        mem = Memory().write(0x40, secret(7))
        res = run(m, Config.initial({}, mem, 1),
                  [fetch(), execute(1), RETIRE])
        assert res.final.reg("ra") == secret(7)
        assert res.final.is_terminal()

    def test_store_retire_commits_memory_and_leaks_write(self):
        m = _machine("store 5, [0x40]\nhalt")
        res = run(m, Config.initial({}, Memory(), 1),
                  [fetch(), execute(1, "addr"), RETIRE])
        assert res.final.mem.read(0x40).val == 5
        assert res.trace[-1] == Write(0x40, PUBLIC)

    def test_unresolved_store_cannot_retire(self):
        m = _machine("store 5, [0x40]\nhalt")
        res = run(m, Config.initial({}, Memory(), 1), [fetch()])
        with pytest.raises(StuckError):
            m.step(res.final, RETIRE)

    def test_retire_empty_buffer_stuck(self):
        m = _machine("%ra = op mov, 0\nhalt")
        with pytest.raises(StuckError):
            m.step(Config.initial({}, Memory(), 1), RETIRE)

    def test_retire_is_fifo(self):
        m = _machine("%ra = load [0x40]\n%rb = load [0x41]\nhalt")
        res = run(m, Config.initial({}, Memory(), 1),
                  [fetch(), fetch(), execute(2), execute(1)])
        # retiring commits index 1 (ra) first
        step1, _ = m.step(res.final, RETIRE)
        assert "ra" in {r.name for r in step1.regs}
        assert step1.buf.min_index() == 2
