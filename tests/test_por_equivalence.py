"""Partial-order reduction differential suite: the PR's strict bar.

Every pruning level must flag the identical violation *observation* set
as the unreduced ``prune="none"`` baseline — on the full litmus
registry (every registered case at its ground-truth knobs), across
every search strategy and shard count, and on randomized programs.
Mazurkiewicz-equivalent schedules produce the same observations in
permuted order, so observation sets (not witnessing schedules) are the
invariant pruning preserves; see ``repro.pitchfork.reports
.observation_set``.

Structure is pinned too: a ``full`` run's DFS path list is a
subsequence of the ``sleepset`` run's in prefix order (pruning only
truncates paths at covered rollbacks or drops duplicate arms — it
never invents or reorders exploration), sharded DFS merges stay
byte-identical to serial ones at every level, and on the Kocher suite
the reduced levels explore strictly less than the raw Definition B.18
baseline.
"""

import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.isa import Store
from repro.core.machine import Machine
from repro.engine import available_strategies
from repro.litmus import all_cases
from repro.pitchfork import (ExplorationOptions, Explorer, ShardedExplorer,
                             observation_set)
from repro.verify.generators import random_config, random_program

STRATEGIES = available_strategies()
LEVELS = ("none", "sleepset", "full")
RANDOM_PROGRAMS = 30


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolExecutor(max_workers=4) as executor:
        yield executor


def _case_options(case, **kw):
    kw.setdefault("strategy", "dfs")
    kw.setdefault("bound", case.min_bound)
    kw.setdefault("fwd_hazards", case.needs_fwd_hazards)
    kw.setdefault("explore_aliasing", case.needs_aliasing)
    kw.setdefault("jmpi_targets", case.jmpi_targets)
    kw.setdefault("rsb_targets", case.rsb_targets)
    return ExplorationOptions(**kw)


def _run(case, options, shards=1, pool=None, stop_at_first=False):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    if shards == 1:
        explorer = Explorer(machine, options)
    else:
        explorer = ShardedExplorer(machine, options, shards=shards,
                                   pool=pool)
    return explorer.explore(case.make_config(), stop_at_first=stop_at_first)


def _obs(result):
    return observation_set(result.violations)


@pytest.fixture(scope="module")
def none_reference():
    """Raw-B.18 observation sets for every registered litmus case."""
    out = {}
    for case in all_cases():
        result = _run(case, _case_options(case, prune="none"))
        assert not result.truncated, \
            f"{case.name}: the unreduced baseline must complete"
        out[case.name] = _obs(result)
    return out


@pytest.fixture(scope="module")
def sleepset_paths():
    """Seed-DFS (prune=sleepset) path lists for the structural tests."""
    out = {}
    for case in all_cases():
        result = _run(case, _case_options(case))
        out[case.name] = [p.schedule for p in result.paths]
    return out


@pytest.mark.parametrize("prune", ("sleepset", "full"))
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("shards", (1, 4))
def test_litmus_registry_equivalence(prune, strategy, shards, pool,
                                     none_reference):
    """Pruned violation observation sets equal the unreduced baseline
    on the full registry, for every strategy and shard count."""
    mismatches = []
    for case in all_cases():
        options = _case_options(case, strategy=strategy, seed=5, prune=prune)
        result = _run(case, options, shards=shards, pool=pool)
        if _obs(result) != none_reference[case.name]:
            mismatches.append(case.name)
    assert not mismatches, (
        f"prune={prune} strategy={strategy} shards={shards} diverged "
        f"from the unreduced baseline on: {mismatches}")


@pytest.mark.parametrize("shards", (1, 4))
def test_none_mode_sharded_equivalence(shards, pool, none_reference):
    """The raw baseline itself shards correctly: deferral pseudo-actions
    travel in the job prefixes."""
    for name in ("kocher_02", "kocher_13", "v4_double_store"):
        case = [c for c in all_cases() if c.name == name][0]
        options = _case_options(case, prune="none")
        result = _run(case, options, shards=shards, pool=pool)
        assert _obs(result) == none_reference[name], name


def test_random_programs_equivalence():
    """>= 30 random programs: all three levels flag the same
    observations, and full's DFS paths prefix-embed into sleepset's."""
    for seed in range(RANDOM_PROGRAMS):
        rng = random.Random(seed)
        program = random_program(rng, length=rng.randrange(8, 15))
        config = random_config(rng)
        machine = Machine(program)
        results = {}
        for level in LEVELS:
            options = ExplorationOptions(bound=8, prune=level)
            results[level] = Explorer(machine, options).explore(
                config, stop_at_first=False)
        reference = _obs(results["none"])
        for level in ("sleepset", "full"):
            assert _obs(results[level]) == reference, \
                f"program seed {seed}, prune={level}"
        _assert_prefix_subsequence(
            [p.schedule for p in results["full"].paths],
            [p.schedule for p in results["sleepset"].paths],
            f"program seed {seed}")


def _assert_prefix_subsequence(pruned, base, what):
    """Every pruned path is a prefix of a distinct base path, and the
    matched base indices are strictly increasing (same DFS order)."""
    j = 0
    for k, schedule in enumerate(pruned):
        while j < len(base) and base[j][:len(schedule)] != schedule:
            j += 1
        assert j < len(base), (
            f"{what}: pruned path {k} is not a prefix of any remaining "
            f"unpruned path — pruning must only truncate or drop, "
            f"never reorder")
        j += 1


def test_full_paths_prefix_embed_into_sleepset(sleepset_paths):
    """On every litmus case, the full-reduction DFS path order is a
    subsequence (in prefix order) of the sleepset DFS path order."""
    for case in all_cases():
        result = _run(case, _case_options(case, prune="full"))
        _assert_prefix_subsequence([p.schedule for p in result.paths],
                                   sleepset_paths[case.name], case.name)


def test_sleepset_paths_prefix_embed_into_none():
    """Where the two levels explore the same fork arms (no stores, so
    no deferral choice points), sleepset only truncates none's paths."""
    checked = 0
    for case in all_cases():
        if any(isinstance(i, Store) for _n, i in case.program.items()):
            continue
        base = _run(case, _case_options(case, prune="none"))
        pruned = _run(case, _case_options(case))
        _assert_prefix_subsequence([p.schedule for p in pruned.paths],
                                   [p.schedule for p in base.paths],
                                   case.name)
        checked += 1
    assert checked >= 5, "expected several store-free litmus cases"


class TestShardedDFSByteIdentical:
    """At every pruning level, shards=4 with DFS reproduces the serial
    enumeration order exactly — pruning composes with shard splitting
    because the split only lands on surviving arms and the prefix
    pseudo-actions restore the worker's sleep state."""

    CASES = ("kocher_05", "kocher_13", "v4_double_store", "ret2spec_fig12")

    @pytest.mark.parametrize("name", CASES)
    @pytest.mark.parametrize("prune", LEVELS)
    def test_paths_identical(self, name, prune, pool):
        case = [c for c in all_cases() if c.name == name][0]
        options = _case_options(case, prune=prune)
        serial = _run(case, options)
        sharded = _run(case, options, shards=4, pool=pool)
        assert [p.schedule for p in serial.paths] == \
            [p.schedule for p in sharded.paths]
        assert _obs(serial) == _obs(sharded)
        assert serial.paths_explored == sharded.paths_explored
        assert sharded.pruning is not None
        assert sharded.pruning.level == prune
        assert sharded.pruning.classes_explored == serial.paths_explored
        assert sharded.pruning.schedules_skipped == \
            serial.pruning.schedules_skipped


KOCHER_OPTIONS = dict(bound=20, fwd_hazards=True, max_paths=20_000)


class TestStrictReduction:
    """The Kocher acceptance bar: reduced levels explore strictly less
    than raw Definition B.18 on every case, and strictly fewer
    *schedules* wherever the case has more than one fork point."""

    @pytest.fixture(scope="class")
    def kocher_runs(self):
        out = {}
        for case in all_cases():
            if not case.name.startswith("kocher"):
                continue
            runs = {}
            for level in LEVELS:
                machine = Machine(case.program, rsb_policy=case.rsb_policy)
                options = ExplorationOptions(prune=level, **KOCHER_OPTIONS)
                runs[level] = Explorer(machine, options).explore(
                    case.make_config(), stop_at_first=False)
            out[case.name] = runs
        return out

    def test_sleepset_strictly_fewer_steps(self, kocher_runs):
        for name, runs in kocher_runs.items():
            assert runs["sleepset"].applied_steps < \
                runs["none"].applied_steps, name
            assert runs["full"].applied_steps <= \
                runs["sleepset"].applied_steps, name

    def test_schedule_counts_monotone(self, kocher_runs):
        for name, runs in kocher_runs.items():
            assert runs["full"].paths_explored <= \
                runs["sleepset"].paths_explored <= \
                runs["none"].paths_explored, name

    def test_full_strictly_fewer_schedules_on_multifork(self, kocher_runs):
        multifork = 0
        for name, runs in kocher_runs.items():
            if runs["none"].paths_explored < 3:
                continue    # a single fork point: nothing redundant
            multifork += 1
            assert runs["full"].paths_explored < \
                runs["none"].paths_explored, name
        assert multifork >= 10, "most Kocher cases should be multi-fork"

    def test_skip_accounting_matches(self, kocher_runs):
        """schedules_skipped is live exactly when pruning is on: every
        branch-bearing case records its misprediction-window joins."""
        from repro.core.isa import Br
        from repro.litmus import find_case
        for name, runs in kocher_runs.items():
            assert runs["none"].pruning.schedules_skipped == 0, name
            has_branch = any(isinstance(i, Br) for _n, i
                             in find_case(name).program.items())
            if has_branch:
                assert runs["sleepset"].pruning.schedules_skipped > 0, name
            assert runs["full"].pruning.classes_explored == \
                runs["full"].paths_explored, name


class TestDownstreamConsumers:
    """Pruned schedule trees decide the same questions downstream."""

    def test_symbolic_findings_invariant(self):
        from repro.litmus import find_case
        from repro.pitchfork import analyze_symbolic_result
        case = find_case("kocher_01")
        base = None
        for level in LEVELS:
            result = analyze_symbolic_result(
                case.program, case.make_config(), bound=12,
                fwd_hazards=True, prune=level)
            obs = sorted({repr(f.observation) for f in result.findings})
            if base is None:
                base = obs
            assert obs == base, level
            assert not result.truncated

    def test_sct_verdict_invariant(self):
        from repro.api import Project
        for name in ("kocher_01", "v1_fig8_fence", "v1_sequential_leak"):
            verdicts = set()
            for level in LEVELS:
                report = Project.from_litmus(name).run("sct", prune=level)
                verdicts.add((report.status, report.vacuous))
            assert len(verdicts) == 1, (name, verdicts)

    def test_detector_prune_threading(self):
        """--prune reaches the explorer through AnalysisOptions and the
        report carries the pruning section, exactly round-tripped."""
        from repro.api import Project, Report
        report = Project.from_litmus("kocher_05").run(
            "pitchfork", prune="full", stop_at_first=False)
        assert report.details["prune"] == "full"
        assert report.pruning is not None
        assert report.pruning["level"] == "full"
        assert report.pruning["schedules_skipped"] > 0
        restored = Report.from_json(report.to_json())
        assert restored == report
        assert restored.pruning == report.pruning

    def test_invalid_prune_rejected(self):
        from repro.api import AnalysisOptions
        with pytest.raises(ValueError, match="prune"):
            AnalysisOptions(prune="everything")
        with pytest.raises(ValueError, match="prune"):
            ExplorationOptions(prune="aggressive")
