"""Tests for the big-step executor and sequential execution (Thm 3.2 side)."""

import pytest

from repro.asm import assemble
from repro.core import (Config, Machine, Memory, RETIRE, StuckError, drain,
                        execute, fetch, is_well_formed, run, run_sequential,
                        check_sequential_ct)
from repro.core.directives import retire_count
from repro.core.lattice import PUBLIC, SECRET
from repro.core.memory import layout
from repro.core.values import Value, secret


def _m(src):
    return Machine(assemble(src))


class TestRun:
    def test_counts_retires(self):
        m = _m("%ra = op mov, 1\nhalt")
        res = run(m, Config.initial({}, Memory(), 1),
                  [fetch(), execute(1), RETIRE])
        assert res.retired == 1

    def test_stuck_error_reports_step(self):
        m = _m("%ra = op mov, 1\nhalt")
        with pytest.raises(StuckError) as exc:
            run(m, Config.initial({}, Memory(), 1), [fetch(), RETIRE])
        assert "step 1" in str(exc.value)

    def test_is_well_formed(self):
        m = _m("%ra = op mov, 1\nhalt")
        c = Config.initial({}, Memory(), 1)
        assert is_well_formed(m, c, [fetch(), execute(1), RETIRE])
        assert not is_well_formed(m, c, [fetch(), RETIRE])

    def test_steps_recorded(self):
        m = _m("%ra = op mov, 1\nhalt")
        res = run(m, Config.initial({}, Memory(), 1), [fetch(), execute(1)])
        assert len(res.steps) == 2
        assert res.steps[0].directive == fetch()

    def test_retire_count_helper(self):
        assert retire_count((fetch(), RETIRE, RETIRE)) == 2


class TestDrain:
    def test_drain_to_terminal(self):
        m = _m("%ra = op mov, 1\n%rb = op mov, 2\nhalt")
        res = run(m, Config.initial({}, Memory(), 1), [fetch(), fetch()])
        drained = drain(m, res.final)
        assert drained.final.is_terminal()
        assert drained.final.reg("ra").val == 1
        assert drained.final.reg("rb").val == 2

    def test_drain_resolves_branches(self):
        m = _m("br eq, 0, 0 -> 2, 3\n%ra = op mov, 1\nhalt")
        res = run(m, Config.initial({}, Memory(), 1), [fetch(True), fetch()])
        drained = drain(m, res.final)
        assert drained.final.is_terminal()


class TestSequential:
    def test_terminates_at_halt(self):
        m = _m("%ra = op mov, 5\nhalt")
        seq = run_sequential(m, Config.initial({}, Memory(), 1))
        assert seq.final.is_terminal() and seq.final.reg("ra").val == 5

    def test_correct_branch_prediction(self):
        m = _m("br lt, %ra, 4 -> 2, 3\n%rb = op mov, 1\nhalt")
        seq = run_sequential(m, Config.initial({"ra": 9}, Memory(), 1))
        assert "rb" not in {r.name for r in seq.final.regs}

    def test_loop_executes_architecturally(self):
        m = _m("""
            %ri = op mov, 0
            loop: br ltu, %ri, 3 -> body, done
            body: %ri = op add, %ri, 1
            br eq, 0, 0 -> loop, loop
            done: halt
        """)
        seq = run_sequential(m, Config.initial({}, Memory(), 1))
        assert seq.final.reg("ri").val == 3

    def test_stop_at_retire_count(self):
        m = _m("%ra = op mov, 1\n%rb = op mov, 2\nhalt")
        seq = run_sequential(m, Config.initial({}, Memory(), 1), stop_at=1)
        assert seq.retired == 1
        assert seq.final.reg("ra").val == 1
        assert "rb" not in {r.name for r in seq.final.regs}

    def test_requires_initial_config(self):
        m = _m("%ra = op mov, 1\nhalt")
        c = Config.initial({}, Memory(), 1)
        mid = run(m, c, [fetch()]).final
        with pytest.raises(StuckError):
            run_sequential(m, mid)

    def test_sequential_store_and_load(self):
        m = _m("store 9, [0x40]\n%ra = load [0x40]\nhalt")
        seq = run_sequential(m, Config.initial({}, Memory(), 1))
        assert seq.final.reg("ra").val == 9
        assert seq.final.mem.read(0x40).val == 9

    def test_indirect_jump_followed(self):
        m = _m("jmpi [%rt]\n%ra = op mov, 1\nhalt\n%ra = op mov, 2\nhalt")
        seq = run_sequential(m, Config.initial({"rt": 4}, Memory(), 1))
        assert seq.final.reg("ra").val == 2


class TestSequentialCT:
    def test_ct_program_passes(self):
        """Branch-free select on secret: classically constant-time."""
        m = _m("""
            %rc = op ltu, %rk, 4
            %rx = op sel, %rc, 1, 2
            %ra = load [0x40, 0]
            halt
        """)
        a = Config.initial({"rk": secret(1)}, Memory(), 1)
        b = Config.initial({"rk": secret(9)}, Memory(), 1)
        assert check_sequential_ct(m, a, b)

    def test_secret_branch_fails(self):
        m = _m("br ltu, %rk, 4 -> 2, 3\n%ra = op mov, 1\nhalt")
        a = Config.initial({"rk": secret(1)}, Memory(), 1)
        b = Config.initial({"rk": secret(9)}, Memory(), 1)
        result = check_sequential_ct(m, a, b)
        assert not result
        assert result.divergence == 0

    def test_secret_indexed_load_fails(self):
        m = _m("%ra = load [0x40, %rk]\nhalt")
        a = Config.initial({"rk": secret(1)}, Memory(), 1)
        b = Config.initial({"rk": secret(2)}, Memory(), 1)
        assert not check_sequential_ct(m, a, b)
