"""Unit tests for physical instructions and the concrete evaluator."""

import pytest

from repro.core.errors import ReproError
from repro.core.isa import (Br, Call, ConcreteEvaluator, Fence, Jmpi, Load,
                            Op, OPCODES, Ret, Store, WORD_BITS, next_of,
                            sum_addr, x86_addr)
from repro.core.lattice import PUBLIC, SECRET
from repro.core.values import Reg, Value, operands, public, secret


@pytest.fixture()
def ev():
    return ConcreteEvaluator()


class TestOpcodes:
    def test_add_wraps(self, ev):
        big = (1 << WORD_BITS) - 1
        assert ev.evaluate("add", [public(big), public(2)]).val == 1

    def test_sub(self, ev):
        assert ev.evaluate("sub", [public(5), public(7)]).val == \
            (1 << WORD_BITS) - 2

    def test_mul_variadic(self, ev):
        assert ev.evaluate("mul", [public(2), public(3), public(4)]).val == 24

    def test_div_by_zero_is_zero(self, ev):
        assert ev.evaluate("div", [public(5), public(0)]).val == 0

    def test_signed_lt(self, ev):
        minus_one = (1 << WORD_BITS) - 1
        assert ev.evaluate("lt", [public(minus_one), public(0)]).val == 1

    def test_unsigned_ltu(self, ev):
        minus_one = (1 << WORD_BITS) - 1
        assert ev.evaluate("ltu", [public(minus_one), public(0)]).val == 0

    def test_sel_true(self, ev):
        assert ev.evaluate("sel", [public(1), public(10), public(20)]).val == 10

    def test_sel_false(self, ev):
        assert ev.evaluate("sel", [public(0), public(10), public(20)]).val == 20

    def test_mask(self, ev):
        assert ev.evaluate("mask", [public(1)]).val == (1 << WORD_BITS) - 1
        assert ev.evaluate("mask", [public(0)]).val == 0

    def test_succ_pred_inverse(self, ev):
        v = public(0x100)
        bumped = ev.evaluate("succ", [v])
        assert ev.evaluate("pred", [bumped]).val == 0x100

    def test_label_propagation(self, ev):
        out = ev.evaluate("add", [public(1), secret(2)])
        assert out.label == SECRET

    def test_label_all_public(self, ev):
        assert ev.evaluate("add", [public(1), public(2)]).label == PUBLIC

    def test_unknown_opcode(self, ev):
        with pytest.raises(ReproError):
            ev.evaluate("frobnicate", [public(1)])

    def test_arity_mismatch(self, ev):
        with pytest.raises(ReproError):
            ev.evaluate("sub", [public(1)])

    def test_every_opcode_evaluates(self, ev):
        for name, (arity, _fn) in OPCODES.items():
            args = [public(3)] * (arity if arity is not None else 2)
            result = ev.evaluate(name, args)
            assert isinstance(result.val, int)


class TestAddressModes:
    def test_sum_addr(self):
        assert sum_addr([0x40, 9]) == 0x49

    def test_x86_addr_three(self):
        assert x86_addr([0x40, 2, 8]) == 0x50

    def test_x86_addr_fallback(self):
        assert x86_addr([0x40, 9]) == 0x49

    def test_evaluator_address_labels(self, ev):
        out = ev.address([public(0x40), secret(9)])
        assert out.val == 0x49 and out.label == SECRET


class TestEvaluatorMisc:
    def test_truth(self, ev):
        assert ev.truth(public(1)) and not ev.truth(public(0))

    def test_concretize(self, ev):
        assert ev.concretize(public(7)) == 7

    def test_concretize_non_int_raises(self, ev):
        with pytest.raises(ReproError):
            ev.concretize(Value("sym", PUBLIC))


class TestInstructions:
    def test_next_of_sequential(self):
        assert next_of(Op(Reg("r"), "mov", operands(0), 5)) == 5
        assert next_of(Load(Reg("r"), operands(0x40), 6)) == 6
        assert next_of(Store(Reg("r"), operands(0x40), 7)) == 7
        assert next_of(Fence(8)) == 8

    def test_next_of_branch_raises(self):
        with pytest.raises(ReproError):
            next_of(Br("eq", operands(0, 0), 1, 2))

    def test_instructions_frozen(self):
        instr = Ret()
        with pytest.raises(Exception):
            instr.x = 1  # type: ignore[attr-defined]

    def test_call_fields(self):
        c = Call(5, 4)
        assert c.target == 5 and c.ret == 4
