"""ResultStore invariants: atomicity, corruption tolerance, GC — and
the AnalysisManager's adoption of the store as its disk cache tier.

The store's contract is "a bad object is a miss, never a crash":
truncated writes, garbled JSON, foreign schema versions and mislabelled
envelopes must all read as ``None`` (and quarantine themselves) so the
caller recomputes.  The index is a rebuildable cache of ``objects/``,
not a source of truth.
"""

import json
import os

import pytest

from repro.api import AnalysisManager, Project
from repro.serve import (ResultStore, STORE_VERSION, fingerprint_digest,
                         store_key, strip_volatile)


@pytest.fixture()
def report():
    return Project.from_litmus("kocher_01").run("pitchfork")


@pytest.fixture()
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


def _key(name="kocher_01", analysis="pitchfork", **opts):
    project = Project.from_litmus(name)
    return store_key(analysis, fingerprint_digest(project),
                     project.options.with_(**opts))


# -- round trips -------------------------------------------------------------


def test_put_get_roundtrip(store, report):
    key = _key()
    store.put(key, report, target="kocher_01", analysis="pitchfork")
    loaded = store.get(key)
    assert loaded is not None
    assert loaded.to_dict() == report.to_dict()
    assert store.stats.hits == 1 and store.stats.stores == 1


def test_miss_returns_none(store):
    assert store.get("0" * 64) is None
    assert store.stats.misses == 1


def test_contains(store, report):
    key = _key()
    assert not store.contains(key)
    store.put(key, report)
    assert store.contains(key)


def test_last_writer_wins(store, report):
    key = _key()
    store.put(key, report)
    store.put(key, report)
    assert len(store) == 1
    assert store.get(key).to_dict() == report.to_dict()


# -- corruption is a miss, never a crash -------------------------------------


def test_truncated_object_reads_as_miss_and_quarantines(store, report):
    key = _key()
    store.put(key, report)
    path = store.path_for(key)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text[:len(text) // 2])        # a crashed writer's torso
    assert store.get(key) is None
    assert not os.path.exists(path)            # quarantined
    assert store.stats.corrupt == 1
    # The slot is reusable: a recompute stores and reads back cleanly.
    store.put(key, report)
    assert store.get(key).to_dict() == report.to_dict()


def test_garbage_bytes_read_as_miss(store, report):
    key = _key()
    store.put(key, report)
    with open(store.path_for(key), "wb") as fh:
        fh.write(b"\x00\xff not json")
    assert store.get(key) is None


def test_newer_store_version_reads_as_miss(store, report):
    key = _key()
    store.put(key, report)
    path = store.path_for(key)
    with open(path, encoding="utf-8") as fh:
        envelope = json.load(fh)
    envelope["store_version"] = STORE_VERSION + 1
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(envelope, fh)
    assert store.get(key) is None


def test_key_mismatch_reads_as_miss(store, report):
    """An envelope filed under the wrong name (copied, tampered) must
    not serve as that name's result."""
    key, other = _key(), _key("kocher_02")
    store.put(key, report)
    src = store.path_for(key)
    dst = store.path_for(other)
    os.makedirs(os.path.dirname(dst), exist_ok=True)
    os.replace(src, dst)
    assert store.get(other) is None


def test_put_leaves_no_temp_files(store, report):
    store.put(_key(), report)
    strays = [name for _, _, names in os.walk(store.root)
              for name in names if name.startswith(".tmp-")]
    assert strays == []


# -- the index is a cache ----------------------------------------------------


def test_index_rebuilds_from_objects(store, report):
    key = _key()
    store.put(key, report, target="kocher_01", analysis="pitchfork")
    os.unlink(store._index_path)
    rows = store.entries()
    assert [row["key"] for row in rows] == [key]
    assert rows[0]["target"] == "kocher_01"


def test_corrupt_index_rebuilds(store, report):
    key = _key()
    store.put(key, report)
    with open(store._index_path, "w", encoding="utf-8") as fh:
        fh.write("{ nope")
    assert store.keys() == [key]


# -- GC ----------------------------------------------------------------------


def test_gc_evicts_oldest_first(store, report):
    keys = [_key(bound=b) for b in (5, 6, 7)]
    for key in keys:
        store.put(key, report)
    # stored_at ties are broken by key; force a strict order instead.
    index = store._load_index()
    for i, key in enumerate(keys):
        index[key]["stored_at"] = float(i)
    store._write_index(index)
    assert store.gc(max_entries=1) == 2
    assert store.keys() == [keys[-1]]
    assert store.stats.evicted == 2


def test_gc_sweeps_stale_temp_files(store, report):
    key = _key()
    store.put(key, report)
    stray = os.path.join(os.path.dirname(store.path_for(key)),
                         ".tmp-dead.json")
    with open(stray, "w", encoding="utf-8") as fh:
        fh.write("{")
    store.gc()
    assert not os.path.exists(stray)
    assert store.contains(key)


def test_gc_max_age_drops_old_entries(store, report):
    old_key, new_key = _key(bound=5), _key(bound=6)
    store.put(old_key, report)
    store.put(new_key, report)
    index = store._load_index()
    index[old_key]["stored_at"] = 1.0          # the distant past
    store._write_index(index)
    assert store.gc(max_age=3600.0) == 1
    assert store.keys() == [new_key]


def test_unparseable_report_quarantined(store, report):
    """An envelope whose embedded report no longer round-trips is a
    miss, not a crash (e.g. a hand-edited or foreign object)."""
    key = _key()
    store.put(key, report)
    path = store.path_for(key)
    with open(path, encoding="utf-8") as fh:
        envelope = json.load(fh)
    envelope["report"] = {"nonsense": True}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(envelope, fh)
    assert store.get(key) is None
    assert not os.path.exists(path)


def test_max_entries_bounds_the_store(tmp_path, report):
    store = ResultStore(str(tmp_path / "store"), max_entries=2)
    for b in (5, 6, 7, 8):
        store.put(_key(bound=b), report)
    assert len(store) == 2


def test_clear(store, report):
    store.put(_key(), report)
    store.clear()
    assert len(store) == 0
    assert store.get(_key()) is None


# -- the manager's disk tier -------------------------------------------------


def test_manager_disk_tier_survives_restart(tmp_path):
    root = str(tmp_path / "store")
    project = Project.from_litmus("kocher_02")

    first = AnalysisManager("pitchfork", store=root)
    report = first.run_one(project)
    info = first.cache_info()
    assert (info.hits, info.disk_hits, info.misses) == (0, 0, 1)
    assert info.stores == 1

    # A "restarted" manager (fresh memory cache, same store directory)
    # answers from disk without recomputing.
    second = AnalysisManager("pitchfork", store=root)
    again = second.run_one(project)
    info = second.cache_info()
    assert (info.hits, info.disk_hits, info.misses) == (0, 1, 0)
    assert again.to_dict() == report.to_dict()

    # And the disk hit primed the memory tier.
    second.run_one(project)
    assert second.cache_info().hits == 1


def test_manager_store_accepts_instance(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    manager = AnalysisManager("pitchfork", store=store)
    manager.run_one(Project.from_litmus("kocher_01"))
    assert manager.store is store
    assert len(store) == 1


def test_manager_option_overrides_split_keys(tmp_path):
    """Different effective options → different store objects."""
    store = ResultStore(str(tmp_path / "store"))
    manager = AnalysisManager("pitchfork", store=store)
    project = Project.from_litmus("kocher_01")
    manager.run_one(project)
    manager.run_one(project, bound=7)
    assert len(store) == 2


def test_manager_corrupt_store_object_recomputes(tmp_path):
    root = str(tmp_path / "store")
    project = Project.from_litmus("kocher_01")
    first = AnalysisManager("pitchfork", store=root)
    report = first.run_one(project)

    store = ResultStore(root)
    key = store.keys()[0]
    with open(store.path_for(key), "w", encoding="utf-8") as fh:
        fh.write('{"store_version": 1, "key": "')   # torn write

    second = AnalysisManager("pitchfork", store=root)
    again = second.run_one(project)
    info = second.cache_info()
    assert (info.disk_hits, info.misses) == (0, 1)
    assert strip_volatile(again.to_dict()) == strip_volatile(report.to_dict())


def test_cache_info_dict_shape(tmp_path):
    manager = AnalysisManager("pitchfork", store=str(tmp_path / "s"))
    manager.run_one(Project.from_litmus("kocher_01"))
    assert manager.cache_info.to_dict() == {
        "hits": 0, "misses": 1, "size": 1, "disk_hits": 0, "stores": 1}
