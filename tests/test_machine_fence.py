"""Machine tests: speculation barriers (§3.6, Fig 8)."""

import pytest

from repro.asm import assemble
from repro.core import (Config, Machine, Memory, RETIRE, StuckError, TFence,
                        execute, fetch, run)
from repro.core.lattice import PUBLIC, SECRET
from repro.core.memory import layout


def _machine(src):
    return Machine(assemble(src))


class TestFence:
    def test_fence_fetches_as_transient(self):
        m = _machine("fence\nhalt")
        c, _ = m.step(Config.initial({}, Memory(), 1), fetch())
        assert isinstance(c.buf[1], TFence)

    def test_fence_blocks_younger_execution(self):
        m = _machine("fence\n%ra = load [0x40]\nhalt")
        res = run(m, Config.initial({}, Memory(), 1), [fetch(), fetch()])
        with pytest.raises(StuckError):
            m.step(res.final, execute(2))

    def test_fence_does_not_block_older(self):
        m = _machine("%ra = load [0x40]\nfence\nhalt")
        res = run(m, Config.initial({}, Memory(), 1),
                  [fetch(), fetch(), execute(1)])
        assert res.final.buf[1].value.val == 0

    def test_fence_has_no_execute_rule(self):
        m = _machine("fence\nhalt")
        res = run(m, Config.initial({}, Memory(), 1), [fetch()])
        with pytest.raises(StuckError):
            m.step(res.final, execute(1))

    def test_fence_retires_and_unblocks(self):
        m = _machine("fence\n%ra = load [0x40]\nhalt")
        res = run(m, Config.initial({}, Memory(), 1),
                  [fetch(), fetch(), RETIRE, execute(2)])
        assert res.final.buf[2].value.val == 0

    def test_fig8_fence_blocks_spectre_v1(self):
        """Figure 8: the fence forces the branch to resolve first."""
        mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                     ("B", 4, PUBLIC, None),
                     ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))
        m = _machine("""
            br gt, 4, %ra -> 2, 5
            fence
            %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
            halt
        """)
        c = Config.initial({"ra": 9}, mem, 1)
        res = run(m, c, [fetch(True), fetch(), fetch(), fetch()])
        # neither load may execute while the fence is in flight
        with pytest.raises(StuckError):
            m.step(res.final, execute(3))
        with pytest.raises(StuckError):
            m.step(res.final, execute(4))
        # resolving the branch exposes the misprediction and squashes all
        after, leak = m.step(res.final, execute(1))
        assert after.pc == 5
        assert all(i not in after.buf for i in (2, 3, 4))

    def test_self_loop_fence_pins_fetch(self):
        """'fence self' (Fig 13's landing pad) refetches itself forever."""
        m = _machine("fence self\nhalt")
        c = Config.initial({}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), fetch()])
        assert res.final.pc == 1
        assert all(isinstance(e, TFence) for _i, e in res.final.buf.items())
