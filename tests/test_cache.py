"""Tests for the cache model and cache-timing attackers."""

import pytest

from repro.cache import (Cache, CacheConfig, FlushReload, PrimeProbe,
                         ProbeArray, addresses_touching_cache, build_setup,
                         recover_unique, replay, run_attack)
from repro.core import Fwd, Jump, PUBLIC, Read, Write


class TestCacheModel:
    def test_miss_then_hit(self):
        c = Cache(CacheConfig(sets=4, ways=2, line_size=4))
        assert c.access(0x40) is False
        assert c.access(0x41) is True  # same line
        assert (c.hits, c.misses) == (1, 1)

    def test_eviction_lru(self):
        cfg = CacheConfig(sets=1, ways=2, line_size=4)
        c = Cache(cfg)
        c.access(0x00)
        c.access(0x10)
        c.access(0x00)       # refresh 0x00
        c.access(0x20)       # evicts 0x10 under LRU
        assert c.probe(0x00) and not c.probe(0x10)

    def test_eviction_fifo(self):
        cfg = CacheConfig(sets=1, ways=2, line_size=4, policy="FIFO")
        c = Cache(cfg)
        c.access(0x00)
        c.access(0x10)
        c.access(0x00)       # does not refresh under FIFO
        c.access(0x20)       # evicts 0x00
        assert not c.probe(0x00) and c.probe(0x10)

    def test_flush(self):
        c = Cache(CacheConfig())
        c.access(0x40)
        c.flush(0x40)
        assert not c.probe(0x40)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(policy="RANDOM")

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(sets=0)


class TestReplay:
    def test_reads_and_writes_touch(self):
        trace = (Read(0x40, PUBLIC), Write(0x80, PUBLIC))
        assert addresses_touching_cache(trace) == [0x40, 0x80]

    def test_fwd_and_jump_do_not_touch(self):
        trace = (Fwd(0x40, PUBLIC), Jump(7, PUBLIC))
        assert addresses_touching_cache(trace) == []

    def test_replay_is_function_of_trace(self):
        """The paper's §3.1 claim: cache state = fold(observations)."""
        trace = (Read(0x40, PUBLIC), Read(0x80, PUBLIC), Write(0x40, PUBLIC))
        a = replay(trace)
        b = replay(trace)
        assert a == b

    def test_different_traces_different_states(self):
        a = replay((Read(0x40, PUBLIC),))
        b = replay((Read(0x80000, PUBLIC),))
        assert a != b


class TestAttackers:
    def test_flush_reload_recovers_single_touch(self):
        probe = ProbeArray(0x1000, 64, tuple(range(16)))
        fr = FlushReload(probe)
        trace = (Read(probe.addr_of(11), PUBLIC),)
        assert fr.recover(trace) == [11]

    def test_flush_reload_silent_on_cold_cache(self):
        probe = ProbeArray(0x1000, 64, tuple(range(16)))
        assert FlushReload(probe).recover(()) == []

    def test_prime_probe_detects_eviction(self):
        probe = ProbeArray(0x1000, 64, tuple(range(8)))
        pp = PrimeProbe(probe, CacheConfig(sets=16, ways=2, line_size=64))
        trace = (Read(probe.addr_of(5), PUBLIC),)
        assert 5 in pp.recover(trace)

    def test_recover_unique(self):
        probe = ProbeArray(0x1000, 64, tuple(range(4)))
        fr = FlushReload(probe)
        assert recover_unique(fr, (Read(probe.addr_of(2), PUBLIC),)) == 2
        two = (Read(probe.addr_of(1), PUBLIC), Read(probe.addr_of(2), PUBLIC))
        assert recover_unique(fr, two) is None


class TestEndToEnd:
    @pytest.mark.parametrize("secret", [0x00, 0x42, 0xA2, 0xFF])
    def test_spectre_v1_recovers_key_byte(self, secret):
        setup = build_setup(secret_byte=secret)
        assert run_attack(setup) == secret

    def test_architectural_run_reveals_nothing(self):
        """Without the attack schedule (sequential run), the probe array
        stays cold: recovery fails."""
        from repro.core import run_sequential
        setup = build_setup(secret_byte=0x42)
        seq = run_sequential(setup.machine, setup.config)
        assert setup.attacker.recover(seq.trace) == []
