"""Property tests pinning the hash/__eq__ contract of the state core.

The subsumption table and the engine's trial-step cache key states by
structural hash (see ``repro.engine.subsume``), so the invariant every
test here defends is the Python hashing contract plus the two
properties the incremental maintenance relies on:

* agreement: ``a == b`` implies ``hash(a) == hash(b)`` — for every
  component a configuration is built from;
* path-independence: a memory's incrementally-maintained hash equals
  the from-scratch hash of the same cells, whatever order the writes
  arrived in (the XOR combination is commutative and invertible).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import Config
from repro.core.lattice import PUBLIC, SECRET
from repro.core.memory import Memory, Region
from repro.core.program import Program
from repro.core.rob import ReorderBuffer
from repro.core.rsb import ReturnStackBuffer
from repro.core.transient import TOp, TValue
from repro.core.values import Reg, Value, operands
from repro.litmus import all_cases

labels = st.sampled_from([PUBLIC, SECRET])
payloads = st.integers(min_value=0, max_value=2**16)
addrs = st.integers(min_value=0, max_value=15)
writes = st.lists(st.tuples(addrs, payloads, labels), max_size=24)


def _apply(mem, ws):
    for addr, payload, label in ws:
        mem = mem.write(addr, Value(payload, label))
    return mem


class TestMemoryHashProps:
    @given(writes)
    def test_incremental_equals_recomputed(self, ws):
        """The write-maintained hash equals a fresh Memory built from
        the same final cells (the from-scratch __init__ path)."""
        mem = _apply(Memory(), ws)
        rebuilt = Memory(mem.cells(), mem.regions())
        assert mem == rebuilt
        assert hash(mem) == hash(rebuilt)

    @given(writes)
    def test_write_order_independent(self, ws):
        """Any permutation of writes reaching the same final cells
        yields the same hash."""
        mem = _apply(Memory(), ws)
        last = {}      # only the final write per address survives
        for addr, payload, label in ws:
            last[addr] = (payload, label)
        shuffled = [(a, p, l) for a, (p, l) in last.items()]
        random.Random(0).shuffle(shuffled)
        other = _apply(Memory(), shuffled)
        assert mem == other
        assert hash(mem) == hash(other)

    @given(writes)
    def test_write_all_equals_writes(self, ws):
        one_by_one = _apply(Memory(), ws)
        batched = Memory().write_all(
            (addr, Value(p, l)) for addr, p, l in ws)
        assert one_by_one == batched
        assert hash(one_by_one) == hash(batched)

    @given(writes, writes)
    def test_eq_implies_hash_eq(self, ws_a, ws_b):
        a = _apply(Memory(), ws_a)
        b = _apply(Memory(), ws_b)
        if a == b:
            assert hash(a) == hash(b)

    @settings(max_examples=25)
    @given(writes)
    def test_compaction_preserves_hash(self, ws):
        """Force the overlay past the compaction threshold: folding the
        delta into a fresh base must not move the hash."""
        mem = _apply(Memory(), ws)
        # Map 40 distinct addresses (> _COMPACT_LIMIT forces at least
        # one fold of the delta into a fresh base) ...
        for addr in range(40):
            mem = mem.write(addr, Value(addr, PUBLIC))
        h = hash(mem)
        # ... then rewrite every mapped cell with its existing value:
        # contents are fixed, so the hash must not move, across more
        # compactions.
        for addr in range(40):
            mem = mem.write(addr, mem.read(addr))
        assert hash(mem) == h
        rebuilt = Memory(mem.cells(), mem.regions())
        assert mem == rebuilt and hash(rebuilt) == h

    @given(writes)
    def test_symbolic_cells_keep_contract(self, ws):
        """Non-int payloads contribute nothing to the hash, but
        equality still distinguishes them — hash collision, not hash
        disagreement, which the contract permits."""
        base = _apply(Memory(), ws)
        a = base.write(99, Value("sym_x", PUBLIC))
        b = base.write(99, Value("sym_y", PUBLIC))
        assert a != b
        assert hash(a) == hash(b) == hash(base.write(99, Value("sym_x",
                                                               SECRET)))

    def test_regions_do_not_affect_hash_but_do_affect_nothing_else(self):
        """with_region initialisation flows through the O(n) __init__
        path; its hash still agrees with an incrementally-built twin."""
        region = Region("A", 0x40, 4, PUBLIC)
        mem = Memory().with_region(region, [1, 2, 3, 4])
        twin = _apply(Memory(), [(0x40 + i, i + 1, PUBLIC)
                                 for i in range(4)])
        assert mem.cells() == twin.cells()
        assert hash(mem) == hash(twin)


class TestBufferHashProps:
    @given(st.lists(payloads, max_size=8))
    def test_rob_eq_implies_hash_eq(self, vals):
        a = ReorderBuffer()
        b = ReorderBuffer()
        for v in vals:
            _i, a = a.insert_next(TValue(Reg("r0"), Value(v)))
            _i, b = b.insert_next(TValue(Reg("r0"), Value(v)))
        assert a == b
        assert hash(a) == hash(b)

    @given(st.lists(payloads, min_size=1, max_size=8))
    def test_rob_empty_buffers_share_hash(self, vals):
        """Draining a buffer leaves an empty one equal to (and hashing
        like) a fresh one, whatever base index it drained to."""
        buf = ReorderBuffer()
        for v in vals:
            _i, buf = buf.insert_next(TValue(Reg("r0"), Value(v)))
        drained = buf.remove_min(len(vals))
        assert drained == ReorderBuffer()
        assert hash(drained) == hash(ReorderBuffer())

    @given(st.lists(payloads, min_size=1, max_size=8))
    def test_rob_unresolved_entries_hash(self, vals):
        a = ReorderBuffer()
        b = ReorderBuffer()
        for v in vals:
            _i, a = a.insert_next(TOp(Reg("r1"), "mov", operands(v)))
            _i, b = b.insert_next(TOp(Reg("r1"), "mov", operands(v)))
        assert a == b and hash(a) == hash(b)

    @given(st.lists(st.tuples(st.booleans(), payloads), max_size=8))
    def test_rsb_eq_implies_hash_eq(self, ops):
        a = ReturnStackBuffer()
        b = ReturnStackBuffer()
        for i, (is_push, target) in enumerate(ops):
            if is_push:
                a, b = a.push(i, target), b.push(i, target)
            else:
                a, b = a.pop(i), b.pop(i)
        assert a == b
        assert hash(a) == hash(b)


class TestConfigProgramHashProps:
    def test_litmus_configs_agree(self):
        """Two independent make_config() calls build equal configs that
        hash equal — the exact situation the subsumption table keys on."""
        for case in all_cases():
            a, b = case.make_config(), case.make_config()
            assert a == b, case.name
            assert hash(a) == hash(b), case.name
            assert a.program == b.program if hasattr(a, "program") else True

    def test_litmus_programs_agree(self):
        for case in all_cases():
            assert hash(case.program) == hash(case.program)

    @given(writes, payloads)
    def test_config_eq_implies_hash_eq(self, ws, r0):
        mem = _apply(Memory(), ws)
        a = Config.initial({"r0": r0}, mem, pc=0)
        b = Config.initial({"r0": r0}, _apply(Memory(), ws), pc=0)
        assert a == b
        assert hash(a) == hash(b)

    @given(writes, payloads)
    def test_config_hash_memoised(self, ws, r0):
        cfg = Config.initial({"r0": r0}, _apply(Memory(), ws), pc=0)
        assert hash(cfg) == hash(cfg)
        assert cfg.__dict__["_shash"] == hash(cfg)

    def test_stepped_configs_agree_across_runs(self):
        """Configurations reached by re-running the machine over the
        same schedule are equal and hash equal (Theorem B.1: the pure
        step relation is a function of configuration and directive)."""
        from repro.core.machine import Machine
        from repro.litmus import find_case
        from repro.pitchfork import enumerate_schedules
        case = find_case("kocher_01")
        machine = Machine(case.program, rsb_policy=case.rsb_policy)
        schedule = enumerate_schedules(machine, case.make_config(),
                                       bound=8)[0]
        runs = []
        for _ in range(2):
            cfg = case.make_config()
            seen = [cfg]
            for directive in schedule:
                cfg, _leak = machine.step(cfg, directive)
                seen.append(cfg)
            runs.append(seen)
        assert len(runs[0]) == len(runs[1]) > 1
        for a, b in zip(*runs):
            assert a == b
            assert hash(a) == hash(b)
