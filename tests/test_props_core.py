"""Property-based tests (hypothesis) for core data structures."""

from hypothesis import given, settings, strategies as st

from repro.core.lattice import PUBLIC, SECRET, join_all
from repro.core.memory import Memory
from repro.core.rob import ReorderBuffer, resolve_register
from repro.core.rsb import ReturnStackBuffer
from repro.core.transient import TOp, TValue
from repro.core.values import Reg, Value, operands

labels = st.sampled_from([PUBLIC, SECRET])
payloads = st.integers(min_value=0, max_value=2**16)
regnames = st.sampled_from(["r0", "r1", "r2"])


class TestLatticeProps:
    @given(labels, labels)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(labels, labels, labels)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(labels)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(labels, labels)
    def test_join_is_upper_bound(self, a, b):
        assert a.flows_to(a.join(b)) and b.flows_to(a.join(b))

    @given(st.lists(labels))
    def test_join_all_matches_fold(self, ls):
        out = join_all(ls)
        assert all(l.flows_to(out) for l in ls)


class TestBufferProps:
    @given(st.lists(payloads, min_size=1, max_size=12))
    def test_insert_preserves_contiguity(self, vals):
        buf = ReorderBuffer()
        for v in vals:
            _i, buf = buf.insert_next(TValue(Reg("r0"), Value(v)))
        idx = list(buf.indices())
        assert idx == list(range(idx[0], idx[0] + len(vals)))

    @given(st.lists(payloads, min_size=1, max_size=12),
           st.integers(min_value=0, max_value=14))
    def test_truncate_keeps_prefix(self, vals, cut):
        buf = ReorderBuffer()
        for v in vals:
            _i, buf = buf.insert_next(TValue(Reg("r0"), Value(v)))
        t = buf.truncate_before(cut)
        assert all(i < cut for i in t.indices())
        for i in t.indices():
            assert t[i] == buf[i]

    @given(st.lists(payloads, min_size=2, max_size=12),
           st.integers(min_value=1, max_value=5))
    def test_retire_then_insert_monotone(self, vals, k):
        buf = ReorderBuffer()
        for v in vals:
            _i, buf = buf.insert_next(TValue(Reg("r0"), Value(v)))
        k = min(k, len(vals))
        old_max = buf.max_index()
        buf = buf.remove_min(k)
        i, _buf = buf.insert_next(TValue(Reg("r0"), Value(0)))
        assert i == old_max + 1

    @given(st.lists(st.tuples(regnames, payloads, st.booleans()),
                    min_size=0, max_size=10), regnames, payloads)
    def test_resolve_matches_naive_model(self, writes, target, fallback):
        """(buf +i ρ) against a direct transcription of Fig 3."""
        buf = ReorderBuffer()
        for name, v, resolved in writes:
            instr = (TValue(Reg(name), Value(v)) if resolved
                     else TOp(Reg(name), "mov", operands(v)))
            _i, buf = buf.insert_next(instr)
        regs = {Reg(target): Value(fallback)}
        i = buf.max_index() + 1
        got = resolve_register(buf, i, regs, Reg(target))
        relevant = [(v, resolved) for name, v, resolved in writes
                    if name == target]
        if not relevant:
            assert got == Value(fallback)
        else:
            v, resolved = relevant[-1]
            from repro.core.values import BOTTOM
            assert got == (Value(v) if resolved else BOTTOM)


class TestRSBProps:
    @given(st.lists(st.one_of(st.integers(min_value=1, max_value=30),
                              st.none()), max_size=12))
    def test_top_matches_list_stack(self, cmds):
        """push n / pop (None) against a plain Python list."""
        rsb = ReturnStackBuffer()
        model = []
        for k, cmd in enumerate(cmds):
            if cmd is None:
                rsb = rsb.pop(k)
                if model:
                    model.pop()
            else:
                rsb = rsb.push(k, cmd)
                model.append(cmd)
        from repro.core.values import BOTTOM
        expected = model[-1] if model else BOTTOM
        assert rsb.top() == expected

    @given(st.lists(st.integers(min_value=1, max_value=30), max_size=8),
           st.integers(min_value=0, max_value=8))
    def test_truncate_is_prefix_replay(self, pushes, cut):
        rsb = ReturnStackBuffer()
        for k, n in enumerate(pushes):
            rsb = rsb.push(k, n)
        truncated = rsb.truncate_before(cut)
        expected = pushes[:cut]
        assert truncated.stack() == expected


class TestMemoryProps:
    @given(st.dictionaries(st.integers(0, 64), payloads, max_size=8))
    def test_write_read_roundtrip(self, cells):
        mem = Memory()
        for a, v in cells.items():
            mem = mem.write(a, Value(v))
        for a, v in cells.items():
            assert mem.read(a).val == v

    @given(st.dictionaries(st.integers(0, 64),
                           st.tuples(payloads, labels), max_size=8))
    def test_low_equivalence_reflexive(self, cells):
        mem = Memory()
        for a, (v, l) in cells.items():
            mem = mem.write(a, Value(v, l))
        assert mem.low_equivalent(mem)

    @given(st.dictionaries(st.integers(0, 16),
                           st.tuples(payloads, labels), max_size=6),
           payloads)
    def test_low_equivalence_insensitive_to_secrets(self, cells, other):
        a = Memory()
        b = Memory()
        for addr, (v, l) in cells.items():
            a = a.write(addr, Value(v, l))
            b = b.write(addr, Value(v if l == PUBLIC else other, l))
        assert a.low_equivalent(b)
