"""The mcts frontier (repro.engine.mcts): UCT ordering, reward
back-propagation, playout priors, knob validation, and run-to-completion
equivalence with the seed DFS explorer.

The strict bar is the same as every other strategy's (Theorem B.20: the
explored *set* is order-invariant): run to completion, ``mcts`` must
flag the identical violation observation set as ``dfs`` on the full
litmus registry and on randomized programs, serial and sharded.  The
shard/subsume/por equivalence suites additionally pick ``mcts`` up
automatically via ``available_strategies()``; the registry cases here
pin the serial path with this module's own seeds.
"""

import random

import pytest

from repro.core.machine import Machine
from repro.engine import MCTSFrontier, make_frontier, validate_mcts
from repro.engine.mcts import DEFAULT_EXPLORATION, DEFAULT_PLAYOUT_DEPTH
from repro.litmus import all_cases, find_case
from repro.pitchfork import (ExplorationOptions, Explorer, ShardedExplorer,
                             violation_set)
from repro.verify.generators import random_config, random_program


def _case_options(case, **kw):
    kw.setdefault("strategy", "mcts")
    kw.setdefault("bound", case.min_bound)
    kw.setdefault("fwd_hazards", case.needs_fwd_hazards)
    kw.setdefault("explore_aliasing", case.needs_aliasing)
    kw.setdefault("jmpi_targets", case.jmpi_targets)
    kw.setdefault("rsb_targets", case.rsb_targets)
    return ExplorationOptions(**kw)


def _run(case, options, shards=1):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    if shards == 1:
        explorer = Explorer(machine, options)
    else:
        explorer = ShardedExplorer(machine, options, shards=shards)
    return explorer.explore(case.make_config(), stop_at_first=False)


class TestUCTOrdering:
    """Pure frontier-protocol tests: no explorer, plain items."""

    def test_pops_every_item_exactly_once(self):
        f = MCTSFrontier()
        f.extend(["a", "b", "c"])
        out = [f.pop() for _ in range(3)]
        assert sorted(out) == ["a", "b", "c"]
        assert len(f) == 0 and not f

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            MCTSFrontier().pop()

    def test_sibling_tie_breaks_to_latest_push(self):
        # Equal priors and no rewards: the UCT scores tie and the seq
        # tiebreak must prefer the most recent push — the explorer
        # pushes the mispredicted arm second, so this matches the DFS
        # preference for descending into fresh speculation first.
        f = MCTSFrontier()
        f.extend(["arch", "spec"])
        assert f.pop() == "spec"

    def test_trie_structure_follows_push_pop_protocol(self):
        # Pushes between two pops are children of the last popped node:
        # r's children are a and b; popping b then pushing b1/b2 hangs
        # them under b.
        f = MCTSFrontier()
        f.push("r")
        assert f.pop() == "r"
        f.extend(["a", "b"])
        assert f.pop() == "b"
        f.extend(["b1", "b2"])
        root = f._root
        (r,) = root.children
        assert [c.item for c in r.children] == ["a", None]
        b = r.children[1]
        assert [c.item for c in b.children] == ["b1", "b2"]

    def test_completed_miss_decays_the_subtree(self):
        # Walking a subtree costs nothing — with no evidence the order
        # stays depth-first (b, then b's child).  A path *completing
        # clean* adds visits up its chain, so the untouched sibling's
        # score overtakes the decayed subtree — the bandit trade-off,
        # driven by outcomes rather than by mere traversal.
        f = MCTSFrontier()
        f.push("root")
        f.pop()
        f.extend(["a", "b"])
        assert f.pop() == "b"           # tie → latest push
        f.extend(["b1", "b2"])
        assert f.pop() == "b2"          # still evidence-free: depth-first
        f.reward("b2", hit=False)       # b2's path completed, no violation
        assert f.pop() == "a"           # b's chain decayed; a overtakes
        assert f.pop() == "b1"

    def test_reward_backpropagates_to_ancestors(self):
        f = MCTSFrontier(exploration=0.0)
        f.push("root")
        root_item = f.pop()
        f.extend(["left", "right"])
        first = f.pop()                 # "right" (tie → latest)
        assert first == "right"
        f.reward(first, hit=True)
        trie_root = f._root
        (root_node,) = trie_root.children
        right_node = root_node.children[1]
        assert right_node.hits == 1.0
        assert root_node.hits == 1.0    # credited up the chain
        assert trie_root.hits == 1.0
        assert f.reward(root_item, hit=True) is None  # stale item: no-op
        assert right_node.hits == 1.0

    def test_reward_steers_selection_with_zero_exploration(self):
        # With c=0 the score is pure exploitation: a rewarded subtree's
        # children outrank an unrewarded sibling pushed later.
        f = MCTSFrontier(exploration=0.0)
        f.push("root")
        f.pop()
        f.extend(["cold", "hot"])
        hot = f.pop()
        assert hot == "hot"
        f.reward(hot, hit=True)
        f.extend(["hot_child"])
        assert f.pop() == "hot_child"   # q = (0+1)/1 via parent's hits
        assert f.pop() == "cold"

    def test_miss_adds_visits_not_reward_mass(self):
        f = MCTSFrontier()
        f.push("x")
        item = f.pop()
        f.reward(item, hit=False)
        assert f._root.hits == 0.0
        assert f._root.visits == 1


class TestPriors:
    def test_items_without_config_degrade_to_novelty(self):
        f = MCTSFrontier(pc_of=lambda item: item[0])
        assert f._prior((7, "payload")) == 1.0
        f.push((7, "payload"))
        f.pop()
        assert f._prior((7, "again")) == pytest.approx(0.5)

    def test_no_pc_of_still_works(self):
        f = MCTSFrontier()
        f.extend([object(), object()])
        f.pop()
        f.pop()

    def test_taint_proximity_on_real_program(self):
        # kocher_01's speculative gadget loads through a secret-derived
        # index; an arm whose fetch PC sits at the gadget entry must
        # out-score one far from any load.
        case = find_case("kocher_01")
        machine = Machine(case.program, rsb_policy=case.rsb_policy)
        options = _case_options(case)
        explorer = Explorer(machine, options)
        result = explorer.explore(case.make_config(), stop_at_first=False)
        assert result.paths_explored > 0
        # The playout cache filled during the run: some PC saw a load.
        # (Reconstruct a frontier the way explore_from does.)
        f = MCTSFrontier(program=case.program)
        distances = [f._nearest_load(pc)[0] for pc in range(len(case.program))
                     if f._nearest_load(pc)[0] is not None]
        assert distances and min(distances) == 0

    def test_playout_depth_bounds_the_walk(self):
        case = find_case("kocher_01")
        shallow = MCTSFrontier(program=case.program, playout_depth=0)
        deep = MCTSFrontier(program=case.program,
                            playout_depth=DEFAULT_PLAYOUT_DEPTH)
        hits_shallow = sum(1 for pc in range(len(case.program))
                           if shallow._nearest_load(pc)[0] is not None)
        hits_deep = sum(1 for pc in range(len(case.program))
                        if deep._nearest_load(pc)[0] is not None)
        assert hits_shallow <= hits_deep


class TestKnobValidation:
    def test_defaults_are_valid(self):
        validate_mcts(DEFAULT_EXPLORATION, DEFAULT_PLAYOUT_DEPTH)

    @pytest.mark.parametrize("c", (-1.0, float("nan"), float("inf"), True,
                                   "0.5"))
    def test_bad_exploration(self, c):
        with pytest.raises(ValueError, match="mcts_c"):
            validate_mcts(c, DEFAULT_PLAYOUT_DEPTH)

    @pytest.mark.parametrize("depth", (-1, 2.5, True, "8"))
    def test_bad_playout(self, depth):
        with pytest.raises(ValueError, match="mcts_playout"):
            validate_mcts(DEFAULT_EXPLORATION, depth)

    def test_make_frontier_forwards_knobs(self):
        f = make_frontier("mcts", exploration=1.25, playout_depth=3)
        assert f.exploration == 1.25 and f.playout_depth == 3
        with pytest.raises(ValueError, match="mcts_playout"):
            make_frontier("mcts", playout_depth=2.5)

    def test_other_strategies_ignore_mcts_knobs(self):
        # make_frontier filters by cls.knobs, so the explorer can pass
        # the mcts extras unconditionally.
        f = make_frontier("dfs", program=None, exploration=9.0,
                          playout_depth=1)
        f.push(1)
        assert f.pop() == 1

    def test_options_validate_knobs(self):
        from repro.api import AnalysisOptions
        with pytest.raises(ValueError, match="mcts_c"):
            AnalysisOptions(mcts_c=-2.0)
        with pytest.raises(ValueError, match="mcts_playout"):
            ExplorationOptions(mcts_playout=-3)


class TestRegistryEquivalence:
    """Run to completion, mcts flags the identical observation set."""

    def test_full_litmus_registry_serial(self):
        mismatches = []
        for case in all_cases():
            dfs = _run(case, _case_options(case, strategy="dfs"))
            mcts = _run(case, _case_options(case))
            if violation_set(mcts.violations) != violation_set(dfs.violations):
                mismatches.append(case.name)
            elif sorted(repr(p.schedule) for p in mcts.paths) != \
                    sorted(repr(p.schedule) for p in dfs.paths):
                mismatches.append(f"{case.name} (path set)")
        assert not mismatches, f"mcts diverged from seed DFS on: {mismatches}"

    @pytest.mark.parametrize("name", ("kocher_01", "kocher_05", "v1_fig1"))
    def test_sharded_equivalence(self, name):
        case = find_case(name)
        dfs = _run(case, _case_options(case, strategy="dfs"))
        sharded = _run(case, _case_options(case), shards=2)
        assert violation_set(sharded.violations) == \
            violation_set(dfs.violations)

    def test_random_programs(self):
        rng = random.Random(1234)
        for _ in range(15):
            program = random_program(rng)
            config = random_config(rng)
            machine = Machine(program)
            dfs = Explorer(machine, ExplorationOptions(
                bound=6, max_paths=400)).explore(config, stop_at_first=False)
            mcts = Explorer(machine, ExplorationOptions(
                bound=6, max_paths=400, strategy="mcts")).explore(
                    config, stop_at_first=False)
            assert violation_set(mcts.violations) == \
                violation_set(dfs.violations)
            assert mcts.paths_explored == dfs.paths_explored

    def test_nondefault_knobs_preserve_equivalence(self):
        case = find_case("kocher_03")
        dfs = _run(case, _case_options(case, strategy="dfs"))
        for c, depth in ((0.0, 0), (2.0, 16)):
            mcts = _run(case, _case_options(case, mcts_c=c,
                                            mcts_playout=depth))
            assert violation_set(mcts.violations) == \
                violation_set(dfs.violations)
