"""Unit tests for the return stack buffer (Appendix A.2)."""

from repro.core.rsb import ReturnStackBuffer
from repro.core.values import BOTTOM


class TestRSB:
    def test_empty_top_is_bottom(self):
        assert ReturnStackBuffer().top() is BOTTOM

    def test_push_then_top(self):
        rsb = ReturnStackBuffer().push(1, 4)
        assert rsb.top() == 4

    def test_push_push_pop(self):
        """The paper's worked example: push 4, push 5, pop → top = 4."""
        rsb = (ReturnStackBuffer().push(1, 4).push(2, 5).pop(3))
        assert rsb.top() == 4

    def test_pop_to_empty(self):
        rsb = ReturnStackBuffer().push(1, 4).pop(2)
        assert rsb.top() is BOTTOM

    def test_pop_on_empty_is_noop(self):
        rsb = ReturnStackBuffer().pop(1)
        assert rsb.top() is BOTTOM

    def test_replay_in_index_order(self):
        """Commands replay by index, regardless of insertion order."""
        rsb = ReturnStackBuffer().pop(3).push(1, 4).push(2, 5)
        assert rsb.top() == 4

    def test_truncate_undoes_speculative_entries(self):
        rsb = ReturnStackBuffer().push(1, 4).pop(2).push(3, 9)
        rolled = rsb.truncate_before(2)
        assert rolled.top() == 4

    def test_truncate_everything(self):
        rsb = ReturnStackBuffer().push(5, 4)
        assert rsb.truncate_before(1).top() is BOTTOM

    def test_last_popped_for_circular_mode(self):
        rsb = ReturnStackBuffer().push(1, 4).pop(2).pop(3)
        assert rsb.last_popped() == 4

    def test_last_popped_default_zero(self):
        assert ReturnStackBuffer().last_popped() == 0

    def test_immutability(self):
        rsb = ReturnStackBuffer()
        rsb.push(1, 4)
        assert rsb.top() is BOTTOM

    def test_equality_hash(self):
        a = ReturnStackBuffer().push(1, 4)
        b = ReturnStackBuffer().push(1, 4)
        assert a == b and hash(a) == hash(b)

    def test_stack_returns_full_stack(self):
        rsb = ReturnStackBuffer().push(1, 4).push(2, 5)
        assert rsb.stack() == [4, 5]
