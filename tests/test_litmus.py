"""Ground-truth sweep over every litmus case (§4.2's test suites).

For each case we check:
  * sequential execution leaks iff the case says so;
  * the figure's attack schedule (when present) leaks iff expected;
  * Pitchfork (with the case's required features) flags it iff expected.
"""

import pytest

from repro.core import Machine, run, run_sequential, secret_observations
from repro.litmus import all_cases, all_suites, find_case, load_suite
from repro.pitchfork import analyze

CASES = all_cases()
IDS = [c.name for c in CASES]


@pytest.fixture(scope="module")
def reports():
    """One Pitchfork run per case, shared across tests."""
    out = {}
    for case in CASES:
        out[case.name] = analyze(
            case.program, case.config(), bound=case.min_bound,
            fwd_hazards=case.needs_fwd_hazards,
            explore_aliasing=case.needs_aliasing,
            jmpi_targets=case.jmpi_targets, rsb_targets=case.rsb_targets,
            rsb_policy=case.rsb_policy, max_paths=6000)
    return out


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_sequential_ground_truth(case):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    seq = run_sequential(machine, case.config(), max_retires=300)
    leaked = bool(secret_observations(seq.trace))
    assert leaked == case.leaks_sequentially


@pytest.mark.parametrize(
    "case", [c for c in CASES if c.attack_schedule is not None],
    ids=[c.name for c in CASES if c.attack_schedule is not None])
def test_attack_schedule_ground_truth(case):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    res = run(machine, case.config(), case.attack_schedule)
    leaked = bool(secret_observations(res.trace))
    assert leaked == case.leaks_speculatively


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_pitchfork_ground_truth(case, reports):
    report = reports[case.name]
    should_flag = case.leaks_speculatively or case.leaks_sequentially
    assert (not report.secure) == should_flag


@pytest.mark.parametrize(
    "case",
    [c for c in CASES if c.leaks_speculatively and not c.detected_by_core_tool],
    ids=[c.name for c in CASES
         if c.leaks_speculatively and not c.detected_by_core_tool])
def test_core_tool_blind_spots(case):
    """Cases the paper's tool cannot find without the extensions
    (aliasing prediction, mistrained indirect targets)."""
    report = analyze(case.program, case.config(), bound=case.min_bound,
                     fwd_hazards=case.needs_fwd_hazards,
                     rsb_policy=case.rsb_policy, max_paths=6000)
    assert report.secure  # blind without the extension


class TestSuitesShape:
    def test_all_suites_present(self):
        suites = all_suites()
        assert set(suites) == {"kocher", "spec_v1", "spec_v11", "spec_v4",
                               "spec_rsb", "aliasing", "haystack",
                               "diffregress"}

    def test_kocher_has_15_cases(self):
        assert len(load_suite("kocher")) == 15

    def test_find_case(self):
        assert find_case("v1_fig1").figure == "Fig 1"
        with pytest.raises(KeyError):
            find_case("nope")

    def test_every_case_has_description(self):
        for case in CASES:
            assert case.description and case.variant

    def test_figure_cases_have_schedules(self):
        for case in CASES:
            if case.figure in {"Fig 1", "Fig 2", "Fig 6", "Fig 7",
                               "Fig 11", "Fig 12", "Fig 13"}:
                assert case.attack_schedule is not None

    def test_programs_validate(self):
        for case in CASES:
            case.program.validate()


class TestBoundSensitivity:
    """kocher_05's loop gadget needs a deep speculation window — the
    phenomenon behind the paper's bound-250 configuration."""

    def test_loop_gadget_invisible_at_shallow_bound(self):
        case = find_case("kocher_05")
        report = analyze(case.program, case.config(), bound=12,
                         fwd_hazards=False, max_paths=6000)
        assert report.secure

    def test_loop_gadget_found_at_deep_bound(self):
        case = find_case("kocher_05")
        report = analyze(case.program, case.config(), bound=40,
                         fwd_hazards=False, max_paths=6000)
        assert not report.secure
