"""Tests for the MiniCT language, type system, and both compiler
pipelines."""

import pytest

from repro.core import (Config, Jump, Machine, Memory, PUBLIC, SECRET,
                        run_sequential, secret_observations)
from repro.core.errors import CompileError
from repro.ctcomp import (ArrayDecl, Assign, BinOp, CallStmt, Const,
                          FenceStmt, Func, If, Index, Module, Select,
                          StoreStmt, UnOp, Var, VarDecl, While,
                          check_module, compile_module, count_fences,
                          expr_label, insert_fences, retpolinize,
                          type_report)
from repro.ctcomp.typing import TypeEnv
from repro.pitchfork import analyze


def _simple_module(stmts, variables=(), arrays=(), funcs=()):
    return Module("m", funcs=(Func("main", tuple(stmts)),) + tuple(funcs),
                  variables=tuple(variables), arrays=tuple(arrays))


class TestTyping:
    def test_expr_labels(self):
        env = TypeEnv({"x": PUBLIC, "k": SECRET}, {"a": SECRET})
        assert expr_label(Const(1), env) == PUBLIC
        assert expr_label(Var("k"), env) == SECRET
        assert expr_label(BinOp("add", Var("x"), Var("k")), env) == SECRET
        assert expr_label(Index("a", Var("x")), env) == SECRET
        assert expr_label(Select(Var("k"), Const(1), Const(2)), env) == SECRET

    def test_undeclared_variable(self):
        mod = _simple_module([Assign("x", Const(1))])
        with pytest.raises(CompileError):
            check_module(mod)

    def test_illegal_flow_secret_into_public(self):
        mod = _simple_module(
            [Assign("x", Var("k"))],
            variables=[VarDecl("x", PUBLIC), VarDecl("k", SECRET)])
        with pytest.raises(CompileError):
            check_module(mod)

    def test_secret_loop_rejected(self):
        mod = _simple_module(
            [While(BinOp("ltu", Var("k"), Const(4)), ())],
            variables=[VarDecl("k", SECRET)])
        with pytest.raises(CompileError):
            check_module(mod)

    def test_secret_branch_reported(self):
        mod = _simple_module(
            [If(BinOp("ltu", Var("k"), Const(4)),
                then=(Assign("k", Const(0)),))],
            variables=[VarDecl("k", SECRET)])
        report = type_report(mod)
        assert report.secret_branch_sites == ("main",)
        assert not report.classically_ct

    def test_secret_index_reported(self):
        mod = _simple_module(
            [Assign("k", Index("a", Var("k")))],
            variables=[VarDecl("k", SECRET)],
            arrays=[ArrayDecl("a", 4, SECRET)])
        report = type_report(mod)
        assert report.secret_index_sites == ("main",)

    def test_clean_module(self):
        mod = _simple_module(
            [Assign("x", BinOp("add", Var("x"), Const(1)))],
            variables=[VarDecl("x", PUBLIC)])
        assert type_report(mod).classically_ct


class TestLoweringBasics:
    def test_assign_and_arith(self):
        mod = _simple_module(
            [Assign("x", BinOp("add", Const(2), Const(3)))],
            variables=[VarDecl("x", PUBLIC)])
        cm = compile_module(mod)
        m = Machine(cm.program)
        seq = run_sequential(m, cm.initial_config())
        assert seq.final.reg(cm.var_regs["x"]).val == 5

    def test_array_store_load(self):
        mod = _simple_module(
            [StoreStmt("a", Const(1), Const(42)),
             Assign("x", Index("a", Const(1)))],
            variables=[VarDecl("x", PUBLIC)],
            arrays=[ArrayDecl("a", 4, PUBLIC)])
        cm = compile_module(mod)
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert seq.final.reg(cm.var_regs["x"]).val == 42
        assert seq.final.mem.read(cm.addr_of("a", 1)).val == 42

    def test_while_loop(self):
        mod = _simple_module(
            [Assign("i", Const(0)), Assign("acc", Const(0)),
             While(BinOp("ltu", Var("i"), Const(5)), (
                 Assign("acc", BinOp("add", Var("acc"), Var("i"))),
                 Assign("i", BinOp("add", Var("i"), Const(1)))))],
            variables=[VarDecl("i", PUBLIC), VarDecl("acc", PUBLIC)])
        cm = compile_module(mod)
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert seq.final.reg(cm.var_regs["acc"]).val == 10

    def test_public_if_both_arms(self):
        for x, expected in ((1, 10), (5, 20)):
            mod = _simple_module(
                [If(BinOp("ltu", Var("x"), Const(3)),
                    then=(Assign("y", Const(10)),),
                    other=(Assign("y", Const(20)),))],
                variables=[VarDecl("x", PUBLIC, x), VarDecl("y", PUBLIC)])
            cm = compile_module(mod)
            seq = run_sequential(Machine(cm.program), cm.initial_config())
            assert seq.final.reg(cm.var_regs["y"]).val == expected

    def test_function_call(self):
        mod = Module("m", funcs=(
            Func("main", (Assign("x", Const(1)), CallStmt("helper"))),
            Func("helper", (Assign("x", BinOp("add", Var("x"), Const(9))),)),
        ), variables=(VarDecl("x", PUBLIC),))
        cm = compile_module(mod)
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert seq.final.reg(cm.var_regs["x"]).val == 10

    def test_register_hint_sharing(self):
        mod = _simple_module(
            [Assign("b", Const(9))],
            variables=[VarDecl("a", PUBLIC, 7, reg_hint="rx"),
                       VarDecl("b", PUBLIC, 0, reg_hint="rx")])
        cm = compile_module(mod)
        assert cm.var_regs["a"] == cm.var_regs["b"] == "rx"
        assert cm.initial_config().reg("rx").val == 7  # first decl wins

    def test_fence_statement(self):
        mod = _simple_module([FenceStmt()])
        cm = compile_module(mod)
        assert count_fences(cm.program) == 1


class TestFactPipeline:
    def _clamp_module(self):
        return _simple_module(
            [If(BinOp("gt", Var("pad"), Const(3)),
                then=(Assign("pad", Const(3)), Assign("flag", Const(0))))],
            variables=[VarDecl("pad", SECRET, 9), VarDecl("flag", SECRET, 1)])

    def test_c_style_branches_on_secret(self):
        cm = compile_module(self._clamp_module(), style="c")
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        jumps = [o for o in seq.trace if isinstance(o, Jump)]
        assert any(j.label == SECRET for j in jumps)

    def test_fact_style_is_branch_free(self):
        cm = compile_module(self._clamp_module(), style="fact")
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert not secret_observations(seq.trace)

    def test_fact_semantics_match_c(self):
        for pad0 in (1, 9):
            results = {}
            for style in ("c", "fact"):
                cm = compile_module(self._clamp_module(), style=style)
                seq = run_sequential(
                    Machine(cm.program),
                    cm.initial_config(var_overrides={"pad": pad0}))
                results[style] = (seq.final.reg(cm.var_regs["pad"]).val,
                                  seq.final.reg(cm.var_regs["flag"]).val)
            assert results["c"] == results["fact"]

    def test_fact_store_in_secret_branch(self):
        mod = _simple_module(
            [If(BinOp("eq", Var("k"), Const(1)),
                then=(StoreStmt("a", Const(0), Const(7)),))],
            variables=[VarDecl("k", SECRET, 1)],
            arrays=[ArrayDecl("a", 2, SECRET, (5, 5))])
        for k0, expected in ((1, 7), (0, 5)):
            cm = compile_module(mod, style="fact")
            seq = run_sequential(
                Machine(cm.program),
                cm.initial_config(var_overrides={"k": k0}))
            assert seq.final.mem.read(cm.addr_of("a")).val == expected

    def test_fact_nested_control_rejected(self):
        mod = _simple_module(
            [If(BinOp("eq", Var("k"), Const(1)),
                then=(If(BinOp("eq", Var("k"), Const(2)), ()),))],
            variables=[VarDecl("k", SECRET)])
        with pytest.raises(CompileError):
            compile_module(mod, style="fact")

    def test_fact_passes_pitchfork(self):
        cm = compile_module(self._clamp_module(), style="fact")
        report = analyze(cm.program, cm.initial_config(), bound=16,
                         fwd_hazards=False)
        assert report.secure

    def test_c_flagged_by_pitchfork(self):
        cm = compile_module(self._clamp_module(), style="c")
        report = analyze(cm.program, cm.initial_config(), bound=16,
                         fwd_hazards=False)
        assert not report.secure


class TestPasses:
    def test_insert_fences_blocks_v1(self):
        from repro.litmus import find_case
        case = find_case("v1_fig1")
        fenced = insert_fences(case.program)
        assert count_fences(fenced) == 2
        report = analyze(fenced, case.config(), bound=16, fwd_hazards=False)
        assert report.secure

    def test_insert_fences_preserves_semantics(self):
        from repro.litmus import find_case
        case = find_case("v1_fig1")
        m0 = Machine(case.program)
        m1 = Machine(insert_fences(case.program))
        s0 = run_sequential(m0, case.config())
        s1 = run_sequential(m1, case.config())
        assert s0.final.regs == s1.final.regs
        assert s0.final.mem == s1.final.mem

    def test_retpolinize_replaces_jmpi(self):
        from repro.core.isa import Jmpi
        from repro.litmus import find_case
        case = find_case("v2_fig11")
        transformed = retpolinize(case.program)
        assert not any(isinstance(i, Jmpi)
                       for _n, i in transformed.items())

    def test_retpolinized_v2_is_secure(self):
        """The Fig 11 attack dies once the jmpi becomes a retpoline."""
        from repro.litmus import find_case
        case = find_case("v2_fig11")
        transformed = retpolinize(case.program)
        config = case.config().with_(
            regs={**case.config().regs},
        )
        # the retpoline needs a stack
        from repro.core import Memory, Region, Value, Reg
        mem = case.config().mem.with_region(
            Region("stack", 0x200, 8, PUBLIC), None)
        regs = dict(case.config().regs)
        regs[Reg("rsp")] = Value(0x207)
        config = case.config().with_(regs=regs, mem=mem)
        report = analyze(transformed, config, bound=16, fwd_hazards=False,
                         jmpi_targets=case.jmpi_targets)
        assert report.secure

    def test_retpolinized_jump_reaches_computed_target(self):
        from repro.core import Memory, Region, Value, Reg
        from repro.litmus import find_case
        case = find_case("v2_fig11")
        transformed = retpolinize(case.program)
        mem = case.config().mem.with_region(
            Region("stack", 0x200, 8, PUBLIC), None)
        regs = dict(case.config().regs)
        regs[Reg("rsp")] = Value(0x207)
        config = case.config().with_(regs=regs, mem=mem)
        seq = run_sequential(Machine(transformed), config, max_retires=60)
        # architectural behaviour unchanged: execution reaches point 20
        jumps = [o for o in seq.trace if isinstance(o, Jump)]
        assert any(j.target == 20 for j in jumps)
