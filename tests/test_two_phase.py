"""Tests for the §4.2.1 two-phase procedure: phase labelling, the
phase-2 skip, and the API classification built on top of it."""

import pytest

import repro.pitchfork.detector as detector
from repro.api import Project
from repro.litmus import find_case
from repro.pitchfork import analyze_two_phase


class TestAnalyzeTwoPhase:
    def test_v1_leak_is_labelled_phase_one(self):
        case = find_case("v1_fig1")
        report = analyze_two_phase(case.program, case.config(),
                                   bound_no_fwd=case.min_bound,
                                   bound_fwd=case.min_bound)
        assert not report.secure
        assert report.phase == "v1/v1.1"
        assert report.bound == case.min_bound

    def test_v4_leak_is_labelled_phase_two(self):
        case = find_case("v4_fig7")
        report = analyze_two_phase(case.program, case.config(),
                                   bound_no_fwd=case.min_bound,
                                   bound_fwd=case.min_bound)
        assert not report.secure
        assert report.phase == "v4"

    def test_clean_program_reports_phase_two(self):
        case = find_case("v1_fig8_fence")
        report = analyze_two_phase(case.program, case.config(),
                                   bound_no_fwd=case.min_bound,
                                   bound_fwd=case.min_bound)
        assert report.secure and report.phase == "v4"

    def test_phase_two_skipped_after_phase_one_violation(self, monkeypatch):
        """A phase-1 finding must short-circuit: phase 2 never runs."""
        calls = []
        real_analyze = detector.analyze

        def counting_analyze(*args, **kwargs):
            calls.append(kwargs.get("fwd_hazards"))
            return real_analyze(*args, **kwargs)

        monkeypatch.setattr(detector, "analyze", counting_analyze)
        case = find_case("v1_fig1")
        report = analyze_two_phase(case.program, case.config(),
                                   bound_no_fwd=case.min_bound,
                                   bound_fwd=case.min_bound)
        assert not report.secure
        assert calls == [False]

    def test_both_phases_run_when_phase_one_clean(self, monkeypatch):
        calls = []
        real_analyze = detector.analyze

        def counting_analyze(*args, **kwargs):
            calls.append(kwargs.get("fwd_hazards"))
            return real_analyze(*args, **kwargs)

        monkeypatch.setattr(detector, "analyze", counting_analyze)
        case = find_case("v4_fig7")
        analyze_two_phase(case.program, case.config(),
                          bound_no_fwd=case.min_bound,
                          bound_fwd=case.min_bound)
        assert calls == [False, True]


class TestTwoPhaseAnalysis:
    """The API wrapper classifies exactly like evaluate_variant."""

    def test_v1_classification(self):
        case = find_case("v1_fig1")
        report = Project.from_litmus(case).run(
            "two-phase", bound_no_fwd=case.min_bound,
            bound_fwd=case.min_bound)
        assert report.status == "v1"
        assert [p.name for p in report.phases] == ["v1/v1.1"]

    def test_f_classification_records_both_phases(self):
        case = find_case("v4_fig7")
        report = Project.from_litmus(case).run(
            "two-phase", bound_no_fwd=case.min_bound,
            bound_fwd=case.min_bound)
        assert report.status == "f"
        assert [p.name for p in report.phases] == ["v1/v1.1", "v4"]
        assert report.phases[0].secure and not report.phases[1].secure

    def test_clean_classification(self):
        case = find_case("v1_fig8_fence")
        report = Project.from_litmus(case).run(
            "two-phase", bound_no_fwd=case.min_bound,
            bound_fwd=case.min_bound)
        assert report.status == "clean" and report.ok


class TestFindCase:
    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            find_case("not_a_registered_case")

    def test_known_name_round_trips(self):
        assert find_case("kocher_01").name == "kocher_01"
