"""Unit tests for labelled values, registers and operands."""

import pytest

from repro.core.lattice import PUBLIC, SECRET
from repro.core.values import (BOTTOM, Reg, Value, join_labels, labels_of,
                               operands, public, secret)


class TestValue:
    def test_default_label_public(self):
        assert Value(5).label == PUBLIC

    def test_join_raises_label(self):
        assert Value(5, PUBLIC).join(SECRET).label == SECRET

    def test_join_keeps_payload(self):
        assert Value(5, PUBLIC).join(SECRET).val == 5

    def test_relabel(self):
        assert Value(5, SECRET).relabel(PUBLIC) == Value(5, PUBLIC)

    def test_is_public(self):
        assert public(1).is_public()
        assert not secret(1).is_public()

    def test_equality_includes_label(self):
        assert public(3) != secret(3)

    def test_hashable(self):
        assert len({public(1), public(1), secret(1)}) == 2


class TestBottom:
    def test_singleton(self):
        from repro.core.values import _Bottom
        assert _Bottom() is BOTTOM

    def test_falsy(self):
        assert not BOTTOM


class TestOperands:
    def test_int_becomes_public_value(self):
        (op,) = operands(42)
        assert op == Value(42, PUBLIC)

    def test_str_becomes_reg(self):
        (op,) = operands("ra")
        assert op == Reg("ra")

    def test_value_passes_through(self):
        v = secret(1)
        assert operands(v) == (v,)

    def test_reg_passes_through(self):
        r = Reg("rb")
        assert operands(r) == (r,)

    def test_mixed(self):
        ops = operands(0x40, "ra", secret(7))
        assert ops == (Value(0x40), Reg("ra"), secret(7))

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            operands(3.14)

    def test_labels_of(self):
        assert labels_of([public(1), secret(2)]) == (PUBLIC, SECRET)

    def test_join_labels(self):
        assert join_labels([public(1), secret(2)]) == SECRET
        assert join_labels([public(1), public(2)]) == PUBLIC
