"""Property tests for the commutation relation (`repro.engine.por`).

The reduction's soundness rests on one semantic fact: swapping an
*independent* adjacent pair of directives in a well-formed schedule
replays to the same final configuration with the same observations
(swapped within the pair, identical elsewhere) — a direct corollary of
Theorem B.1 determinism once the pair's footprints are disjoint.  These
tests check the relation itself:

* symmetry — ``independent(c, a, b) == independent(c, b, a)``;
* irreflexivity on conflicting pairs — overlapping footprints (every
  directive with itself included) are never independent;
* the commutation corollary — on schedules recorded from litmus cases
  and random programs, every adjacent pair the relation calls
  independent actually commutes, step-level and whole-schedule.
"""

import random

import pytest

from repro.core.machine import Machine
from repro.engine import ExecutionEngine, footprint, independent
from repro.litmus import find_case
from repro.pitchfork import ExplorationOptions, Explorer
from repro.verify.generators import random_config, random_program

LITMUS = ("kocher_01", "kocher_05", "kocher_13", "v4_fig7",
          "v4_double_store", "v1_fig1", "v11_fig6", "ret2spec_fig12")
RANDOM_SEEDS = range(12)


def _recorded_runs():
    """(machine, initial config, schedule) triples from real explorations."""
    runs = []
    for name in LITMUS:
        case = find_case(name)
        machine = Machine(case.program, rsb_policy=case.rsb_policy)
        options = ExplorationOptions(
            bound=min(case.min_bound, 12),
            fwd_hazards=case.needs_fwd_hazards,
            explore_aliasing=case.needs_aliasing,
            jmpi_targets=case.jmpi_targets,
            rsb_targets=case.rsb_targets)
        result = Explorer(machine, options).explore(case.make_config(),
                                                    stop_at_first=False)
        config = case.make_config()
        for path in result.paths[:4]:
            runs.append((machine, config, path.schedule))
    for seed in RANDOM_SEEDS:
        rng = random.Random(seed)
        program = random_program(rng, length=rng.randrange(8, 14))
        config = random_config(rng)
        machine = Machine(program)
        result = Explorer(machine, ExplorationOptions(bound=8)).explore(
            config, stop_at_first=False)
        for path in result.paths[:3]:
            runs.append((machine, config, path.schedule))
    return runs


@pytest.fixture(scope="module")
def recorded_runs():
    return _recorded_runs()


def _states_along(machine, config, schedule):
    """The configuration before each schedule position."""
    engine = ExecutionEngine(machine)
    states = [config]
    current = config
    for directive in schedule:
        current, _leak = engine.step(current, directive)
        states.append(current)
    return states


def test_symmetric(recorded_runs):
    """independent(c, a, b) == independent(c, b, a) over every adjacent
    pair of every recorded schedule."""
    checked = 0
    for machine, config, schedule in recorded_runs:
        states = _states_along(machine, config, schedule)
        for i in range(len(schedule) - 1):
            a, b = schedule[i], schedule[i + 1]
            if a == b:
                continue
            lr = independent(machine, states[i], a, b)
            rl = independent(machine, states[i], b, a)
            assert lr == rl, (schedule[i], schedule[i + 1], i)
            checked += 1
    assert checked > 200, "expected a meaningful sample of pairs"


def test_irreflexive_on_conflicts(recorded_runs):
    """A pair with overlapping footprints is never independent — in
    particular no directive is independent of itself (its footprint
    always self-conflicts: every directive writes something)."""
    checked = 0
    for machine, config, schedule in recorded_runs[:20]:
        states = _states_along(machine, config, schedule)
        for i, directive in enumerate(schedule):
            fp = footprint(machine, states[i], directive)
            assert fp is None or fp.writes, directive
            assert not independent(machine, states[i], directive, directive)
            checked += 1
        for i in range(len(schedule) - 1):
            a, b = schedule[i], schedule[i + 1]
            fa = footprint(machine, states[i], a)
            fb = footprint(machine, states[i], b)
            if fa is None or fb is None or not fa.conflicts(fb):
                continue
            assert not independent(machine, states[i], a, b), (a, b, i)
    assert checked > 100


def test_independent_pairs_commute_stepwise(recorded_runs):
    """For every adjacent pair judged independent: both orders step to
    the same configuration with the same observation multiset."""
    commuted = 0
    for machine, config, schedule in recorded_runs:
        engine = ExecutionEngine(machine)
        states = _states_along(machine, config, schedule)
        for i in range(len(schedule) - 1):
            a, b = schedule[i], schedule[i + 1]
            if not independent(machine, states[i], a, b):
                continue
            c0 = states[i]
            c_ab, leak_a = engine.step(c0, a)
            c_ab, leak_b = engine.step(c_ab, b)
            c_ba, leak_b2 = engine.step(c0, b)
            c_ba, leak_a2 = engine.step(c_ba, a)
            assert c_ab == c_ba, (a, b, i)
            assert sorted(map(repr, leak_a + leak_b)) == \
                sorted(map(repr, leak_b2 + leak_a2)), (a, b, i)
            commuted += 1
    assert commuted > 40, "expected plenty of independent adjacent pairs"


def test_swapped_schedule_replays_to_same_state(recorded_runs):
    """The Theorem B.1 corollary, whole-schedule form: swapping one
    independent adjacent pair anywhere in a recorded schedule replays
    to the same final configuration, with the same observation multiset
    and an identical trace outside the swapped pair's observations."""
    replayed = 0
    for machine, config, schedule in recorded_runs:
        engine = ExecutionEngine(machine)
        states = _states_along(machine, config, schedule)
        candidates = [i for i in range(len(schedule) - 1)
                      if independent(machine, states[i],
                                     schedule[i], schedule[i + 1])]
        for i in candidates[:6]:
            swapped = list(schedule)
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
            final_a, trace_a = _replay(engine, config, schedule)
            final_b, trace_b = _replay(engine, config, tuple(swapped))
            assert final_a == final_b, (schedule[i], schedule[i + 1], i)
            assert sorted(trace_a) == sorted(trace_b), i
            replayed += 1
    assert replayed > 30


def _replay(engine, config, schedule):
    current = config
    trace = []
    for directive in schedule:
        current, leak = engine.step(current, directive)
        trace.extend(repr(o) for o in leak)
    return current, trace


def test_footprint_tokens_are_meaningful():
    """Spot checks of the footprint construction on a real window."""
    from repro.core.directives import Execute, Fetch, Retire
    case = find_case("kocher_13")
    machine = Machine(case.program)
    config = case.make_config()
    engine = ExecutionEngine(machine)
    # fetch a few instructions to populate the buffer
    schedule = []
    current = config
    for _ in range(6):
        stepped = engine.try_step(current, Fetch())
        if stepped is None:
            break
        current = stepped[0]
    fp_fetch = footprint(machine, current, Fetch())
    assert fp_fetch is not None and ("pc",) in fp_fetch.reads
    assert ("size",) in fp_fetch.writes
    fp_retire = footprint(machine, current, Retire())
    if fp_retire is not None:
        assert ("size",) in fp_retire.writes
        assert fp_fetch.conflicts(fp_retire), \
            "fetch and retire contend on the buffer frontier"
    # an execute's footprint stays inside the buffer/memory tokens
    for i, _entry in current.buf.items():
        fp = footprint(machine, current, Execute(i))
        if fp is None:
            continue
        assert ("buf", i) in fp.writes
        assert ("size",) not in fp.writes
