"""Integration tests: every worked figure of the paper, step by step.

Each test replays the figure's directive schedule and asserts the exact
leakage the paper prints (addresses are the figures' hex values).
"""

import pytest

from repro.core import (Config, Fwd, Jump, Machine, Memory, Read, Rollback,
                        StuckError, TJump, TStore, TValue, Write, execute,
                        fetch, run, secret_observations)
from repro.core.lattice import PUBLIC, SECRET
from repro.litmus import find_case


def _replay(case):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    return machine, run(machine, case.config(), case.attack_schedule)


class TestFigure1:
    """Spectre v1: the bounds check is speculatively ignored."""

    def test_leakage_sequence(self):
        case = find_case("v1_fig1")
        _m, res = _replay(case)
        key1 = 0xA2  # Key[1] in the litmus memory
        assert res.trace == (Read(0x49, PUBLIC), Read(key1 + 0x44, SECRET))

    def test_first_read_is_key_cell(self):
        """execute 2 reads 49_pub: address public, data = Key[1]."""
        case = find_case("v1_fig1")
        _m, res = _replay(case)
        entry = res.final.buf[2]
        assert isinstance(entry, TValue)
        assert entry.value.label == SECRET and entry.value.val == 0xA2

    def test_sequential_execution_is_clean(self):
        from repro.core import run_sequential
        case = find_case("v1_fig1")
        m = Machine(case.program)
        seq = run_sequential(m, case.config())
        assert not secret_observations(seq.trace)


class TestFigure2:
    """Hypothetical aliasing-predictor attack (§3.5)."""

    def test_leakage_sequence(self):
        case = find_case("aliasing_fig2")
        _m, res = _replay(case)
        x = 0x99
        assert res.trace == (
            Read(x + 0x48, SECRET),     # execute 8: leaks a = x + 48
            Fwd(0x42, PUBLIC),          # execute 2: addr resolves to 42
            Rollback(), Fwd(0x45, PUBLIC))  # execute 7: misprediction

    def test_rollback_restores_load_pc(self):
        case = find_case("aliasing_fig2")
        _m, res = _replay(case)
        assert res.final.pc == 7        # {7, 8} squashed, refetch at 7
        assert 7 not in res.final.buf and 8 not in res.final.buf

    def test_store_remains_resolved(self):
        case = find_case("aliasing_fig2")
        _m, res = _replay(case)
        store = res.final.buf[2]
        assert isinstance(store, TStore)
        assert store.addr.val == 0x42 and store.src.label == SECRET


class TestFigure5:
    """Store hazard from late store-address resolution (§3.4)."""

    def test_full_replay(self):
        from repro.asm import assemble
        m = Machine(assemble(
            "store 12, [0x43]\nstore 20, [3, %ra]\n%rc = load [0x43]\nhalt"))
        c = Config.initial({"ra": 0x40}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(), fetch(),
                         execute(1, "addr"), execute(3), execute(2, "addr")])
        # Leakage for D: fwd 43; (forward) fwd 43; rollback, fwd 43
        assert res.trace == (Fwd(0x43, PUBLIC), Fwd(0x43, PUBLIC),
                             Rollback(), Fwd(0x43, PUBLIC))
        # the load forwarded 12 from store 1 before being squashed
        assert 3 not in res.final.buf
        assert res.final.buf[2].addr.val == 0x43


class TestFigure6:
    """Spectre v1.1: speculative out-of-bounds store forwarded."""

    def test_leakage_sequence(self):
        case = find_case("v11_fig6")
        _m, res = _replay(case)
        x = 0x77
        assert res.trace == (
            Fwd(0x45, PUBLIC),          # execute 2: addr
            Fwd(0x45, PUBLIC),          # execute 7: forward from store
            Read(x + 0x48, SECRET))     # execute 8: leak

    def test_forwarded_value_is_secret(self):
        case = find_case("v11_fig6")
        _m, res = _replay(case)
        entry = res.final.buf[7]
        assert entry.value.label == SECRET and entry.dep == 2


class TestFigure7:
    """Spectre v4: the sanitising store executes too late."""

    def test_leakage_sequence(self):
        case = find_case("v4_fig7")
        _m, res = _replay(case)
        key3 = 0x24  # secretKey[3]
        assert res.trace == (
            Read(0x43, PUBLIC),             # execute 3: stale read
            Read(key3 + 0x44, SECRET),      # execute 4: leak
            Rollback(), Fwd(0x43, PUBLIC))  # execute 2: hazard detected

    def test_rollback_squashes_loads(self):
        case = find_case("v4_fig7")
        _m, res = _replay(case)
        assert 3 not in res.final.buf and 4 not in res.final.buf
        assert res.final.pc == 3            # refetch the stale load
        assert res.final.buf[2].addr.val == 0x43


class TestFigure8:
    """Fence mitigation: loads cannot execute past the fence."""

    def test_loads_blocked(self):
        case = find_case("v1_fig8_fence")
        m = Machine(case.program)
        res = run(m, case.config(),
                  [fetch(True), fetch(), fetch(), fetch()])
        for i in (3, 4):
            with pytest.raises(StuckError):
                m.step(res.final, execute(i))

    def test_branch_resolution_squashes_everything(self):
        case = find_case("v1_fig8_fence")
        m = Machine(case.program)
        res = run(m, case.config(),
                  [fetch(True), fetch(), fetch(), fetch(), execute(1)])
        assert res.final.pc == 5
        assert list(res.final.buf.indices()) == [1]
        assert isinstance(res.final.buf[1], TJump)


class TestFigure11:
    """Spectre v2: mistrained indirect branch."""

    def test_leakage_sequence(self):
        case = find_case("v2_fig11")
        _m, res = _replay(case)
        key1 = 0xB2
        assert res.trace == (Read(0x49, PUBLIC), Read(key1 + 0x44, SECRET))

    def test_fence_does_not_stop_v2(self):
        """The fetched fence retires before the gadget load executes —
        fences are useless against v2 (App A.1's point)."""
        case = find_case("v2_fig11")
        _m, res = _replay(case)
        assert secret_observations(res.trace)


class TestFigure12:
    """ret2spec: RSB underflow steered by the attacker."""

    def test_attacker_reaches_gadget(self):
        case = find_case("ret2spec_fig12")
        _m, res = _replay(case)
        leaks = secret_observations(res.trace)
        assert len(leaks) == 1
        key0 = 0xC1
        assert leaks[0] == Read(0x40 + key0, SECRET)

    def test_rsb_empty_after_two_rets(self):
        from repro.core.values import BOTTOM
        case = find_case("ret2spec_fig12")
        m = Machine(case.program)
        res = run(m, case.config(), case.attack_schedule[:2])
        assert res.final.rsb.top() is BOTTOM


class TestFigure13:
    """Retpoline: speculation is pinned; the attacker steers nothing."""

    def test_leakage_sequence(self):
        case = find_case("retpoline_fig13")
        _m, res = _replay(case)
        assert res.trace == (
            Fwd(0x7B, PUBLIC),           # store addr resolution
            Fwd(0x7B, PUBLIC),           # rtmp load forwards jump target
            Rollback(), Jump(20, PUBLIC))  # jmpi: guess 4, actual 20

    def test_execution_lands_on_computed_target(self):
        case = find_case("retpoline_fig13")
        _m, res = _replay(case)
        assert res.final.pc == 20

    def test_fence_was_squashed(self):
        from repro.core import TFence
        case = find_case("retpoline_fig13")
        _m, res = _replay(case)
        assert not any(isinstance(e, TFence)
                       for _i, e in res.final.buf.items())

    def test_no_secret_observations(self):
        case = find_case("retpoline_fig13")
        _m, res = _replay(case)
        assert not secret_observations(res.trace)
