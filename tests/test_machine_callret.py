"""Machine tests: calls, returns and the RSB (Appendix A.2)."""

import pytest

from repro.asm import assemble
from repro.core import (Config, Machine, Memory, Region, RETIRE, StuckError,
                        TCallMarker, TJmpi, TLoad, TOp, TRetMarker, TStore,
                        execute, fetch, run, run_sequential)
from repro.core.lattice import PUBLIC
from repro.core.machine import RSP, RTMP
from repro.core.values import BOTTOM, Value

SRC = """
main:   call f
after:  %rd = op mov, 7
        halt
f:      %ra = op add, %ra, 1
        ret
"""


def _setup(rsb_policy="directive"):
    prog = assemble(SRC)
    m = Machine(prog, rsb_policy=rsb_policy)
    mem = Memory().with_region(Region("stack", 0xF8, 8, PUBLIC), None)
    c = Config.initial({"ra": 1, "rsp": 0x100}, mem, pc=prog.entry)
    return m, c


class TestCallFetch:
    def test_call_expands_to_group(self):
        m, c = _setup()
        after, _ = m.step(c, fetch())
        assert isinstance(after.buf[1], TCallMarker)
        assert isinstance(after.buf[2], TOp) and after.buf[2].dest == RSP
        assert isinstance(after.buf[3], TStore)
        assert after.pc == 4  # the callee

    def test_call_pushes_rsb(self):
        m, c = _setup()
        after, _ = m.step(c, fetch())
        assert after.rsb.top() == 2  # return point

    def test_call_store_holds_return_point(self):
        m, c = _setup()
        after, _ = m.step(c, fetch())
        assert after.buf[3].src == Value(2, PUBLIC)

    def test_call_with_pred_stuck(self):
        m, c = _setup()
        with pytest.raises(StuckError):
            m.step(c, fetch(5))


class TestCallRetire:
    def test_group_retires_together(self):
        m, c = _setup()
        res = run(m, c, [fetch(), execute(2), execute(3, "addr"), RETIRE])
        assert res.final.is_terminal() is False or True
        assert len(res.final.buf) == 0
        assert res.final.reg("rsp").val == 0xFF
        assert res.final.mem.read(0xFF).val == 2  # return address in memory
        assert res.retired == 1

    def test_unresolved_group_cannot_retire(self):
        m, c = _setup()
        res = run(m, c, [fetch()])
        with pytest.raises(StuckError):
            m.step(res.final, RETIRE)


class TestRetFetch:
    def test_ret_uses_rsb_prediction(self):
        m, c = _setup()
        res = run(m, c, [fetch(), fetch()])  # call, then ret? no: callee op
        # fetch callee body then the ret
        res = run(m, res.final, [fetch()])
        assert res.final.pc == 2  # RSB-predicted return point

    def test_ret_group_shape(self):
        m, c = _setup()
        res = run(m, c, [fetch(), fetch(), fetch()])
        buf = res.final.buf
        marker_idx = next(i for i, e in buf.items()
                          if isinstance(e, TRetMarker))
        assert isinstance(buf[marker_idx + 1], TLoad)
        assert buf[marker_idx + 1].dest == RTMP
        assert isinstance(buf[marker_idx + 2], TOp)
        assert isinstance(buf[marker_idx + 3], TJmpi)
        assert buf[marker_idx + 3].guess == 2

    def test_ret_pops_rsb(self):
        m, c = _setup()
        res = run(m, c, [fetch(), fetch(), fetch()])
        assert res.final.rsb.top() is BOTTOM

    def test_rsb_empty_directive_policy_takes_target(self):
        prog = assemble("ret\nhalt")
        m = Machine(prog, rsb_policy="directive")
        c = Config.initial({"rsp": 0x100}, Memory(), 1)
        after, _ = m.step(c, fetch(7))
        assert after.pc == 7

    def test_rsb_empty_refuse_policy_stuck(self):
        prog = assemble("ret\nhalt")
        m = Machine(prog, rsb_policy="refuse")
        c = Config.initial({"rsp": 0x100}, Memory(), 1)
        with pytest.raises(StuckError):
            m.step(c, fetch(7))
        with pytest.raises(StuckError):
            m.step(c, fetch())

    def test_rsb_empty_circular_policy_replays(self):
        prog = assemble("call f\nhalt\nf: ret\nhalt")
        m = Machine(prog, rsb_policy="circular")
        mem = Memory().with_region(Region("stack", 0xF8, 8, PUBLIC), None)
        c = Config.initial({"rsp": 0x100}, mem, 1)
        res = run(m, c, [fetch(), fetch()])   # call then ret (top=2)
        # now RSB is logically empty; a second ret replays the popped 2
        prog2 = assemble("call f\nret\nf: ret\nhalt")
        m2 = Machine(prog2, rsb_policy="circular")
        c2 = Config.initial({"rsp": 0x100}, mem, 1)
        res2 = run(m2, c2, [fetch(), fetch(), fetch()])
        assert res2.final.pc == 2  # replayed stale slot


class TestRetRetire:
    def test_ret_commits_rsp_only(self):
        """ret-retire updates rsp but rtmp stays microarchitectural."""
        m, c = _setup()
        seq = run_sequential(m, c)
        assert seq.final.reg("rsp").val == 0x100   # balanced call/ret
        assert RTMP not in seq.final.regs
        assert seq.final.reg("ra").val == 2        # callee ran
        assert seq.final.reg("rd").val == 7        # continuation ran

    def test_sequential_call_ret_observations(self):
        m, c = _setup()
        seq = run_sequential(m, c)
        kinds = [type(o).__name__ for o in seq.trace]
        # call: fwd (store addr) + write (retire); ret: read + jump
        assert "Write" in kinds and "Read" in kinds and "Jump" in kinds
