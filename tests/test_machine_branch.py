"""Machine tests: fetch and conditional-branch rules (§3.3, Fig 4)."""

import pytest

from repro.asm import assemble
from repro.core import (Config, Jump, Machine, Memory, Rollback, StuckError,
                        TBr, TJump, TValue, execute, fetch, run)
from repro.core.lattice import PUBLIC, SECRET
from repro.core.values import Value


@pytest.fixture()
def machine():
    # 1: br(<, (2, ra), 9, 12) — mirrors Fig 4 (ra = 3, so 2 < 3: true → 9)
    prog = assemble("""
        br lt, 2, %ra -> 9, 12
    """, base=1)
    # provide landing pads at 9 and 12
    from repro.core.isa import Op
    from repro.core.program import Program
    from repro.core.values import Reg, operands
    instrs = dict(prog.items())
    instrs[9] = Op(Reg("rc"), "add", operands(1, "rb"), 10)
    instrs[12] = Op(Reg("rd"), "mul", operands("rg", "rh"), 13)
    return Machine(Program(instrs, entry=1))


def _cfg(machine, **regs):
    defaults = {"ra": 3, "rb": 4, "rg": 1, "rh": 1}
    defaults.update(regs)
    return Config.initial(defaults, Memory(), pc=1)


class TestCondFetch:
    def test_fetch_true_records_guess_and_redirects(self, machine):
        c, leak = machine.step(_cfg(machine), fetch(True))
        assert c.pc == 9 and leak == ()
        entry = c.buf[1]
        assert isinstance(entry, TBr)
        assert entry.guess == 9 and entry.targets == (9, 12)

    def test_fetch_false_redirects_to_else(self, machine):
        c, _ = machine.step(_cfg(machine), fetch(False))
        assert c.pc == 12 and c.buf[1].guess == 12

    def test_plain_fetch_on_branch_is_stuck(self, machine):
        with pytest.raises(StuckError):
            machine.step(_cfg(machine), fetch())

    def test_int_fetch_on_branch_is_stuck(self, machine):
        with pytest.raises(StuckError):
            machine.step(_cfg(machine), fetch(12))


class TestCondExecute:
    def test_correct_prediction_resolves_to_jump(self, machine):
        """Fig 4(a): correctly predicted branch becomes jump 9."""
        res = run(machine, _cfg(machine), [fetch(True), fetch(), execute(1)])
        assert res.final.buf[1] == TJump(9)
        assert res.trace == (Jump(9, PUBLIC),)
        # the speculatively fetched successor survives
        assert 2 in res.final.buf

    def test_incorrect_prediction_rolls_back(self, machine):
        """Fig 4(b): mispredicted branch squashes younger entries."""
        res = run(machine, _cfg(machine), [fetch(False), fetch(), execute(1)])
        assert res.final.buf[1] == TJump(9)
        assert 2 not in res.final.buf
        assert res.final.pc == 9
        assert res.trace == (Rollback(), Jump(9, PUBLIC))

    def test_misprediction_reuses_squashed_indices(self, machine):
        res = run(machine, _cfg(machine),
                  [fetch(False), fetch(), execute(1), fetch()])
        assert 2 in res.final.buf  # refetched at the squashed index

    def test_condition_label_propagates_to_jump(self, machine):
        cfg = _cfg(machine, ra=Value(3, SECRET))
        res = run(machine, cfg, [fetch(True), execute(1)])
        (jump,) = res.trace
        assert isinstance(jump, Jump) and jump.label == SECRET

    def test_execute_unresolved_condition_stuck(self, machine):
        """Condition depends on a pending op: execution must wait."""
        from repro.core.isa import Op, Br
        from repro.core.program import Program
        from repro.core.values import Reg, operands
        prog = Program({
            1: Op(Reg("ra"), "add", operands(1, 1), 2),
            2: Br("lt", operands(2, "ra"), 3, 4),
            3: Op(Reg("rb"), "mov", operands(0), 4),
        })
        m = Machine(prog)
        c = Config.initial({}, Memory(), pc=1)
        c, _ = m.step(c, fetch())
        c, _ = m.step(c, fetch(True))
        with pytest.raises(StuckError):
            m.step(c, execute(2))

    def test_double_execute_stuck(self, machine):
        res = run(machine, _cfg(machine), [fetch(True), execute(1)])
        with pytest.raises(StuckError):
            machine.step(res.final, execute(1))

    def test_execute_missing_index_stuck(self, machine):
        with pytest.raises(StuckError):
            machine.step(_cfg(machine), execute(7))
