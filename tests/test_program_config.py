"""Unit tests for Program (µ's instruction half) and Config."""

import pytest

from repro.core.config import Config
from repro.core.errors import IllFormedProgramError
from repro.core.isa import Br, Call, Fence, Jmpi, Load, Op, Ret, Store
from repro.core.lattice import PUBLIC, SECRET
from repro.core.memory import Memory, layout
from repro.core.program import Program
from repro.core.values import Reg, Value, operands, public, secret


def _prog():
    return Program({
        1: Op(Reg("ra"), "mov", operands(0), 2),
        2: Br("eq", operands(0, 0), 1, 3),
        3: Call(5, 4),
        5: Ret(),
    }, entry=1, labels={"main": 1, "fn": 5})


class TestProgram:
    def test_empty_program_rejected(self):
        with pytest.raises(IllFormedProgramError):
            Program({})

    def test_entry_defaults_to_min(self):
        p = Program({7: Ret()})
        assert p.entry == 7

    def test_getitem_missing_raises(self):
        with pytest.raises(IllFormedProgramError):
            _prog()[99]

    def test_get_missing_is_none(self):
        assert _prog().get(99) is None

    def test_labels(self):
        p = _prog()
        assert p.label("fn") == 5 and p.name_of(1) == "main"
        assert p.name_of(2) is None

    def test_successors(self):
        p = _prog()
        assert p.successors(1) == (2,)
        assert p.successors(2) == (1, 3)
        assert p.successors(3) == (5,)
        assert p.successors(5) == ()

    def test_validate_ok(self):
        _prog().validate(allow_halt_targets=False)

    def test_validate_missing_branch_target(self):
        p = Program({1: Br("eq", operands(0, 0), 1, 99)})
        p.validate()  # 99 is a legal halt point by default
        with pytest.raises(IllFormedProgramError):
            p.validate(allow_halt_targets=False)

    def test_validate_missing_call_target(self):
        p = Program({1: Call(99, 2)})
        with pytest.raises(IllFormedProgramError):
            p.validate(allow_halt_targets=False)

    def test_points_sorted(self):
        assert list(_prog().points()) == [1, 2, 3, 5]


class TestConfig:
    def _config(self, **regs):
        mem = layout(("A", 2, PUBLIC, [1, 2]), ("K", 2, SECRET, [7, 8]))
        return Config.initial(regs or {"ra": 1}, mem, pc=1)

    def test_initial_coerces_strings_and_ints(self):
        c = self._config(ra=5)
        assert c.reg("ra") == Value(5, PUBLIC)

    def test_initial_is_terminal(self):
        assert self._config().is_initial() and self._config().is_terminal()

    def test_with_updates(self):
        c = self._config()
        assert c.with_(pc=9).pc == 9 and c.pc == 1

    def test_low_equivalence_reflexive(self):
        assert self._config().low_equivalent(self._config())

    def test_low_equivalence_secret_regs_differ(self):
        a = Config.initial({"rk": secret(1)}, Memory(), pc=1)
        b = Config.initial({"rk": secret(2)}, Memory(), pc=1)
        assert a.low_equivalent(b)

    def test_low_equivalence_public_regs_must_match(self):
        a = Config.initial({"ra": 1}, Memory(), pc=1)
        b = Config.initial({"ra": 2}, Memory(), pc=1)
        assert not a.low_equivalent(b)

    def test_low_equivalence_label_mismatch(self):
        a = Config.initial({"ra": public(1)}, Memory(), pc=1)
        b = Config.initial({"ra": secret(1)}, Memory(), pc=1)
        assert not a.low_equivalent(b)

    def test_low_equivalence_pc_must_match(self):
        assert not self._config().with_(pc=2).low_equivalent(self._config())

    def test_arch_equivalence_ignores_pc(self):
        """≈ compares memories and register files only (Thm 3.2)."""
        assert self._config().with_(pc=9).arch_equivalent(self._config())

    def test_config_hash_equal(self):
        assert hash(self._config()) == hash(self._config())
