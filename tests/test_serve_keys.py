"""Cache-key stability: the contract the disk store lives on.

A content address must not depend on anything process-local: not dict
order, not ``PYTHONHASHSEED``, not how the options object was built.
These tests pin (a) the canonical-options reduction, (b) digest
equality across *fresh interpreter processes with different hash
seeds*, and (c) the ``strip_volatile`` normaliser used by every
daemon-vs-direct differential gate.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.api import AnalysisOptions, Project
from repro.serve import (canonical_options, fingerprint_digest,
                         options_digest, store_key, strip_volatile)


# -- canonical options -------------------------------------------------------


def test_default_options_canonicalize_empty():
    assert canonical_options(AnalysisOptions()) == ()


def test_non_default_fields_appear_sorted():
    options = AnalysisOptions(shards=4, bound=7, strategy="bfs")
    canon = canonical_options(options)
    assert canon == (("bound", 7), ("shards", 4), ("strategy", "bfs"))


def test_field_set_back_to_default_is_omitted():
    default_bound = AnalysisOptions().bound
    options = AnalysisOptions(shards=2).with_(bound=default_bound)
    assert ("bound", default_bound) not in canonical_options(options)
    assert canonical_options(options) == (("shards", 2),)


def test_equivalent_constructions_share_a_key():
    a = AnalysisOptions(bound=9, shards=4)
    b = AnalysisOptions().with_(shards=4).with_(bound=9)
    assert canonical_options(a) == canonical_options(b)
    assert options_digest(a) == options_digest(b)


def test_different_options_differ():
    assert (options_digest(AnalysisOptions(bound=5))
            != options_digest(AnalysisOptions(bound=6)))


# -- target fingerprints -----------------------------------------------------


def test_same_target_same_digest():
    a = Project.from_litmus("kocher_01")
    b = Project.from_litmus("kocher_01")
    assert fingerprint_digest(a) == fingerprint_digest(b)


def test_different_targets_differ():
    a = Project.from_litmus("kocher_01")
    b = Project.from_litmus("kocher_02")
    assert fingerprint_digest(a) != fingerprint_digest(b)


def test_register_values_reach_the_digest():
    source = "entry: %rb = load [0x40, %ra]\n       halt"
    a = Project.from_asm(source, regs={"ra": 4})
    b = Project.from_asm(source, regs={"ra": 8})
    assert fingerprint_digest(a) != fingerprint_digest(b)


def test_store_key_accepts_options_or_canonical_tuple():
    project = Project.from_litmus("kocher_01")
    fp = fingerprint_digest(project)
    options = AnalysisOptions(shards=4)
    assert (store_key("pitchfork", fp, options)
            == store_key("pitchfork", fp, canonical_options(options)))
    assert store_key("pitchfork", fp, options) \
        != store_key("two-phase", fp, options)


# -- cross-process stability -------------------------------------------------

_CHILD = """
import json, sys
from repro.api import AnalysisOptions, Project
from repro.serve import fingerprint_digest, options_digest, store_key
project = Project.from_litmus("kocher_03")
options = AnalysisOptions(bound=11, shards=4, strategy="bfs")
fp = fingerprint_digest(project)
print(json.dumps({"fp": fp, "opt": options_digest(options),
                  "key": store_key("pitchfork", fp, options)}))
"""


def test_digests_stable_across_processes_and_hash_seeds():
    """The key of one (target, options) pair is identical in fresh
    interpreters started with different PYTHONHASHSEEDs — the property
    that lets a store outlive the daemon that filled it."""
    src = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                       "..", "src"))
    outputs = []
    for seed in ("0", "42", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src)
        proc = subprocess.run([sys.executable, "-c", _CHILD],
                              capture_output=True, text=True, check=True,
                              env=env)
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1] == outputs[2]


# -- the differential normaliser ---------------------------------------------


def test_strip_volatile_zeroes_timings_and_drops_cache():
    report = Project.from_litmus("kocher_01").run("pitchfork")
    noisy = report.to_dict()
    noisy["details"] = dict(noisy.get("details") or {},
                            cache={"source": "memory"})
    stripped = strip_volatile(noisy)
    assert stripped["wall_time"] == 0.0
    assert all(p["wall_time"] == 0.0 for p in stripped["phases"])
    assert "cache" not in stripped["details"]
    # Everything non-volatile survives untouched.
    assert stripped["status"] == noisy["status"]
    assert stripped["violations"] == noisy["violations"]


def test_strip_volatile_is_a_copy():
    report = Project.from_litmus("kocher_01").run("pitchfork")
    original = report.to_dict()
    before = json.dumps(original, sort_keys=True)
    strip_volatile(original)
    assert json.dumps(original, sort_keys=True) == before


def test_two_runs_identical_after_strip():
    project = Project.from_litmus("kocher_02")
    a = strip_volatile(project.run("pitchfork").to_dict())
    b = strip_volatile(project.run("pitchfork").to_dict())
    assert a == b
