"""Strategy × shard equivalence: the PR's strict bar.

Every search strategy and every shard count must report the identical
violation set as the seed DFS explorer — on the full litmus registry
(every registered case at its ground-truth knobs) and on randomized
programs.  Sharding additionally preserves the DFS path *order* byte
for byte (the merge concatenates subtree results in DFS slot order),
and ``stop_at_first`` short-circuits identically.

One process pool is shared across the whole module so the sharded runs
don't pay worker start-up per case.
"""

import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.machine import Machine
from repro.engine import available_strategies
from repro.litmus import all_cases
from repro.pitchfork import (ExplorationOptions, Explorer, ShardedExplorer,
                             violation_set)
from repro.verify.generators import random_config, random_program

STRATEGIES = available_strategies()


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolExecutor(max_workers=4) as executor:
        yield executor


def _case_options(case, **kw):
    kw.setdefault("strategy", "dfs")
    kw.setdefault("bound", case.min_bound)
    kw.setdefault("fwd_hazards", case.needs_fwd_hazards)
    kw.setdefault("explore_aliasing", case.needs_aliasing)
    kw.setdefault("jmpi_targets", case.jmpi_targets)
    kw.setdefault("rsb_targets", case.rsb_targets)
    return ExplorationOptions(**kw)


def _violation_set(result):
    return violation_set(result.violations)


def _run(case, options, shards=1, pool=None, stop_at_first=False):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    if shards == 1:
        explorer = Explorer(machine, options)
    else:
        explorer = ShardedExplorer(machine, options, shards=shards,
                                   pool=pool)
    return explorer.explore(case.make_config(), stop_at_first=stop_at_first)


@pytest.fixture(scope="module")
def dfs_reference():
    """Seed-DFS violation sets for every registered litmus case."""
    out = {}
    for case in all_cases():
        out[case.name] = _violation_set(_run(case, _case_options(case)))
    return out


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("shards", (1, 4))
def test_litmus_registry_equivalence(strategy, shards, pool, dfs_reference):
    mismatches = []
    for case in all_cases():
        options = _case_options(case, strategy=strategy, seed=5)
        result = _run(case, options, shards=shards, pool=pool)
        if _violation_set(result) != dfs_reference[case.name]:
            mismatches.append(case.name)
    assert not mismatches, (
        f"strategy={strategy} shards={shards} diverged from seed DFS "
        f"on: {mismatches}")


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("shards", (1, 4))
def test_random_programs_equivalence(strategy, shards, pool):
    for seed in range(6):
        rng = random.Random(seed)
        program = random_program(rng, length=rng.randrange(8, 14))
        config = random_config(rng)
        base = ExplorationOptions(bound=8)
        reference = _violation_set(
            _run_program(program, config, base))
        options = ExplorationOptions(bound=8, strategy=strategy, seed=seed)
        result = _run_program(program, config, options, shards=shards,
                              pool=pool)
        assert _violation_set(result) == reference, f"program seed {seed}"


def _run_program(program, config, options, shards=1, pool=None):
    machine = Machine(program)
    if shards == 1:
        explorer = Explorer(machine, options)
    else:
        explorer = ShardedExplorer(machine, options, shards=shards,
                                   pool=pool)
    return explorer.explore(config, stop_at_first=False)


class TestShardedDFSByteIdentical:
    """shards=4 with the default DFS strategy is not merely
    set-equivalent: the merged path list reproduces the single-process
    enumeration order exactly, with and without stop_at_first."""

    CASES = ("kocher_05", "kocher_13", "v1_fig1")

    @pytest.mark.parametrize("name", CASES)
    @pytest.mark.parametrize("stop", (False, True))
    def test_paths_identical(self, name, stop, pool):
        case = [c for c in all_cases() if c.name == name][0]
        options = _case_options(case)
        serial = _run(case, options, stop_at_first=stop)
        sharded = _run(case, options, shards=4, pool=pool,
                       stop_at_first=stop)
        assert [p.schedule for p in serial.paths] == \
            [p.schedule for p in sharded.paths]
        assert _violation_set(serial) == _violation_set(sharded)
        assert serial.paths_explored == sharded.paths_explored


class TestSeedDeterminism:
    def test_same_seed_reproduces_path_order_sharded(self, pool):
        case = [c for c in all_cases() if c.name == "kocher_05"][0]
        options = _case_options(case, strategy="random", seed=42)
        a = _run(case, options, shards=4, pool=pool)
        b = _run(case, options, shards=4, pool=pool)
        assert [p.schedule for p in a.paths] == [p.schedule for p in b.paths]
        assert _violation_set(a) == _violation_set(b)

    def test_api_seed_threading(self):
        """--seed reaches the explorer through AnalysisOptions."""
        from repro.api import Project
        a = Project.from_litmus("kocher_05").run(
            "pitchfork", strategy="random", seed=9)
        b = Project.from_litmus("kocher_05").run(
            "pitchfork", strategy="random", seed=9)
        assert a.details["seed"] == 9
        assert a.violations == b.violations


class TestShardStatsSurface:
    def test_report_carries_per_shard_stats(self, pool):
        case = [c for c in all_cases() if c.name == "kocher_05"][0]
        options = _case_options(case)
        result = _run(case, options, shards=4, pool=pool)
        assert result.shards, "sharded run should report per-shard stats"
        assert sum(s.paths_explored for s in result.shards) <= \
            result.paths_explored
        assert all(s.index == i for i, s in enumerate(result.shards))

    def test_custom_evaluator_falls_back_to_serial(self):
        from repro.pitchfork import analyze
        from repro.core.isa import ConcreteEvaluator
        case = [c for c in all_cases() if c.name == "kocher_05"][0]
        report = analyze(case.program, case.make_config(),
                         bound=case.min_bound, shards=4,
                         evaluator=ConcreteEvaluator(),
                         stop_at_first=False)
        assert report.shards == ()   # serial path: no shard stats

    def test_sharded_run_then_forked_manager_batch(self):
        """A sharded exploration must leave no live executor behind: a
        lingering pool poisons processes forked afterwards (their
        inherited concurrent.futures atexit hook joins a phantom
        manager thread and hangs the child at exit, deadlocking the
        manager pool's shutdown).  This sequence hangs, not fails, on
        a regression — the CI job timeout is the net."""
        from repro.api import AnalysisManager, Project
        Project.from_litmus("kocher_05").run("pitchfork", shards=2)
        projects = [Project.from_litmus(n)
                    for n in ("kocher_01", "kocher_05", "v1_fig1")]
        reports = AnalysisManager("pitchfork", workers=2).run(
            projects, shards=2)
        assert [not r.ok for r in reports] == [True, True, True]

    def test_sharded_explorer_rejects_custom_evaluator(self):
        """Workers rebuild the machine with the default evaluator, so a
        custom one must be rejected loudly, not silently swapped."""
        from repro.pitchfork.symex import SymbolicEvaluator
        case = [c for c in all_cases() if c.name == "kocher_01"][0]
        machine = Machine(case.program, evaluator=SymbolicEvaluator())
        with pytest.raises(ValueError, match="concrete evaluator"):
            ShardedExplorer(machine, ExplorationOptions(bound=8), shards=2)


class TestGlobalPathBudget:
    """max_paths is a *global* cap: a sharded run must not report more
    paths (or a different truncation verdict) than the serial explorer
    when the cap binds — the merge trims to the remaining quota."""

    @pytest.mark.parametrize("cap", (1, 5, 50))
    def test_binding_cap_matches_serial_exactly(self, cap, pool):
        case = [c for c in all_cases() if c.name == "kocher_05"][0]
        options = _case_options(case, bound=30, max_paths=cap)
        serial = _run(case, options)
        sharded = _run(case, options, shards=4, pool=pool)
        assert sharded.paths_explored == serial.paths_explored
        assert sharded.truncated == serial.truncated
        assert [p.schedule for p in serial.paths] == \
            [p.schedule for p in sharded.paths]
        assert _violation_set(serial) == _violation_set(sharded)

    def test_nonbinding_cap_not_marked_truncated(self, pool):
        case = [c for c in all_cases() if c.name == "kocher_05"][0]
        options = _case_options(case, max_paths=10_000)
        sharded = _run(case, options, shards=4, pool=pool)
        assert not sharded.truncated

    @pytest.mark.parametrize("cap", (1, 5, 50))
    def test_binding_cap_exact_without_path_records(self, cap, pool):
        """The detector path (keep_paths=False) trims via the workers'
        per-path metadata — counters and violations must still match
        the serial run exactly."""
        case = [c for c in all_cases() if c.name == "kocher_05"][0]
        options = _case_options(case, bound=30, max_paths=cap)
        machine = Machine(case.program, rsb_policy=case.rsb_policy)
        serial = Explorer(machine, options).explore(
            case.make_config(), stop_at_first=False)
        sharded = ShardedExplorer(machine, options, shards=4, pool=pool,
                                  keep_paths=False).explore(
                                      case.make_config(),
                                      stop_at_first=False)
        assert sharded.paths_explored == serial.paths_explored
        assert sharded.truncated == serial.truncated
        assert sharded.states_stepped == serial.states_stepped
        assert sharded.exhausted_paths == serial.exhausted_paths
        assert _violation_set(sharded) == _violation_set(serial)
