"""Unit tests for labelled memory and regions."""

import pytest

from repro.core.lattice import PUBLIC, SECRET
from repro.core.memory import Memory, Region, layout
from repro.core.values import Value, public, secret


class TestMemory:
    def test_unmapped_reads_public_zero(self):
        assert Memory().read(0x1234) == Value(0, PUBLIC)

    def test_write_read_roundtrip(self):
        mem = Memory().write(0x40, secret(7))
        assert mem.read(0x40) == secret(7)

    def test_write_is_functional(self):
        mem = Memory()
        mem2 = mem.write(0x40, public(1))
        assert not mem.is_mapped(0x40) and mem2.is_mapped(0x40)

    def test_write_all(self):
        mem = Memory().write_all([(0x40, public(1)), (0x41, public(2))])
        assert mem.read(0x41).val == 2

    def test_overwrite_changes_label(self):
        mem = Memory().write(0x40, secret(7)).write(0x40, public(0))
        assert mem.read(0x40).is_public()


class TestRegions:
    def test_region_contains(self):
        r = Region("a", 0x40, 4, PUBLIC)
        assert 0x40 in r and 0x43 in r and 0x44 not in r

    def test_region_addr(self):
        assert Region("a", 0x40, 4).addr(2) == 0x42

    def test_with_region_initialises(self):
        mem = Memory().with_region(Region("k", 0x40, 2, SECRET), [7, 8])
        assert mem.read(0x41) == Value(8, SECRET)

    def test_with_region_defaults_zero(self):
        mem = Memory().with_region(Region("k", 0x40, 2, SECRET), None)
        assert mem.read(0x40) == Value(0, SECRET)

    def test_region_lookup(self):
        mem = Memory().with_region(Region("k", 0x40, 2, SECRET), None)
        assert mem.region("k").base == 0x40
        with pytest.raises(KeyError):
            mem.region("missing")

    def test_region_of(self):
        mem = Memory().with_region(Region("k", 0x40, 2, SECRET), None)
        assert mem.region_of(0x41).name == "k"
        assert mem.region_of(0x99) is None

    def test_layout_contiguous_from_0x40(self):
        mem = layout(("A", 4, PUBLIC, [1, 2, 3, 4]),
                     ("K", 4, SECRET, [9, 9, 9, 9]))
        assert mem.region("A").base == 0x40
        assert mem.region("K").base == 0x44
        assert mem.read(0x44) == Value(9, SECRET)


class TestLowEquivalence:
    def test_equal_memories_low_equivalent(self):
        a = layout(("A", 2, PUBLIC, [1, 2]), ("K", 2, SECRET, [7, 8]))
        assert a.low_equivalent(a)

    def test_secret_differences_allowed(self):
        a = layout(("A", 2, PUBLIC, [1, 2]), ("K", 2, SECRET, [7, 8]))
        b = layout(("A", 2, PUBLIC, [1, 2]), ("K", 2, SECRET, [0, 1]))
        assert a.low_equivalent(b)

    def test_public_differences_rejected(self):
        a = layout(("A", 2, PUBLIC, [1, 2]))
        b = layout(("A", 2, PUBLIC, [1, 3]))
        assert not a.low_equivalent(b)

    def test_label_mismatch_rejected(self):
        a = Memory().write(0x40, public(1))
        b = Memory().write(0x40, secret(1))
        assert not a.low_equivalent(b)
