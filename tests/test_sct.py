"""Tests for the SCT checker (Definition 3.1)."""

import pytest

from repro.asm import assemble
from repro.core import (Config, Machine, Memory, RETIRE, check_pair,
                        check_sct, execute, fetch, secret_variations)
from repro.core.lattice import PUBLIC, SECRET
from repro.core.memory import layout
from repro.core.values import Value, secret
from repro.pitchfork import enumerate_schedules


def _m(src):
    return Machine(assemble(src))


def _fig1_machine_and_configs():
    m = _m("""
        br gt, 4, %ra -> 2, 4
        %rb = load [0x40, %ra]
        %rc = load [0x44, %rb]
        halt
    """)
    def cfg(key):
        mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                     ("B", 4, PUBLIC, None),
                     ("Key", 4, SECRET, key))
        return Config.initial({"ra": 9}, mem, pc=1)
    return m, cfg


class TestCheckPair:
    def test_spectre_v1_distinguishes_keys(self):
        m, cfg = _fig1_machine_and_configs()
        schedule = (fetch(True), fetch(), fetch(), execute(2), execute(3))
        cex = check_pair(m, cfg([1, 2, 3, 4]), cfg([9, 8, 7, 6]), schedule)
        assert cex is not None
        assert cex.reason == "observation traces differ"
        assert cex.first_divergence() == 1  # the second read differs

    def test_same_secret_indistinguishable(self):
        m, cfg = _fig1_machine_and_configs()
        schedule = (fetch(True), fetch(), fetch(), execute(2), execute(3))
        assert check_pair(m, cfg([1, 2, 3, 4]), cfg([1, 2, 3, 4]),
                          schedule) is None

    def test_sequential_schedule_indistinguishable(self):
        """Under the in-order schedule the program is CT."""
        m, cfg = _fig1_machine_and_configs()
        schedule = (fetch(False), execute(1), RETIRE)
        assert check_pair(m, cfg([1, 2, 3, 4]), cfg([9, 8, 7, 6]),
                          schedule) is None

    def test_rejects_non_low_equivalent_pair(self):
        m, cfg = _fig1_machine_and_configs()
        other = cfg([1, 2, 3, 4]).with_(pc=2)
        with pytest.raises(ValueError):
            check_pair(m, cfg([1, 2, 3, 4]), other, ())


class TestSecretVariations:
    def test_variations_are_low_equivalent(self):
        _m_, cfg = _fig1_machine_and_configs()
        base = cfg([1, 2, 3, 4])
        for variant in secret_variations(base):
            assert base.low_equivalent(variant)

    def test_no_secrets_yields_identity(self):
        c = Config.initial({"ra": 1}, Memory(), 1)
        assert secret_variations(c) == [c]

    def test_secret_registers_vary(self):
        c = Config.initial({"rk": secret(0)}, Memory(), 1)
        variants = secret_variations(c)
        payloads = {v.reg("rk").val for v in variants}
        assert len(payloads) > 1


class TestCheckSCT:
    def test_fig1_fails_sct(self):
        m, cfg = _fig1_machine_and_configs()
        base = cfg([1, 2, 3, 4])
        schedules = enumerate_schedules(m, base, bound=8, fwd_hazards=False)
        result = check_sct(m, base, schedules)
        assert not result.ok
        assert result.counterexample is not None

    def test_fenced_fig1_satisfies_sct(self):
        m = _m("""
            br gt, 4, %ra -> 2, 5
            fence
            %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
            halt
        """)
        def cfg(key):
            mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                         ("B", 4, PUBLIC, None),
                         ("Key", 4, SECRET, key))
            return Config.initial({"ra": 9}, mem, pc=1)
        base = cfg([1, 2, 3, 4])
        schedules = enumerate_schedules(m, base, bound=8, fwd_hazards=False)
        assert check_sct(m, base, schedules).ok

    def test_branchless_program_satisfies_sct(self):
        m = _m("""
            %rc = op ltu, %rk, 4
            %rx = op sel, %rc, 1, 2
            store %rx, [0x40]
            halt
        """)
        base = Config.initial({"rk": secret(1)}, Memory(), 1)
        schedules = enumerate_schedules(m, base, bound=8)
        result = check_sct(m, base, schedules)
        assert result.ok and result.pairs_checked > 0
