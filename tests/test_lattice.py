"""Unit tests for the security label lattice."""

import pytest

from repro.core.lattice import (Label, Lattice, PUBLIC, SECRET, get_lattice,
                                join_all)


class TestTwoPoint:
    def test_public_flows_to_secret(self):
        assert PUBLIC.flows_to(SECRET)

    def test_secret_does_not_flow_to_public(self):
        assert not SECRET.flows_to(PUBLIC)

    def test_reflexive(self):
        assert PUBLIC.flows_to(PUBLIC)
        assert SECRET.flows_to(SECRET)

    def test_join_public_public(self):
        assert PUBLIC.join(PUBLIC) == PUBLIC

    def test_join_public_secret(self):
        assert PUBLIC.join(SECRET) == SECRET
        assert SECRET.join(PUBLIC) == SECRET

    def test_join_secret_secret(self):
        assert SECRET.join(SECRET) == SECRET

    def test_or_operator(self):
        assert (PUBLIC | SECRET) == SECRET

    def test_is_public(self):
        assert PUBLIC.is_public()
        assert not SECRET.is_public()

    def test_join_all_empty_defaults_public(self):
        assert join_all([]) == PUBLIC

    def test_join_all_mixed(self):
        assert join_all([PUBLIC, SECRET, PUBLIC]) == SECRET

    def test_labels_hashable_and_interned(self):
        assert {PUBLIC, SECRET, Label("public")} == {PUBLIC, SECRET}

    def test_get_lattice_roundtrip(self):
        assert get_lattice("two-point").bottom == PUBLIC
        assert get_lattice("two-point").top == SECRET


class TestCustomLattice:
    @pytest.fixture()
    def diamond(self):
        return Lattice("diamond-test",
                       [("lo", "a"), ("lo", "b"), ("a", "hi"), ("b", "hi")],
                       bottom="lo", top="hi")

    def test_incomparable_join_is_top(self, diamond):
        a, b = diamond.label("a"), diamond.label("b")
        assert diamond.join(a, b) == diamond.label("hi")

    def test_flows_through_chain(self, diamond):
        assert diamond.flows_to(diamond.label("lo"), diamond.label("hi"))

    def test_not_flows_across(self, diamond):
        assert not diamond.flows_to(diamond.label("a"), diamond.label("b"))

    def test_join_with_bottom_is_identity(self, diamond):
        a = diamond.label("a")
        assert diamond.join(diamond.bottom, a) == a

    def test_labels_enumerated(self, diamond):
        assert len(diamond.labels()) == 4
