"""End-to-end daemon tests: the serve stack's strict bar.

A report computed by the daemon — over the socket, through the warm
pool, with or without sharding — must be **byte-identical** (modulo
wall-clock fields, via ``strip_volatile``) to the report the in-process
``Project.run`` produces for the same target and options.  On top of
that: warm resubmissions must come from the memory/store tiers without
touching the pool, a daemon restarted over the same store directory
must answer from disk without ever *starting* its pool, corrupt store
objects must be recomputed (not crash the daemon), and graceful
shutdown must drain in-flight jobs.

One module-scoped daemon serves most tests (worker start-up is paid
once); lifecycle tests that need their own daemon build one per test.
"""

import json
import os
import threading

import pytest

from repro.api import Project
from repro.api.cli import main
from repro.engine import available_strategies
from repro.serve import (ResultStore, ServeClient, ServeError,
                         start_in_thread, strip_volatile)

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning")


def _direct(name, **overrides):
    """The in-process reference report for a litmus target."""
    report = Project.from_litmus(name).run("pitchfork", **overrides)
    return strip_volatile(report.to_dict())


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    handle = start_in_thread(socket_path=str(tmp / "daemon.sock"),
                             store=str(tmp / "store"), workers=2)
    yield handle
    handle.stop()


@pytest.fixture()
def client(daemon):
    with ServeClient(socket_path=daemon.server.socket_path) as c:
        yield c


# -- round trips -------------------------------------------------------------


def test_ping(client):
    pong = client.ping()
    assert pong["pong"] and pong["pid"] == os.getpid()
    assert pong["draining"] is False


def test_daemon_report_identical_to_direct(client):
    report, cache = client.submit_and_wait(
        {"kind": "name", "name": "kocher_01"})
    assert strip_volatile(report.to_dict()) == _direct("kocher_01")
    assert cache["source"] in ("computed", "memory", "store")


def test_warm_resubmit_skips_the_pool(daemon, client):
    client.submit_and_wait({"kind": "name", "name": "kocher_02"})
    before = daemon.server.pool.stats()["tasks_submitted"]
    report, cache = client.submit_and_wait(
        {"kind": "name", "name": "kocher_02"})
    assert cache["source"] == "memory"
    assert daemon.server.pool.stats()["tasks_submitted"] == before
    assert strip_volatile(report.to_dict()) == _direct("kocher_02")


def test_asm_target_shipped_by_value(client):
    source = """
    check:  br gt, 4, %ra -> body, done
    body:   %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
    done:   halt
"""
    report, _ = client.submit_and_wait(
        {"kind": "asm", "source": source, "regs": {"ra": 9},
         "name": "fig1.s"})
    direct = Project.from_asm(source, regs={"ra": 9},
                              name="fig1.s").run("pitchfork")
    assert strip_volatile(report.to_dict()) \
        == strip_volatile(direct.to_dict())


def test_option_overrides_reach_the_analysis(client):
    report, _ = client.submit_and_wait(
        {"kind": "name", "name": "kocher_01"}, options={"bound": 7})
    assert strip_volatile(report.to_dict()) == _direct("kocher_01", bound=7)


def test_unknown_target_is_a_clean_error(client):
    with pytest.raises(ServeError) as err:
        client.submit({"kind": "name", "name": "no_such_case"})
    assert "no_such_case" in str(err.value)


def test_unknown_job_is_a_clean_error(client):
    with pytest.raises(ServeError):
        client.status("job-999999")


def test_sps_analysis_served_identically(client):
    """The speculation-passing backend is a first-class daemon analysis
    (registry pickup, same byte-identity bar as pitchfork)."""
    report, _ = client.submit_and_wait(
        {"kind": "name", "name": "kocher_01"}, analysis="sps")
    direct = Project.from_litmus("kocher_01").run("sps")
    assert strip_volatile(report.to_dict()) \
        == strip_volatile(direct.to_dict())
    assert report.analysis == "sps"
    assert not report.secure


def test_failed_job_carries_type_and_traceback(daemon, client, monkeypatch):
    """A worker failure reaches the client as a typed, debuggable
    payload — class name and full traceback on the job state and the
    failure event — never a bare one-liner."""
    import time as _time

    def boom(*_args, **_kwargs):
        raise RuntimeError("injected worker failure")

    monkeypatch.setattr(daemon.server.pool, "submit", boom)
    job = client.submit({"kind": "name", "name": "kocher_12"})
    deadline = _time.monotonic() + 10.0
    while True:
        status = client.status(job["job"])
        if status["state"] not in ("queued", "running"):
            break
        assert _time.monotonic() < deadline, "job never settled"
        _time.sleep(0.02)
    assert status["state"] == "failed"
    assert status["error"] == "RuntimeError: injected worker failure"
    assert status["error_type"] == "RuntimeError"
    assert "Traceback (most recent call last)" in status["error_traceback"]
    assert "injected worker failure" in status["error_traceback"]
    failure_events = [e for e in status["events"]
                      if e.get("state") == "failed"]
    assert failure_events
    assert failure_events[-1]["error_type"] == "RuntimeError"
    assert "Traceback" in failure_events[-1]["error_traceback"]


# -- concurrency -------------------------------------------------------------


def test_concurrent_clients_all_identical(daemon):
    """Several clients hammering distinct targets at once each get the
    exact in-process report back."""
    names = ["kocher_03", "kocher_04", "kocher_06", "v1_fig8_fence"]
    results = {}
    errors = []

    def worker(name):
        try:
            with ServeClient(
                    socket_path=daemon.server.socket_path) as c:
                report, _ = c.submit_and_wait(
                    {"kind": "name", "name": name})
                results[name] = strip_volatile(report.to_dict())
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append((name, exc))

    threads = [threading.Thread(target=worker, args=(n,)) for n in names]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors
    for name in names:
        assert results[name] == _direct(name), name


def test_identical_submissions_coalesce_or_hit(daemon, client):
    """Two submits of one key never compute twice."""
    spec = {"kind": "name", "name": "kocher_08"}
    computed_before = daemon.server.jobs_computed
    a = client.submit(spec)
    b = client.submit(spec)
    ra, _ = client.wait(a["job"])
    rb, _ = client.wait(b["job"])
    assert strip_volatile(ra.to_dict()) == strip_volatile(rb.to_dict())
    assert daemon.server.jobs_computed <= computed_before + 1


# -- strategy × shard differential -------------------------------------------


@pytest.mark.parametrize("strategy", available_strategies())
@pytest.mark.parametrize("shards", [1, 4])
def test_strategy_shard_differential(client, strategy, shards):
    """Every search strategy, sharded and serial, through the daemon:
    identical to the in-process run under the same knobs."""
    overrides = {"strategy": strategy, "shards": shards}
    if strategy == "random":
        overrides["seed"] = 11
    report, _ = client.submit_and_wait(
        {"kind": "name", "name": "kocher_05"}, options=overrides)
    assert strip_volatile(report.to_dict()) \
        == _direct("kocher_05", **overrides)


def test_sharded_jobs_stream_progress(client):
    """A shards>1 run publishes split/shard events with partial
    findings while it runs (kocher_05 splits into real subtree jobs)."""
    events = []
    report, _ = client.submit_and_wait(
        {"kind": "name", "name": "kocher_05"},
        options={"shards": 4, "max_paths": 10_000},
        on_event=events.append)
    kinds = [e["kind"] for e in events]
    assert "split" in kinds and "state" in kinds
    split = next(e for e in events if e["kind"] == "split")
    assert split["jobs"] > 1
    shard_events = [e for e in events if e["kind"] == "shard"]
    assert shard_events, "expected per-shard progress events"
    assert shard_events[-1]["cumulative_violations"] \
        == len(report.violations)
    assert all(events[i]["seq"] < events[i + 1]["seq"]
               for i in range(len(events) - 1))


def test_tcp_transport(tmp_path):
    """The daemon speaks the same protocol over TCP (port 0 = ephemeral,
    bound port discovered at start)."""
    handle = start_in_thread(host="127.0.0.1", port=0, workers=1,
                             store=str(tmp_path / "store"))
    try:
        port = handle.server.port
        assert port > 0
        with ServeClient(host="127.0.0.1", port=port) as c:
            assert c.ping()["pong"]
            report, _ = c.submit_and_wait(
                {"kind": "name", "name": "kocher_01"})
            assert strip_volatile(report.to_dict()) == _direct("kocher_01")
    finally:
        handle.stop()


def test_preset_spec_resolves_like_the_cli(client):
    from repro.api import AnalysisOptions
    report, _ = client.submit_and_wait(
        {"kind": "name", "name": "kocher_01", "preset": "paper"})
    direct = Project.from_litmus(
        "kocher_01", options=AnalysisOptions.paper()).run("pitchfork")
    assert strip_volatile(report.to_dict()) \
        == strip_volatile(direct.to_dict())


# -- store tier across restarts ----------------------------------------------


def test_restarted_daemon_serves_from_disk_without_a_pool(tmp_path):
    sock, store = str(tmp_path / "a.sock"), str(tmp_path / "store")
    with start_in_thread(socket_path=sock, store=store, workers=1):
        with ServeClient(socket_path=sock) as c:
            first, _ = c.submit_and_wait(
                {"kind": "name", "name": "kocher_09"})

    # Same store, fresh daemon: the resubmission is answered from disk
    # and the warm pool is never even started.
    with start_in_thread(socket_path=sock, store=store,
                         workers=1) as handle:
        with ServeClient(socket_path=sock) as c:
            again, cache = c.submit_and_wait(
                {"kind": "name", "name": "kocher_09"})
        assert cache["source"] == "store"
        assert handle.server.pool.started is False
    assert again.to_dict() == first.to_dict()


def test_corrupt_store_object_recomputed_not_crashed(tmp_path):
    sock, store_dir = str(tmp_path / "b.sock"), str(tmp_path / "store")
    with start_in_thread(socket_path=sock, store=store_dir, workers=1):
        with ServeClient(socket_path=sock) as c:
            first, _ = c.submit_and_wait(
                {"kind": "name", "name": "kocher_11"})

    store = ResultStore(store_dir)
    key = store.keys()[0]
    with open(store.path_for(key), "w", encoding="utf-8") as fh:
        fh.write('{"store_version": 1, "key')       # torn write

    with start_in_thread(socket_path=sock, store=store_dir, workers=1):
        with ServeClient(socket_path=sock) as c:
            again, cache = c.submit_and_wait(
                {"kind": "name", "name": "kocher_11"})
        assert cache["source"] == "computed"
    assert strip_volatile(again.to_dict()) \
        == strip_volatile(first.to_dict())


# -- lifecycle ---------------------------------------------------------------


def test_graceful_shutdown_drains_inflight_jobs(tmp_path):
    """Jobs in flight at shutdown complete (and persist) before the
    daemon exits; new submissions are refused while draining."""
    sock = str(tmp_path / "c.sock")
    store_dir = str(tmp_path / "store")
    handle = start_in_thread(socket_path=sock, store=store_dir, workers=1)
    with ServeClient(socket_path=sock) as c:
        jobs = [c.submit({"kind": "name", "name": name})["job"]
                for name in ("kocher_12", "kocher_13", "kocher_14")]
        c.shutdown(drain=True)
        with pytest.raises((ServeError, ConnectionError)):
            c.submit({"kind": "name", "name": "kocher_01"})
    handle.thread.join(timeout=120)
    assert not handle.thread.is_alive()
    server = handle.server
    assert all(server._jobs[j].state == "done" for j in jobs)
    # ...and the drained results made it to disk.
    assert len(ResultStore(store_dir)) == len(jobs)


def test_stats_counters(daemon, client):
    stats = client.stats()
    assert sum(stats["jobs"].values()) >= 1
    assert stats["pool"]["started"] is True
    assert stats["store"]["entries"] >= 1
    assert stats["cache"]["computed"] >= 1


def test_results_listing(daemon, client):
    rows = client.results()["entries"]
    assert rows and all("key" in r and "target" in r for r in rows)


# -- the CLI against a live daemon -------------------------------------------


def test_cli_submit_exit_codes_and_json(daemon, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_SOCKET", daemon.server.socket_path)
    assert main(["submit", "kocher_01", "--check"]) == 1   # violation
    assert main(["submit", "v1_fig8_fence", "--check"]) == 0
    assert main(["submit", "no_such_case"]) == 3
    capsys.readouterr()
    assert main(["submit", "kocher_01", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["details"]["cache"]["source"] in ("memory", "store")
    assert strip_volatile(payload) == _direct("kocher_01")


def test_cli_results_against_store(daemon, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_SOCKET", daemon.server.socket_path)
    assert main(["results"]) == 0
    out = capsys.readouterr().out
    assert "kocher" in out
    assert main(["results", "--store", daemon.server.store.root,
                 "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)["entries"]
    assert rows


def test_cli_serve_stats(daemon, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_SOCKET", daemon.server.socket_path)
    assert main(["serve", "--stats"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["pool"]["workers"] >= 1


def test_cli_submit_asm_file(daemon, tmp_path, capsys, monkeypatch):
    """File targets are read client-side and shipped by value."""
    monkeypatch.setenv("REPRO_SERVE_SOCKET", daemon.server.socket_path)
    source = """
    check:  br gt, 4, %ra -> body, done
    body:   %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
    done:   halt
"""
    asm = tmp_path / "victim.s"
    asm.write_text(source)
    # No memory layout → no secret to leak: secure, exit 0.
    assert main(["submit", str(asm), "--reg", "ra=9", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    direct = Project.from_asm(source, regs={"ra": 9},
                              name="victim.s").run("pitchfork")
    assert strip_volatile(payload) == strip_volatile(direct.to_dict())


def test_cli_unreachable_daemon_exits_3(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_SOCKET",
                       str(tmp_path / "nobody-home.sock"))
    assert main(["submit", "kocher_01"]) == 3
    assert "repro serve" in capsys.readouterr().err
