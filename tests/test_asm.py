"""Unit tests for the assembly front end (parser, assembler, builder,
disassembler)."""

import pytest

from repro.asm import (ProgramBuilder, assemble, disassemble,
                       format_instruction, parse)
from repro.core.errors import AssemblerError
from repro.core.isa import (Br, Call, Fence, Jmpi, Load, Op, Ret, Store)
from repro.core.lattice import SECRET
from repro.core.values import Reg, Value


class TestParser:
    def test_comments_and_blank_lines(self):
        p = parse("; hello\n# world\n\nret\n")
        assert len(p.instrs) == 1

    def test_labels(self):
        p = parse("a: b: ret")
        assert p.labels == {"a": 0, "b": 0}

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            parse("a: ret\na: ret")

    def test_entry_directive(self):
        p = parse(".entry main\nmain: ret")
        assert p.entry == "main"

    def test_op_args(self):
        p = parse("%ra = op add, %rb, 3, 0x10")
        (i,) = p.instrs
        assert i.kind == "op" and i.opcode == "add"
        assert i.args == (Reg("rb"), Value(3), Value(0x10))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AssemblerError):
            parse("%ra = op bogus, 1")

    def test_secret_immediate(self):
        p = parse("store secret(7), [0x40]")
        assert p.instrs[0].src == Value(7, SECRET)

    def test_negative_int(self):
        p = parse("%ra = op add, %ra, -1")
        assert p.instrs[0].args[1].val == -1

    def test_load_brackets(self):
        p = parse("%ra = load [0x40, %rb]")
        assert p.instrs[0].args == (Value(0x40), Reg("rb"))

    def test_junk_after_brackets_rejected(self):
        with pytest.raises(AssemblerError):
            parse("%ra = load [0x40] junk")

    def test_br_targets(self):
        p = parse("br lt, %ra, 4 -> yes, 9")
        assert p.instrs[0].targets == ("yes", 9)

    def test_br_needs_two_targets(self):
        with pytest.raises(AssemblerError):
            parse("br lt, %ra, 4 -> only_one")

    def test_bad_operand_rejected(self):
        with pytest.raises(AssemblerError):
            parse("%ra = op add, @wat")

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblerError):
            parse("; nothing here")


class TestAssembler:
    def test_sequential_layout_from_base(self):
        p = assemble("ret\nret", base=5)
        assert sorted(p.points()) == [5, 6]

    def test_fallthrough_next(self):
        p = assemble("%ra = op mov, 1\nret")
        assert p[1].next == 2

    def test_label_resolution(self):
        p = assemble("br eq, 0, 0 -> end, end\nend: halt")
        assert p[1].n_true == 2

    def test_halt_reserves_unmapped_point(self):
        p = assemble("%ra = op mov, 1\nhalt")
        assert p.get(2) is None

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("br eq, 0, 0 -> nowhere, nowhere")

    def test_call_default_return(self):
        p = assemble("call f\nhalt\nf: ret")
        assert p[1] == Call(3, 2)

    def test_call_explicit_return(self):
        p = assemble("call f, 9\nhalt\nf: ret")
        assert p[1].ret == 9

    def test_fence_self(self):
        p = assemble("fence self\nhalt")
        assert p[1] == Fence(1)

    def test_entry(self):
        p = assemble(".entry main\nf: ret\nmain: halt")
        assert p.entry == 2


class TestBuilder:
    def test_roundtrip_equivalent_to_assembler(self):
        src = assemble("""
            br gt, 4, %ra -> body, done
            body: %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
            done: halt
        """)
        b = ProgramBuilder()
        b.br("gt", [4, "ra"], "body", "done")
        b.label("body").load("rb", [0x40, "ra"])
        b.load("rc", [0x44, "rb"])
        b.label("done").halt()
        built = b.build()
        assert dict(built.items()) == dict(src.items())

    def test_here_tracks_next_point(self):
        b = ProgramBuilder(base=10)
        assert b.here() == 10
        b.mov("ra", 1)
        assert b.here() == 11

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder().label("x")
        with pytest.raises(AssemblerError):
            b.label("x")

    def test_entry_by_label(self):
        b = ProgramBuilder()
        b.mov("ra", 1)
        b.label("main").mov("rb", 2)
        assert b.build(entry="main").entry == 2

    def test_store_with_immediate(self):
        b = ProgramBuilder().store(5, [0x40])
        p = b.build()
        assert p[1].src == Value(5)


class TestDisasm:
    def test_roundtrip_text(self):
        p = assemble("""
            check: br gt, 4, %ra -> body, done
            body: %rb = load [0x40, %ra]
            store %rb, [0x50]
            jmpi [%rb]
            call f, 6
            done: fence
            f: ret
        """)
        text = disassemble(p)
        assert "br gt, 4, %ra -> body, done" in text
        assert "%rb = load [64, %ra]" in text
        assert "jmpi [%rb]" in text
        assert "ret" in text

    def test_format_secret_immediate(self):
        p = assemble("store secret(7), [0x40]")
        assert "secret(7)" in format_instruction(p, 1)

    def test_window_around_point(self):
        p = assemble("\n".join("%ra = op mov, 1" for _ in range(10)) + "\nhalt")
        text = disassemble(p, around=5, context=1)
        assert "-->" in text
        assert text.count("\n") == 2  # points 4, 5, 6
