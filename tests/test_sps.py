"""Tests for the speculation-passing second opinion (repro.sps): the
transformation table, the sequential product interpreter, the
differential harness, and the registered ``sps`` analysis with its
``--cross-check`` CLI surface."""

import json

import pytest

from repro.api import (AnalysisOptions, Project, Report, get_analysis,
                       main)
from repro.core import Config, Machine, Memory, PUBLIC, SECRET, Value, \
    layout, run_sequential, secret_observations
from repro.core.isa import Br, Call, Fence, Jmpi, Load, Op, Ret, Store
from repro.core.program import Program
from repro.core.values import Reg, operands
from repro.litmus import all_cases, find_case
from repro.sps import SpecSite, explore_sps, site_counts, speculation_sites
from repro.sps.diff import (DiffRecord, compare, minimize,
                            random_callret_config, random_callret_program,
                            sweep_random)

RA, RB = Reg("ra"), Reg("rb")

CASES = all_cases()
IDS = [c.name for c in CASES]


def _zoo() -> Program:
    """One of every instruction kind, for table-shape tests."""
    return Program({
        1: Br("gt", operands(4, RA), 2, 3),
        2: Load(RB, operands(0x40, RA), 3),
        3: Store(Value(1), operands(0x40), 4),
        4: Jmpi(operands(RA)),
        5: Fence(6),
        6: Call(8, 7),
        7: Ret(),
        8: Op(RB, "add", operands(RA, 1), 7),
    }, entry=1)


class TestTransform:
    def test_branch_site_arms_are_both_sides(self):
        table = speculation_sites(_zoo())
        assert table[1] == (SpecSite(1, "mispredict", (2, 3)),)

    def test_load_bypass_gated_by_fwd_hazards(self):
        assert speculation_sites(_zoo())[2] == (SpecSite(2, "bypass"),)
        assert 2 not in speculation_sites(_zoo(), fwd_hazards=False)

    def test_load_alias_gated_by_extension(self):
        table = speculation_sites(_zoo(), explore_aliasing=True)
        assert tuple(s.kind for s in table[2]) == ("bypass", "alias")

    def test_jmpi_site_carries_trained_targets(self):
        table = speculation_sites(_zoo(), jmpi_targets=(7, 8))
        assert table[4] == (SpecSite(4, "mistrain", (7, 8)),)

    def test_ret_is_rsb_plus_return_address_load(self):
        table = speculation_sites(_zoo(), rsb_targets=(8,))
        assert tuple(s.kind for s in table[7]) == ("rsb", "bypass")
        assert table[7][0].arms == (8,)

    def test_non_speculating_instructions_have_no_sites(self):
        table = speculation_sites(_zoo(), explore_aliasing=True,
                                  jmpi_targets=(7,), rsb_targets=(8,))
        assert {3, 5, 6, 8}.isdisjoint(table)

    def test_site_counts_drop_zero_kinds(self):
        counts = site_counts(speculation_sites(_zoo()))
        assert counts == {"mispredict": 1, "mistrain": 1, "bypass": 2,
                          "rsb": 1}
        assert "alias" not in counts


class TestExploreSps:
    @pytest.mark.parametrize("case", CASES, ids=IDS)
    def test_ground_truth_matches_registry(self, case):
        result = explore_sps(
            case.program, case.config(), bound=case.min_bound,
            fwd_hazards=case.needs_fwd_hazards,
            explore_aliasing=case.needs_aliasing,
            jmpi_targets=case.jmpi_targets, rsb_targets=case.rsb_targets,
            rsb_policy=case.rsb_policy, max_paths=6000)
        should_flag = case.leaks_speculatively or case.leaks_sequentially
        assert (not result.secure) == should_flag

    def test_kocher_01_witness_is_secret_dependent(self):
        case = find_case("kocher_01")
        result = explore_sps(case.program, case.config(),
                             bound=case.min_bound)
        assert not result.secure
        assert secret_observations(
            [v.observation for v in result.violations])
        assert result.sites.get("mispredict")

    def test_stop_at_first_keeps_one_witness(self):
        case = find_case("kocher_01")
        result = explore_sps(case.program, case.config(),
                             bound=case.min_bound, stop_at_first=True)
        assert len(result.violations) == 1

    def test_fenced_case_is_secure_and_complete(self):
        case = find_case("v1_fig8_fence")
        result = explore_sps(case.program, case.config(),
                             bound=case.min_bound, stop_at_first=False)
        assert result.secure and result.complete

    def test_per_path_budget_surfaces_as_exhausted(self):
        # 1 <-> 2 architectural loop: the path never ends on its own,
        # so the per-path step budget must cut it and say so.
        prog = Program({
            1: Op(RA, "add", operands(RA, 1), 2),
            2: Op(RA, "add", operands(RA, 1), 1),
        }, entry=1)
        cfg = Config.initial({"ra": Value(0)}, Memory(), pc=1)
        result = explore_sps(prog, cfg, max_steps=50)
        assert result.exhausted_paths == 1
        assert not result.complete

    def test_max_paths_truncates(self):
        prog = Program({
            1: Br("gt", operands(4, RA), 2, 3),
            2: Op(RA, "add", operands(RA, 1), 3),
        }, entry=1)
        cfg = Config.initial({"ra": Value(0)}, Memory(), pc=1)
        result = explore_sps(prog, cfg, max_paths=1, stop_at_first=False)
        assert result.truncated and not result.complete

    def test_bad_knobs_are_rejected(self):
        prog = _zoo()
        cfg = Config.initial({}, Memory(), pc=1)
        with pytest.raises(ValueError):
            explore_sps(prog, cfg, bound=0)
        with pytest.raises(ValueError):
            explore_sps(prog, cfg, rsb_policy="bogus")


class TestDiffHarness:
    def test_backends_agree_on_a_regression_case(self):
        case = find_case("diffregress_store_addr_transient")
        record = compare(case.program, case.config(),
                         AnalysisOptions.for_case(case), name=case.name)
        assert record.agree and record.status == "agree"
        assert not record.disagree
        # Both found the same (non-empty) flagged set.
        assert record.pf_obs == record.sps_obs != ()

    def _record(self, pf_obs, sps_obs, pf_complete, sps_complete):
        return DiffRecord(name="t", program=_zoo(),
                          config=Config.initial({}, Memory(), pc=1),
                          options=AnalysisOptions(), pf_obs=pf_obs,
                          sps_obs=sps_obs, pf_complete=pf_complete,
                          sps_complete=sps_complete, pf_wall=0.1,
                          sps_wall=0.2)

    def test_divergence_under_budget_is_explained(self):
        record = self._record(("read 1_secret",), (), True, False)
        assert record.explained and not record.disagree
        assert record.status == "explained-budget"

    def test_divergence_with_both_complete_is_a_bug(self):
        record = self._record(("read 1_secret",), (), True, True)
        assert record.disagree and record.status == "DISAGREE"
        assert record.section()["classification"] == "disagree"

    def test_section_is_the_schema_8_cross_check_shape(self):
        section = self._record((), (), True, True).section()
        assert section["backends"] == ["pitchfork", "sps"]
        assert section["agree"] is True
        assert section["classification"] == "agree"
        assert isinstance(section["pitchfork_wall_time"], float)
        assert isinstance(section["sps_wall_time"], float)

    def test_random_generator_is_deterministic(self):
        import random
        p1 = random_callret_program(random.Random(7))
        p2 = random_callret_program(random.Random(7))
        assert dict(p1.items()) == dict(p2.items()) and p1.entry == p2.entry
        c1 = random_callret_config(random.Random(7))
        c2 = random_callret_config(random.Random(7))
        assert c1.regs == c2.regs

    def test_small_random_sweep_has_no_disagreements(self):
        records = sweep_random(6, seed=0)
        assert len(records) == 6
        assert not any(r.disagree for r in records)

    def test_minimize_drops_everything_the_predicate_allows(self):
        prog = Program({
            1: Op(RA, "add", operands(RA, 1), 2),
            2: Op(RB, "add", operands(RB, 2), 3),
            3: Load(RB, operands(0x40, RA), 4),
        }, entry=1)
        cfg = Config.initial({"ra": Value(0)}, Memory(), pc=1)
        small = minimize(prog, cfg,
                         still_fails=lambda p: 3 in dict(p.items()))
        assert dict(small.items()).keys() == {3}
        assert small.entry == 3

    def test_minimize_preserves_a_sequential_leak(self):
        # Delta-debugging against "still leaks sequentially" keeps the
        # leaking load and sheds the padding around it.
        mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                     ("K", 4, SECRET, [5, 6, 7, 8]))
        prog = Program({
            1: Op(RA, "add", operands(RA, 0), 2),
            2: Load(RB, operands(0x44), 3),
            3: Load(RA, operands(0x40, RB), 4),
            4: Op(RB, "add", operands(RB, 1), 5),
        }, entry=1)
        cfg = Config.initial({"ra": Value(0), "rb": Value(0)}, mem, pc=1)

        def leaks(candidate: Program) -> bool:
            res = run_sequential(Machine(candidate), cfg, max_retires=50)
            return bool(secret_observations(res.trace))

        assert leaks(prog)
        small = minimize(prog, cfg, still_fails=leaks)
        assert leaks(small)
        assert len(dict(small.items())) < len(dict(prog.items()))


class TestSpsAnalysis:
    def test_registered_with_aliases(self):
        cls = type(get_analysis("sps"))
        assert type(get_analysis("speculation-passing")) is cls
        assert type(get_analysis("speculation_passing")) is cls

    def test_report_shape_and_round_trip(self):
        report = Project.from_litmus("kocher_01").run("sps")
        assert report.analysis == "sps" and not report.secure
        assert report.phases[0].name == "sps"
        assert report.details["speculation_sites"].get("mispredict")
        assert report.details["exhausted_paths"] == 0
        assert Report.from_json(report.to_json()) == report

    def test_unhonoured_knobs_are_surfaced_not_dropped(self):
        project = Project.from_litmus("kocher_01").with_options(
            strategy="random", prune="none", subsume=True)
        report = project.run("sps")
        assert report.details["strategy_ignored"] == "random"
        assert report.details["prune_ignored"] == "none"
        assert report.details["subsume_ignored"] is True


class TestCrossCheckCLI:
    def test_cross_check_attaches_agreeing_section(self, capsys):
        code = main(["analyze", "kocher_01", "--cross-check", "--json"])
        assert code == 1  # insecure target, backends in agreement
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 8
        section = payload["cross_check"]
        assert section["agree"] is True
        assert section["pitchfork_observations"] == \
            section["sps_observations"]

    def test_cross_check_on_a_clean_target_exits_zero(self, capsys):
        code = main(["analyze", "v1_fig8_fence", "--cross-check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-check [pitchfork vs sps]: AGREE" in out

    def test_plain_analyze_has_no_cross_check_section(self, capsys):
        assert main(["analyze", "kocher_01", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["cross_check"] is None
