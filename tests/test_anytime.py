"""Anytime wall-clock budgets and deterministic time-to-first-violation.

The anytime contract under test: a budgeted run may stop early but must
say so honestly — ``AnytimeStats`` reports budget consumed, whether the
deadline fired, paths explored vs frontier remaining, and the
first-violation time; a budget-truncated run is never reported as clean
coverage (``--check`` exit 2).  Deadline checks sit at frontier-pop
boundaries only, so every test here drives the explorer with an
*injected fake clock* and asserts exact, machine-speed-independent
outcomes.  Also pinned: the ``EngineStats`` first-violation latch and
its min-by-steps merge, schema v6 exact Report round-trips, and the
cache-compatibility bar — defaulted budget/mcts knobs are omitted from
canonical options, so every pre-PR ``ResultStore`` key survives.
"""

import json

import pytest

from repro.api.cli import main
from repro.api.project import AnalysisOptions, Project
from repro.api.report import SCHEMA_VERSION, Report
from repro.core.machine import Machine
from repro.engine.core import EngineStats
from repro.litmus import find_case
from repro.pitchfork import ExplorationOptions, Explorer, ShardedExplorer
from repro.pitchfork.detector import analyze
from repro.pitchfork.explorer import AnytimeStats, validate_budget
from repro.serve.keys import canonical_options, fingerprint_digest, store_key


class FakeClock:
    """Monotonic clock advancing a fixed tick per reading."""

    def __init__(self, tick=1.0, start=100.0):
        self.now = start
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now


def _case_run(name, clock, budget, stop_at_first=False, shards=1, **kw):
    case = find_case(name)
    options = ExplorationOptions(
        bound=case.min_bound, fwd_hazards=case.needs_fwd_hazards,
        explore_aliasing=case.needs_aliasing,
        jmpi_targets=case.jmpi_targets, rsb_targets=case.rsb_targets,
        budget_seconds=budget, **kw)
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    if shards == 1:
        explorer = Explorer(machine, options, clock=clock)
    else:
        explorer = ShardedExplorer(machine, options, shards=shards,
                                   clock=clock)
    return explorer.explore(case.make_config(), stop_at_first=stop_at_first)


class TestBudgetValidation:
    def test_none_is_fine(self):
        validate_budget(None)

    @pytest.mark.parametrize("bad", (0, -1.0, float("nan"), float("inf"),
                                     True, "30"))
    def test_rejects_nonpositive_and_nonnumeric(self, bad):
        with pytest.raises(ValueError, match="budget_seconds"):
            validate_budget(bad)

    def test_options_validate(self):
        with pytest.raises(ValueError, match="budget_seconds"):
            AnalysisOptions(budget_seconds=-5)
        with pytest.raises(ValueError, match="budget_seconds"):
            ExplorationOptions(budget_seconds=0)


class TestDeterministicDeadline:
    def test_expired_budget_explores_nothing(self):
        # Tick 1.0/reading: by the first pop-boundary check the clock is
        # already past start + 0.5, so zero paths complete —
        # deterministically, on any host.
        result = _case_run("kocher_01", FakeClock(tick=1.0), budget=0.5)
        assert result.paths_explored == 0
        assert result.truncated
        assert result.anytime.deadline_hit
        assert result.anytime.frontier_remaining == 1
        assert result.anytime.paths_explored == 0
        assert result.anytime.first_violation_time is None
        assert result.secure      # vacuously — truncated says so

    def test_generous_budget_completes_with_honest_stats(self):
        reference = _case_run("kocher_01", None, budget=None)
        result = _case_run("kocher_01", FakeClock(tick=0.001),
                           budget=10_000.0)
        assert result.paths_explored == reference.paths_explored
        assert not result.truncated
        anytime = result.anytime
        assert anytime is not None
        assert not anytime.deadline_hit
        assert anytime.frontier_remaining == 0
        assert anytime.budget_seconds == 10_000.0
        assert 0 < anytime.budget_consumed < 10_000.0
        assert anytime.first_violation_time is not None

    def test_partial_budget_is_deterministic(self):
        # The same fake clock must cut the same pops twice in a row.
        def run():
            return _case_run("kocher_01", FakeClock(tick=0.4), budget=2.0)

        a, b = run(), run()
        assert a.paths_explored == b.paths_explored
        assert a.anytime == b.anytime
        assert a.truncated == b.truncated

    def test_unbudgeted_run_reports_no_anytime(self):
        result = _case_run("kocher_01", None, budget=None)
        assert result.anytime is None


class TestFirstViolationStats:
    def test_latch_records_once(self):
        stats = EngineStats()
        assert stats.first_violation_steps is None
        stats.record_first_violation(3, 17, 0.5)
        stats.record_first_violation(9, 99, 9.9)    # later hit: ignored
        assert (stats.first_violation_pops, stats.first_violation_steps,
                stats.first_violation_wall) == (3, 17, 0.5)

    def test_merge_adopts_min_by_steps(self):
        a, b, c = EngineStats(), EngineStats(), EngineStats()
        b.record_first_violation(5, 40, 1.0)
        c.record_first_violation(8, 12, 2.0)
        a.merge(b)
        assert a.first_violation_steps == 40
        a.merge(c)                  # fewer steps wins, regardless of wall
        assert (a.first_violation_pops, a.first_violation_steps,
                a.first_violation_wall) == (8, 12, 2.0)
        a.merge(EngineStats())      # empty merge never clears the latch
        assert a.first_violation_steps == 12

    def test_snapshot_carries_the_triple(self):
        stats = EngineStats()
        stats.record_first_violation(1, 2, 3.0)
        snap = stats.snapshot()
        assert (snap.first_violation_pops, snap.first_violation_steps,
                snap.first_violation_wall) == (1, 2, 3.0)

    def test_explorer_records_deterministic_counters(self):
        # pops and machine steps are strategy-comparable and identical
        # across runs; wall time exists but is not pinned.
        a = _case_run("kocher_01", FakeClock(tick=0.01), budget=1_000.0)
        b = _case_run("kocher_01", FakeClock(tick=0.01), budget=1_000.0)
        assert a.engine.first_violation_steps is not None
        assert a.engine.first_violation_pops == b.engine.first_violation_pops
        assert a.engine.first_violation_steps == b.engine.first_violation_steps

    def test_report_surfaces_first_violation(self):
        case = find_case("kocher_01")
        report = analyze(case.program, case.make_config(),
                         bound=case.min_bound,
                         fwd_hazards=case.needs_fwd_hazards,
                         stop_at_first=False)
        assert not report.secure
        assert report.first_violation is not None
        assert report.first_violation["pops"] >= 1
        assert report.first_violation["steps"] >= 1
        assert report.first_violation["wall_time"] >= 0

    def test_clean_run_has_no_first_violation(self):
        case = find_case("v1_fig8_fence")
        report = analyze(case.program, case.make_config(),
                         bound=case.min_bound,
                         fwd_hazards=case.needs_fwd_hazards)
        assert report.secure and report.first_violation is None


class TestShardedBudget:
    def test_expired_budget_skips_jobs_deterministically(self):
        # Parent clock races past the deadline before any local job
        # starts: every pending subtree root is charged to the
        # unexplored frontier, none explored, merged result truncated.
        result = _case_run("kocher_05", FakeClock(tick=1.0), budget=0.5,
                           shards=2)
        assert result.truncated
        assert result.anytime.deadline_hit
        assert result.anytime.frontier_remaining >= 1
        assert result.anytime.first_violation_time is None

    def test_generous_budget_matches_unbudgeted_findings(self):
        from repro.pitchfork import violation_set
        reference = _case_run("kocher_05", None, budget=None, shards=2)
        result = _case_run("kocher_05", FakeClock(tick=0.0001),
                           budget=100_000.0, shards=2)
        assert violation_set(result.violations) == \
            violation_set(reference.violations)
        assert result.anytime is not None
        assert not result.anytime.deadline_hit
        assert result.anytime.frontier_remaining == 0

    def test_sharded_first_violation_survives_merge(self):
        result = _case_run("kocher_01", None, budget=None, shards=2)
        assert result.violations
        assert result.engine.first_violation_steps is not None


class TestRoundTrip:
    def test_schema_version_is_8(self):
        assert SCHEMA_VERSION == 8

    def test_anytime_stats_exact_round_trip(self):
        stats = AnytimeStats(budget_seconds=2.5, budget_consumed=1.25,
                             deadline_hit=True, paths_explored=7,
                             frontier_remaining=3,
                             first_violation_time=0.75)
        assert AnytimeStats.from_dict(stats.to_dict()) == stats
        clean = AnytimeStats(budget_seconds=9.0, budget_consumed=0.5,
                             deadline_hit=False, paths_explored=4,
                             frontier_remaining=0)
        assert AnytimeStats.from_dict(clean.to_dict()) == clean

    def test_report_round_trip_with_anytime(self, capsys):
        assert main(["analyze", "kocher_01", "--budget-seconds", "600",
                     "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == 8
        assert data["anytime"]["budget_seconds"] == 600.0
        assert data["anytime"]["deadline_hit"] is False
        assert data["first_violation"]["steps"] >= 1
        report = Report.from_dict(data)
        assert report.to_dict() == data
        rendered = report.render()
        assert "anytime:" in rendered and "first violation:" in rendered

    def test_report_round_trip_without_anytime(self, capsys):
        assert main(["analyze", "v1_fig8_fence", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["anytime"] is None
        assert data["first_violation"] is None
        report = Report.from_dict(data)
        assert report.to_dict() == data

    def test_legacy_v5_payload_still_loads(self, capsys):
        assert main(["analyze", "v1_fig8_fence", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        del data["anytime"]             # a v5 producer never wrote them
        del data["first_violation"]
        data["schema_version"] = 5
        report = Report.from_dict(data)
        assert report.anytime is None
        assert report.first_violation is None


class TestCLIContract:
    """--budget-seconds × --check: 0 clean / 1 violation / 2 coverage
    failure / 3 usage, budget expiry never reported as clean."""

    def test_exit_0_clean_within_budget(self, capsys):
        assert main(["analyze", "v1_fig8_fence",
                     "--budget-seconds", "600", "--check"]) == 0
        assert "SECURE" in capsys.readouterr().out

    def test_exit_1_violation_within_budget(self, capsys):
        assert main(["analyze", "kocher_01",
                     "--budget-seconds", "600"]) == 1

    def test_exit_2_budget_truncation_under_check(self, capsys):
        # 1 ns: expired by the first pop-boundary check on any host.
        assert main(["analyze", "v1_fig8_fence",
                     "--budget-seconds", "1e-9", "--check"]) == 2
        captured = capsys.readouterr()
        assert "truncated" in captured.out
        assert "budget" in captured.err

    def test_exit_3_invalid_budget(self, capsys):
        assert main(["analyze", "kocher_01",
                     "--budget-seconds", "-1"]) == 3
        assert main(["analyze", "kocher_01",
                     "--budget-seconds", "0"]) == 3
        assert main(["analyze", "kocher_01", "--mcts-c", "-1"]) == 3
        assert main(["analyze", "kocher_01", "--mcts-playout", "-2"]) == 3

    def test_truncated_never_clean(self, capsys):
        # Without --check the exit is 0 (no violation found), but the
        # report itself must carry truncated=True + deadline_hit.
        assert main(["analyze", "v1_fig8_fence",
                     "--budget-seconds", "1e-9", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["truncated"] is True
        assert data["anytime"]["deadline_hit"] is True


class TestStoreKeyCompatibility:
    """Adding budget/mcts knobs must not invalidate any existing
    ResultStore key: defaults are omitted from canonical options."""

    def test_default_options_canonicalise_empty(self):
        assert canonical_options(AnalysisOptions()) == ()

    def test_kocher_01_canonical_options_unchanged(self):
        project = Project.from_litmus("kocher_01")
        assert canonical_options(project.options) == (
            ("bound", 12), ("fwd_hazards", False), ("max_paths", 8000))

    def test_kocher_01_store_key_unchanged(self):
        # Values pinned before this PR's options fields existed.
        project = Project.from_litmus("kocher_01")
        fingerprint = fingerprint_digest(project)
        assert fingerprint == ("90fc5e28bad1662ef29daff314f68a2edec8172c"
                               "4bb77f526eb6623a1100f42d")
        assert store_key("pitchfork", fingerprint, project.options) == (
            "a99ff96a5a35613bdd776334ec903e5d5ff3d1c2078d70a5e"
            "ac3f03a346432de")

    def test_nondefault_budget_changes_the_key(self):
        # A budgeted (possibly truncated) result must never shadow a
        # complete run of the same target.
        project = Project.from_litmus("kocher_01")
        fingerprint = fingerprint_digest(project)
        base = store_key("pitchfork", fingerprint, project.options)
        budgeted = store_key(
            "pitchfork", fingerprint,
            project.options.with_(budget_seconds=30.0))
        assert budgeted != base
        assert canonical_options(
            project.options.with_(mcts_c=1.0)) != canonical_options(
                project.options)
