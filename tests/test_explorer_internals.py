"""White-box tests of the Pitchfork explorer's scheduler decisions."""

import pytest

from repro.asm import ProgramBuilder, assemble
from repro.core import Config, Machine, Memory, Region, Value, PUBLIC, SECRET
from repro.core.directives import Execute, Fetch, Retire
from repro.litmus import find_case
from repro.pitchfork import (ExplorationOptions, Explorer, analyze,
                             enumerate_schedules)


def _machine(src):
    return Machine(assemble(src))


class TestProbePruning:
    def test_mispredicted_path_ends_at_rollback(self):
        """The wrong-guess path's schedule stops right after the branch
        resolves: its continuation equals the correct path's (Thm B.7)."""
        m = _machine("br ltu, %ra, 4 -> 2, 3\n%rb = op mov, 1\nhalt")
        c = Config.initial({"ra": 9}, Memory(), 1)
        result = Explorer(m, ExplorationOptions(bound=8)).explore(c)
        assert result.paths_explored == 2
        wrong = [p for p in result.paths
                 if p.schedule and p.schedule[0] == Fetch(True)]
        assert len(wrong) == 1
        # the wrong path ends with the branch execution (the rollback)
        assert isinstance(wrong[0].schedule[-1], Execute)
        from repro.core.observations import Rollback
        assert Rollback() in wrong[0].trace

    def test_correct_path_runs_to_terminal(self):
        m = _machine("br ltu, %ra, 4 -> 2, 3\n%rb = op mov, 1\nhalt")
        c = Config.initial({"ra": 9}, Memory(), 1)
        result = Explorer(m, ExplorationOptions(bound=8)).explore(c)
        right = [p for p in result.paths
                 if p.schedule and p.schedule[0] == Fetch(False)]
        assert right[0].final.is_terminal()


class TestEagerness:
    def test_ops_execute_before_further_fetches(self):
        m = _machine("%ra = op mov, 1\n%rb = op mov, 2\nhalt")
        c = Config.initial({}, Memory(), 1)
        result = Explorer(m, ExplorationOptions(bound=8)).explore(c)
        (path,) = result.paths
        kinds = [type(d).__name__ for d in path.schedule]
        # fetch, execute, fetch, execute, retire, retire
        assert kinds[:4] == ["Fetch", "Execute", "Fetch", "Execute"]

    def test_store_value_resolved_immediately(self):
        m = _machine("store %rv, [0x40]\nhalt")
        c = Config.initial({"rv": 7}, Memory(), 1)
        result = Explorer(m, ExplorationOptions(bound=8)).explore(c)
        for p in result.paths:
            value_steps = [k for k, d in enumerate(p.schedule)
                           if isinstance(d, Execute) and d.part == "value"]
            assert value_steps and value_steps[0] == 1  # right after fetch


class TestForwardingArms:
    def test_matching_store_creates_three_outcomes(self):
        """One matching store: forward-from-it, and read-memory (v4),
        for the deferred arm; resolved-then-forward collapses into the
        first. Expect ≥ 2 distinct traces."""
        m = _machine("store 1, [0x40]\n%ra = load [0x40]\nhalt")
        c = Config.initial({}, Memory().write(0x40, Value(9)), 1)
        result = Explorer(m, ExplorationOptions(bound=8)).explore(c)
        traces = {p.trace for p in result.paths}
        assert len(traces) >= 2
        from repro.core.observations import Fwd, Read
        kinds = {tuple(type(o).__name__ for o in t) for t in traces}
        # one world forwards (Fwd first), one reads stale memory (Read)
        assert any(k and k[0] == "Fwd" for k in kinds)
        assert any("Read" in k for k in kinds)

    def test_stale_read_world_rolls_back_and_recovers(self):
        """The v4 probe must still commit the architecturally right
        value after its hazard rollback."""
        m = _machine("store 1, [0x40]\n%ra = load [0x40]\nhalt")
        c = Config.initial({}, Memory().write(0x40, Value(9)), 1)
        result = Explorer(m, ExplorationOptions(bound=8)).explore(c)
        for p in result.paths:
            if p.complete:
                assert p.final.reg("ra").val == 1
                assert p.final.mem.read(0x40).val == 1


class TestUnknownBranchMode:
    def test_schedule_prefixes_are_input_independent(self):
        """Up to each branch resolution the schedules cannot depend on
        register values (the tails differ: rollback-pruning ends
        mispredicted probes, and which guess *is* mispredicted depends
        on the input — the symbolic replay tolerates stuck tails)."""
        m = _machine("br ltu, %ra, 4 -> 2, 3\n%rb = op mov, 1\nhalt")
        lo = Config.initial({"ra": 1}, Memory(), 1)
        hi = Config.initial({"ra": 9}, Memory(), 1)

        def prefixes(config):
            out = set()
            for s in enumerate_schedules(m, config, bound=8,
                                         assume_unknown_branches=True):
                cut = next((k for k, d in enumerate(s)
                            if d == Execute(1)), len(s) - 1)
                out.add(s[:cut + 1])
            return out

        assert prefixes(lo) == prefixes(hi)

    def test_both_arms_delayed(self):
        """In unknown-branch mode no branch resolves before the window
        demands it, regardless of correctness."""
        m = _machine("br ltu, %ra, 4 -> 2, 3\n%rb = op mov, 1\nhalt")
        c = Config.initial({"ra": 1}, Memory(), 1)
        for schedule in enumerate_schedules(m, c, bound=8,
                                            assume_unknown_branches=True):
            fetches = [k for k, d in enumerate(schedule)
                       if isinstance(d, Fetch)]
            executes_br = [k for k, d in enumerate(schedule)
                           if d == Execute(1)]
            if executes_br and len(fetches) > 1:
                # the branch resolves only after all fetching is done
                assert executes_br[0] > fetches[-1]


class TestExtensions:
    def test_rsb_target_exploration(self):
        case = find_case("ret2spec_fig12")
        blind = analyze(case.program, case.config(), bound=16,
                        fwd_hazards=False)
        seeing = analyze(case.program, case.config(), bound=16,
                         fwd_hazards=False, rsb_targets=(10,))
        assert blind.secure and not seeing.secure

    def test_aliasing_exploration_bounded(self):
        """Aliasing arms multiply paths but stay within budget."""
        case = find_case("aliasing_fig2")
        report = analyze(case.program, case.config(), bound=12,
                         fwd_hazards=True, explore_aliasing=True,
                         stop_at_first=False, max_paths=4000)
        assert not report.secure
        assert not report.truncated
