"""repro.obs: tracer/metrics/export units, telemetry round trips, and
the tier-1 overhead guard.

The guard is the subsystem's core promise: observability must be
*free when off and inert when on*.  Tracing and telemetry may add wall
time, but they may never change what the exploration observes — so the
guard runs the litmus registry with tracing+telemetry on and off, at
shards 1 and 4, and requires the violation sets and the deterministic
step counters to be identical.
"""

import json
import os
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.machine import Machine
from repro.litmus import all_cases, find_case
from repro.obs import (CAPTURE_VERSION, DEFAULT_BUCKETS, MetricsRegistry,
                       NULL_TRACER, NullTracer, SearchTelemetry, Span,
                       Tracer, ambient_tracer, chrome_trace, read_capture,
                       sort_spans, summarize_spans, tracing_context,
                       validate_telemetry, write_capture)
from repro.pitchfork import (ExplorationOptions, Explorer, ShardedExplorer,
                             violation_set)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# -- tracer -------------------------------------------------------------------

class TestTracer:
    def test_records_spans_with_dense_seq(self):
        tracer = Tracer()
        ts = tracer.start()
        tracer.add("a", "cat", ts, {"n": 1})
        with tracer.span("b", "cat", k=2):
            pass
        tracer.instant("c")
        spans = tracer.export()
        assert [s["name"] for s in spans] == ["a", "b", "c"]
        assert [s["seq"] for s in spans] == [0, 1, 2]
        assert all(s["shard"] is None for s in spans)
        assert all(s["dur"] >= 0.0 for s in spans)
        assert spans[0]["args"] == {"n": 1}
        assert spans[1]["args"] == {"k": 2}
        assert spans[0]["pid"] == os.getpid()

    def test_adopt_tags_shard_and_keeps_worker_identity(self):
        worker = Tracer()
        worker.instant("w0")
        worker.instant("w1")
        parent = Tracer()
        parent.instant("p0")
        parent.adopt(worker.export(), shard=3)
        spans = parent.export()
        adopted = [s for s in spans if s["shard"] == 3]
        assert [s["seq"] for s in adopted] == [0, 1]
        assert [s["name"] for s in adopted] == ["w0", "w1"]

    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True
        NULL_TRACER.add("x", "y", 0.0)
        NULL_TRACER.instant("x")
        with NULL_TRACER.span("x"):
            pass
        assert NULL_TRACER.export() == []
        assert len(NULL_TRACER) == 0

    def test_ambient_defaults_to_null_and_scopes(self):
        assert ambient_tracer() is NULL_TRACER
        tracer = Tracer()
        with tracing_context(tracer):
            assert ambient_tracer() is tracer
            with tracing_context(None):
                assert ambient_tracer() is NULL_TRACER
            assert ambient_tracer() is tracer
        assert ambient_tracer() is NULL_TRACER

    def test_span_dict_round_trip(self):
        span = Span("n", "c", 1.5, 0.25, 7, 8, 2, 9, {"a": 1})
        again = Span.from_dict(span.to_dict())
        assert again.to_dict() == span.to_dict()


# -- metrics ------------------------------------------------------------------

class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc()
        counter.inc(4)
        assert registry.counter("jobs_total") is counter
        assert registry.to_dict()["counters"] == {"jobs_total": 5}
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("level").set(3.0)
        registry.gauge("level").set(1.5)
        assert registry.to_dict()["gauges"] == {"level": 1.5}

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("wall", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        data = registry.to_dict()["histograms"]["wall"]
        assert data["buckets"] == {"0.1": 1, "1.0": 3, "+Inf": 4}
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(6.05)
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(2.0, 1.0))

    def test_render_text_is_greppable(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b").set(0.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.2)
        text = registry.render_text()
        assert "a_total 2" in text
        assert "b 0.5" in text
        assert 'h_bucket{le="1.0"} 1' in text
        assert "h_count 1" in text

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# -- export -------------------------------------------------------------------

def _span(name, shard, seq, pid=1, ts=10.0):
    return {"name": name, "cat": "c", "ts": ts, "dur": 0.5, "pid": pid,
            "tid": 1, "shard": shard, "seq": seq, "args": {}}


class TestExport:
    def test_sort_is_shard_then_seq_parent_first(self):
        spans = [_span("w1b", 1, 1), _span("p0", None, 0),
                 _span("w0a", 0, 0), _span("w1a", 1, 0),
                 _span("p1", None, 1)]
        assert [s["name"] for s in sort_spans(spans)] == \
            ["p0", "p1", "w0a", "w1a", "w1b"]

    def test_chrome_trace_shape_and_rebasing(self):
        spans = [_span("p", None, 0, pid=1, ts=100.0),
                 _span("w", 0, 0, pid=2, ts=5000.0)]
        doc = chrome_trace(spans)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        # Each (pid, shard) stream is rebased to its own origin.
        assert [e["ts"] for e in events] == [0.0, 0.0]
        assert events[0]["dur"] == pytest.approx(0.5e6)
        assert events[0]["tid"] == 1
        assert events[1]["tid"] == "shard-0"

    def test_capture_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        spans = [_span("b", 0, 0), _span("a", None, 0)]
        write_capture(path, spans, header={"command": "test"})
        header, again = read_capture(path)
        assert header["version"] == CAPTURE_VERSION
        assert header["command"] == "test"
        assert [s["name"] for s in again] == ["a", "b"]  # sorted on write
        assert again == sort_spans(spans)

    def test_read_capture_rejects_non_jsonl(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("this is not json\n")
        with pytest.raises(ValueError):
            read_capture(path)

    def test_summarize_spans(self):
        spans = [_span("a", None, 0), _span("a", 0, 0), _span("b", 1, 0)]
        summary = summarize_spans(spans)
        assert summary["spans"] == 3
        assert summary["shards"] == [0, 1]
        rows = {(r["cat"], r["name"]): r for r in summary["series"]}
        assert rows[("c", "a")]["count"] == 2
        assert rows[("c", "a")]["wall"] == pytest.approx(1.0)


# -- telemetry ----------------------------------------------------------------

class TestSearchTelemetry:
    def test_validate(self):
        validate_telemetry(True)
        with pytest.raises(ValueError):
            validate_telemetry("yes")

    def test_counters_and_section(self):
        telemetry = SearchTelemetry()
        telemetry.record_pop(4)
        telemetry.record_pop(4)
        telemetry.record_pop(None)  # ran off the program: pops only
        telemetry.record_schedule(0)
        telemetry.record_schedule(2)
        section = telemetry.to_section(1.25)
        assert section == {"heatmap": {"4": 2},
                           "fork_levels": {"0": 1, "2": 1},
                           "pops": 3, "wall_time": 1.25}

    def test_merge_and_merge_section_agree(self):
        a = SearchTelemetry()
        a.record_pop(1)
        a.record_schedule(0)
        b = SearchTelemetry()
        b.record_pop(1)
        b.record_pop(2)
        b.record_schedule(0)
        via_merge = SearchTelemetry()
        via_merge.merge(a)
        via_merge.merge(b)
        via_section = SearchTelemetry()
        via_section.merge_section(a.to_section(9.0))
        via_section.merge_section(b.to_section(9.0))
        assert via_merge.to_section(0.0) == via_section.to_section(0.0)


# -- schema v7 / store keys ---------------------------------------------------

class TestReportTelemetry:
    def test_schema_v7_round_trips_telemetry_exactly(self):
        from repro.pitchfork import analyze
        from repro.api.report import Report, from_analysis_report
        case = find_case("kocher_01")
        report = from_analysis_report(
            analyze(case.program, case.make_config(), bound=case.min_bound,
                    rsb_policy=case.rsb_policy, telemetry=True),
            target=case.name, analysis="pitchfork")
        assert report.telemetry is not None
        assert report.telemetry["pops"] > 0
        data = json.loads(report.to_json())
        assert data["schema_version"] == 8
        again = Report.from_dict(data)
        assert again.telemetry == report.telemetry
        assert json.loads(again.to_json()) == data

    def test_defaulted_telemetry_keeps_store_keys(self):
        """The store-key invariant: an options object that never names
        telemetry and one that sets it to its default produce the keys
        a pre-telemetry build produced (defaulted fields are skipped by
        canonical_options, so the new knob is invisible)."""
        from repro.api.project import AnalysisOptions
        from repro.serve.keys import canonical_options, store_key
        plain = AnalysisOptions(bound=8)
        defaulted = AnalysisOptions(bound=8, telemetry=False)
        assert canonical_options(plain) == canonical_options(defaulted)
        assert not any(name == "telemetry"
                       for name, _ in canonical_options(plain))
        assert store_key("pitchfork", "f" * 64, plain) == \
            store_key("pitchfork", "f" * 64, defaulted)
        enabled = AnalysisOptions(bound=8, telemetry=True)
        assert store_key("pitchfork", "f" * 64, enabled) != \
            store_key("pitchfork", "f" * 64, plain)

    def test_strip_volatile_zeroes_telemetry_wall_time_only(self):
        from repro.serve.keys import strip_volatile
        doc = {"wall_time": 3.0,
               "telemetry": {"heatmap": {"1": 2}, "fork_levels": {"0": 1},
                             "pops": 2, "wall_time": 0.125}}
        stripped = strip_volatile(doc)
        assert stripped["telemetry"]["wall_time"] == 0.0
        assert stripped["telemetry"]["heatmap"] == {"1": 2}
        assert stripped["telemetry"]["pops"] == 2


# -- serve stats --------------------------------------------------------------

class TestServeStats:
    def test_typed_fields_and_mapping_compat(self):
        from repro.serve.client import ServeStats
        stats = ServeStats.from_reply(
            {"started_at": 100.0, "uptime_s": 7.5, "pool": {"workers": 2}})
        assert stats.started_at == 100.0
        assert stats.uptime_s == 7.5
        assert stats["pool"] == {"workers": 2}
        assert dict(stats) == stats.to_dict()

    def test_old_daemon_reply_reconstructs_started_at(self):
        import time
        from repro.serve.client import ServeStats
        before = time.time()
        stats = ServeStats.from_reply({"uptime": 10.0})
        assert stats.uptime_s == 10.0
        assert before - 10.0 - 1.0 <= stats.started_at <= time.time() - 9.0


# -- the overhead guard (tier-1) ----------------------------------------------

def _case_options(case, telemetry=False):
    return ExplorationOptions(
        bound=case.min_bound, fwd_hazards=case.needs_fwd_hazards,
        explore_aliasing=case.needs_aliasing,
        jmpi_targets=case.jmpi_targets, rsb_targets=case.rsb_targets,
        telemetry=telemetry)


def _run(case, telemetry=False, traced=False, shards=1, pool=None):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    options = _case_options(case, telemetry=telemetry)
    tracer = Tracer() if traced else None
    with tracing_context(tracer):
        if shards == 1:
            explorer = Explorer(machine, options)
        else:
            explorer = ShardedExplorer(machine, options, shards=shards,
                                       pool=pool)
        result = explorer.explore(case.make_config())
    return result, (tracer.export() if tracer else [])


class TestOverheadGuard:
    """Observability may cost wall time, never observations or steps."""

    def test_registry_identical_with_tracing_and_telemetry_on(self):
        mismatches = []
        for case in all_cases():
            off, _ = _run(case)
            on, spans = _run(case, telemetry=True, traced=True)
            if violation_set(on.violations) != violation_set(off.violations):
                mismatches.append(f"{case.name}: observations diverge")
            if on.applied_steps != off.applied_steps:
                mismatches.append(f"{case.name}: step counts diverge "
                                  f"({on.applied_steps} vs "
                                  f"{off.applied_steps})")
            if on.paths_explored != off.paths_explored:
                mismatches.append(f"{case.name}: path counts diverge")
            assert on.telemetry is not None and on.telemetry["pops"] > 0, \
                case.name
            assert off.telemetry is None, case.name
            assert spans, case.name
        assert not mismatches, mismatches

    def test_sharded_runs_identical_with_tracing_on(self):
        with ProcessPoolExecutor(max_workers=4) as pool:
            for name in ("kocher_05", "haystack_01", "v1_fig1"):
                case = find_case(name)
                off, _ = _run(case, shards=4, pool=pool)
                on, spans = _run(case, telemetry=True, traced=True,
                                 shards=4, pool=pool)
                assert violation_set(on.violations) == \
                    violation_set(off.violations), name
                assert on.applied_steps == off.applied_steps, name
                assert on.paths_explored == off.paths_explored, name
                assert spans, name

    def test_traced_sharded_run_merges_worker_streams(self):
        """kocher_05 splits into >= 2 pool jobs: the capture must carry
        >= 2 worker streams, and the merged order must be the
        deterministic (shard, seq) key, independent of interleaving."""
        case = find_case("kocher_05")
        with ProcessPoolExecutor(max_workers=2) as pool:
            _result, spans = _run(case, telemetry=True, traced=True,
                                  shards=2, pool=pool)
        shards = {s["shard"] for s in spans if s["shard"] is not None}
        assert len(shards) >= 2, shards
        ordered = sort_spans(spans)
        keys = [(-1 if s["shard"] is None else s["shard"], s["seq"])
                for s in ordered]
        assert keys == sorted(keys)
        # Per-stream seqs are dense from 0.
        for shard in shards:
            seqs = [s["seq"] for s in ordered if s["shard"] == shard]
            assert seqs == list(range(len(seqs)))
        doc = chrome_trace(spans)
        assert {e["tid"] for e in doc["traceEvents"]} >= \
            {f"shard-{s}" for s in shards}

    def test_telemetry_section_matches_sharded_sum(self):
        """The merged section's pops equal parent + per-shard pops."""
        case = find_case("kocher_05")
        single, _ = _run(case, telemetry=True)
        with ProcessPoolExecutor(max_workers=2) as pool:
            sharded, _ = _run(case, telemetry=True, shards=2, pool=pool)
        assert sharded.telemetry is not None
        # Split-level roots are advanced without popping and workers
        # re-pop their replayed roots, so equality with the
        # single-process distribution is not expected — but both count
        # every completed schedule exactly once.
        assert (sum(sharded.telemetry["fork_levels"].values())
                == sum(single.telemetry["fork_levels"].values())
                == sharded.paths_explored == single.paths_explored)


# -- CLI: --json stdout purity (tier-1) ---------------------------------------

class TestCliJsonStdout:
    def test_json_stdout_is_one_document_with_trace_on(self, tmp_path):
        """Every progress/trace notice goes to stderr; --json stdout
        must parse as exactly one JSON document even with --trace."""
        capture = tmp_path / "t.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "kocher_01",
             "--json", "--trace", str(capture)],
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
            timeout=120)
        assert proc.returncode == 1, proc.stderr  # INSECURE, by design
        report = json.loads(proc.stdout)  # raises if interleaved
        assert report["schema_version"] == 8
        assert report["telemetry"]["pops"] > 0  # --trace implied it
        assert "trace:" in proc.stderr
        header, spans = read_capture(capture)
        assert spans and header["command"] == "analyze"
