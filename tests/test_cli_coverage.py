"""CLI listing and error-path coverage (PR satellites).

Covers the ``repro list`` alias fix — registered analysis aliases
(``mitigate``/``mitigation`` → ``repair`` etc.) must be printed in both
the text and ``--json`` listings — and the error paths of
``repro.api.cli`` the coverage floor flagged: bad ``--reg`` pairs,
unknown targets and suites, string ``SystemExit`` payloads, the
repair subcommand's verifier restriction, and the ``--prune`` flag's
validation path.
"""

import json

import pytest

from repro.api.cli import main


class TestListAliases:
    """`repro list` omitted registered analysis aliases (fixed here)."""

    def test_text_listing_names_aliases(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "aliases:" in out
        assert "mitigate, mitigation -> repair" in out
        assert "table2, two_phase, twophase -> two-phase" in out
        assert "cache, cache_attack -> cache-attack" in out

    def test_json_listing_names_aliases(self, capsys):
        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["aliases"]["mitigate"] == "repair"
        assert data["aliases"]["mitigation"] == "repair"
        assert data["aliases"]["table2"] == "two-phase"
        assert set(data["aliases"]) >= {"cache", "cache_attack",
                                        "two_phase", "twophase"}

    def test_every_alias_resolves(self):
        """Printed aliases must actually be accepted by get_analysis."""
        from repro.api.analyses import (available_aliases,
                                        available_analyses, get_analysis)
        for alias, target in available_aliases().items():
            assert get_analysis(alias).name == target
            assert target in available_analyses()


class TestErrorPaths:
    def test_bad_reg_pair_exits_3(self, capsys):
        assert main(["analyze", "nosuch.s", "--reg", "ra9"]) == 3
        assert "error" in capsys.readouterr().err

    def test_unknown_target_exits_3(self, capsys):
        assert main(["analyze", "no_such_case_xyz"]) == 3
        err = capsys.readouterr().err
        assert "unknown target" in err

    def test_unreadable_file_exits_3(self, tmp_path, capsys):
        missing = tmp_path / "gone.s"
        assert main(["analyze", str(missing)]) == 3
        assert "error" in capsys.readouterr().err

    def test_unknown_suite_exits_3(self, capsys):
        assert main(["litmus", "not_a_suite"]) == 3
        assert "unknown suite" in capsys.readouterr().err

    def test_unknown_analysis_exits_3(self, capsys):
        assert main(["analyze", "kocher_01", "-a", "bogus"]) == 3
        assert "unknown analysis" in capsys.readouterr().err

    def test_repair_rejects_other_verifiers(self, capsys):
        assert main(["repair", "kocher_01", "-a", "sct"]) == 3
        assert "pitchfork" in capsys.readouterr().err

    def test_bad_flag_value_exits_3(self, capsys):
        # argparse rejects the bad choice; the custom parser maps usage
        # errors to exit 3 (not argparse's default 2, which would
        # collide with the --check coverage gate).
        with pytest.raises(SystemExit) as exc:
            main(["analyze", "kocher_01", "--prune", "everything"])
        assert exc.value.code == 3

    def test_bad_option_value_via_api_exits_3(self, capsys):
        # values argparse can't pre-validate surface as ValueError -> 3
        assert main(["analyze", "kocher_01", "--bound", "-3"]) == 3
        assert "error" in capsys.readouterr().err


class TestPruneFlag:
    def test_prune_full_payload(self, capsys):
        main(["analyze", "kocher_13", "--prune", "full", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["details"]["prune"] == "full"
        assert data["pruning"]["level"] == "full"

    def test_prune_default_absent_means_sleepset(self, capsys):
        main(["analyze", "kocher_13", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["pruning"]["level"] == "sleepset"
