"""Tests for observations, directives, and their helpers."""

import pytest

from repro.core.directives import (Execute, Fetch, RETIRE, Retire, execute,
                                   fetch, retire_count)
from repro.core.lattice import PUBLIC, SECRET
from repro.core.observations import (Fwd, Jump, Read, Rollback, Write,
                                     addresses, is_secret_dependent,
                                     secret_observations)


class TestObservations:
    def test_rollback_carries_no_label(self):
        assert not is_secret_dependent(Rollback())

    def test_public_observation_not_flagged(self):
        assert not is_secret_dependent(Read(0x40, PUBLIC))

    @pytest.mark.parametrize("obs", [
        Read(0x40, SECRET), Fwd(0x40, SECRET), Write(0x40, SECRET),
        Jump(7, SECRET)])
    def test_secret_observations_flagged(self, obs):
        assert is_secret_dependent(obs)

    def test_secret_subtrace(self):
        trace = (Read(1, PUBLIC), Read(2, SECRET), Rollback(),
                 Jump(3, SECRET))
        assert secret_observations(trace) == (Read(2, SECRET),
                                              Jump(3, SECRET))

    def test_addresses_extracts_in_order(self):
        trace = (Read(1, PUBLIC), Jump(9, PUBLIC), Rollback(),
                 Write(2, SECRET), Fwd(3, PUBLIC))
        assert addresses(trace) == (1, 9, 2, 3)

    def test_observation_equality(self):
        assert Read(1, PUBLIC) == Read(1, PUBLIC)
        assert Read(1, PUBLIC) != Read(1, SECRET)
        assert Rollback() == Rollback()


class TestDirectives:
    def test_fetch_constructor(self):
        assert fetch() == Fetch(None)
        assert fetch(True) == Fetch(True)
        assert fetch(17) == Fetch(17)

    def test_execute_constructor(self):
        assert execute(3) == Execute(3, None)
        assert execute(3, "addr") == Execute(3, "addr")
        assert execute(3, 1) == Execute(3, 1)

    def test_execute_rejects_bad_part(self):
        with pytest.raises(ValueError):
            execute(3, "bogus")

    def test_retire_singleton_equality(self):
        assert RETIRE == Retire()

    def test_retire_count(self):
        assert retire_count((fetch(), RETIRE, execute(1), RETIRE)) == 2
        assert retire_count(()) == 0

    def test_directives_hashable(self):
        assert len({fetch(True), fetch(True), execute(1), RETIRE}) == 3

    def test_reprs_match_paper_syntax(self):
        assert repr(fetch(True)) == "fetch: True"
        assert repr(execute(7, 2)) == "execute 7: fwd 2"
        assert repr(execute(7, "addr")) == "execute 7: addr"
        assert repr(RETIRE) == "retire"
