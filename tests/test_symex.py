"""Tests for the symbolic back end (expressions, solving, replay, and
the combined schedules-then-symex pipeline)."""

import pytest

from repro.asm import assemble
from repro.core import (Config, Machine, Memory, PUBLIC, SECRET, Value,
                        layout, run, secret_observations)
from repro.core.errors import ReproError
from repro.pitchfork import (App, Constraint, Sym, SymbolicEvaluator,
                             SymbolicRunner, analyze_symbolic,
                             enumerate_schedules, eval_expr,
                             feasible_values, solve, symbols_of)
from repro.pitchfork.symex import Fork, NeedConcretization, \
    representative_config


X = Sym("x", tuple(range(8)))
Y = Sym("y", (0, 1))


class TestExpressions:
    def test_eval_concrete(self):
        assert eval_expr(5, {}) == 5

    def test_eval_symbol(self):
        assert eval_expr(X, {"x": 3}) == 3

    def test_eval_app(self):
        expr = App("add", (X, App("mul", (Y, 10))))
        assert eval_expr(expr, {"x": 3, "y": 1}) == 13

    def test_symbols_of(self):
        expr = App("add", (X, App("mul", (Y, X))))
        assert symbols_of(expr) == (X, Y)

    def test_symbols_of_concrete(self):
        assert symbols_of(App("add", (1, 2))) == ()


class TestSolving:
    def test_trivial(self):
        assert solve([]) == {}

    def test_single_constraint(self):
        model = solve([Constraint(App("eq", (X, 5)), True)])
        assert model == {"x": 5}

    def test_unsat(self):
        cs = [Constraint(App("eq", (X, 5)), True),
              Constraint(App("eq", (X, 2)), True)]
        assert solve(cs) is None

    def test_negated(self):
        model = solve([Constraint(App("ltu", (X, 7)), False)])
        assert model == {"x": 7}

    def test_joint_constraints(self):
        cs = [Constraint(App("eq", (App("add", (X, Y)), 8)), True)]
        model = solve(cs)
        assert model["x"] + model["y"] == 8

    def test_domain_explosion_guarded(self):
        big = [Sym(f"s{k}", tuple(range(64))) for k in range(4)]
        expr = App("add", tuple(big))
        with pytest.raises(ReproError):
            solve([Constraint(expr, True)])

    def test_feasible_values(self):
        vals = feasible_values(App("add", (X, 10)),
                               [Constraint(App("ltu", (X, 3)), True)])
        assert vals == [10, 11, 12]


class TestSolvingEdgeCases:
    """The bounded solver's boundary behaviours: domain exhaustion,
    contradictions, and the degenerate no-symbol cases."""

    def test_feasible_values_domain_explosion_guarded(self):
        # 64**4 joint assignments > MAX_MODELS: enumeration must refuse
        # (honest ReproError), not silently sample.
        big = [Sym(f"s{k}", tuple(range(64))) for k in range(4)]
        with pytest.raises(ReproError):
            feasible_values(App("add", tuple(big)), [])

    def test_feasible_values_at_exact_cap_still_enumerates(self):
        from repro.pitchfork.symex import MAX_MODELS
        syms = [Sym(f"t{k}", tuple(range(16))) for k in range(4)]
        assert 16 ** 4 == MAX_MODELS
        vals = feasible_values(
            syms[0], [Constraint(App("eq", (s, 0)), True)
                      for s in syms[1:]])
        assert vals == list(range(16))

    def test_feasible_values_contradiction_is_empty(self):
        vals = feasible_values(
            X, [Constraint(App("eq", (X, 1)), True),
                Constraint(App("eq", (X, 2)), True)])
        assert vals == []

    def test_feasible_values_concrete_expression(self):
        assert feasible_values(App("add", (3, 4)), []) == [7]

    def test_solve_contradiction_without_symbols(self):
        # ``0 != 0`` has no symbols to search over — must be None, not
        # an empty model.
        assert solve([Constraint(0, True)]) is None
        assert solve([Constraint(App("sub", (5, 5)), True)]) is None

    def test_solve_tautology_without_symbols(self):
        assert solve([Constraint(1, True), Constraint(0, False)]) == {}

    def test_solve_extra_symbols_land_in_the_model(self):
        # An unconstrained extra symbol still gets an assignment (the
        # runner uses this for registers never mentioned in a path
        # constraint).
        model = solve([Constraint(App("eq", (X, 2)), True)],
                      extra_symbols=[Y])
        assert model["x"] == 2 and model["y"] in Y.domain

    def test_solve_exhausts_whole_domain_before_unsat(self):
        # Every x in 0..7 violates ``x != x`` — None only after the
        # full sweep.
        assert solve([Constraint(App("eq", (X, X)), False)]) is None


class TestEvaluator:
    def test_concrete_fast_path(self):
        ev = SymbolicEvaluator()
        out = ev.evaluate("add", [Value(2), Value(3, SECRET)])
        assert out.val == 5 and out.label == SECRET

    def test_symbolic_application(self):
        ev = SymbolicEvaluator()
        out = ev.evaluate("add", [Value(X), Value(1)])
        assert out.val == App("add", (X, 1))

    def test_truth_forks_on_symbolic(self):
        ev = SymbolicEvaluator()
        with pytest.raises(Fork):
            ev.truth(Value(X))

    def test_truth_uses_decisions(self):
        ev = SymbolicEvaluator(decisions={X: True})
        assert ev.truth(Value(X)) is True

    def test_concretize_raises_then_uses_cache(self):
        ev = SymbolicEvaluator()
        with pytest.raises(NeedConcretization):
            ev.concretize(Value(X))
        ev.concretizations[X] = 4
        assert ev.concretize(Value(X)) == 4

    def test_concretize_compound_address_carries_the_expr(self):
        # A symbolic *address expression* (not a bare symbol) must
        # surface the full expression so the runner can solve for it.
        ev = SymbolicEvaluator()
        addr = App("add", (X, 0x40))
        with pytest.raises(NeedConcretization) as err:
            ev.concretize(Value(addr))
        assert err.value.expr == addr

    def test_symbolic_load_address_forces_concretization(self):
        # Machine-level: stepping a load whose address register is
        # symbolic raises NeedConcretization out of the evaluator
        # (the runner then splits over feasible addresses).
        prog = assemble("""
            %rb = load [0x40, %ra]
            halt
        """)
        mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]))
        cfg = Config.initial({"ra": Value(Sym("a", (0, 1, 2, 3)))},
                             mem, pc=1)
        from repro.core import execute, fetch
        machine = Machine(prog, evaluator=SymbolicEvaluator())
        after, _ = machine.step(cfg, fetch())
        with pytest.raises(NeedConcretization):
            machine.step(after, execute(1))


class TestRunner:
    def _fig1(self):
        prog = assemble("""
            br gt, 4, %ra -> 2, 4
            %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
            halt
        """)
        mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                     ("B", 4, PUBLIC, None),
                     ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))
        cfg = Config.initial({"ra": Value(Sym("x", tuple(range(12))))},
                             mem, pc=1)
        return prog, cfg

    def test_branch_splits_worlds(self):
        prog, cfg = self._fig1()
        from repro.core import execute, fetch
        runner = SymbolicRunner(prog)
        worlds = runner.run(cfg, (fetch(True), execute(1)))
        # one world per branch outcome, each with one constraint
        assert len(worlds) == 2
        truthies = {w.constraints[0].truthy for w in worlds}
        assert truthies == {True, False}

    def test_every_world_is_satisfiable(self):
        prog, cfg = self._fig1()
        from repro.core import execute, fetch
        runner = SymbolicRunner(prog)
        schedule = (fetch(True), fetch(), fetch(), execute(2), execute(3))
        for world in runner.run(cfg, schedule):
            assert world.model() is not None

    def test_worlds_agree_with_concrete_replay(self):
        """Instantiating a world's model and replaying concretely gives
        the same trace prefix (soundness of the symbolic replay)."""
        prog, cfg = self._fig1()
        from repro.core import execute, fetch
        runner = SymbolicRunner(prog)
        schedule = (fetch(True), fetch(), fetch(), execute(2), execute(3))
        for world in runner.run(cfg, schedule):
            model = world.model()
            concrete = Config.initial(
                {"ra": Value(model["x"])}, cfg.mem, pc=1)
            machine = Machine(prog)
            try:
                res = run(machine, concrete, schedule[:world.consumed],
                          record_steps=False)
            except Exception:
                continue
            assert res.trace == tuple(world.trace)


class TestPipeline:
    def test_fig1_symbolic_finds_oob_model(self):
        prog = assemble("""
            br gt, 4, %ra -> 2, 4
            %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
            halt
        """)
        mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                     ("B", 4, PUBLIC, None),
                     ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))
        cfg = Config.initial({"ra": Value(Sym("x", tuple(range(12))))},
                             mem, pc=1)
        findings = analyze_symbolic(prog, cfg, bound=12, fwd_hazards=False)
        assert findings
        # the solved model is an out-of-bounds index
        assert all(f.model["x"] >= 4 for f in findings)

    def test_fenced_program_has_no_findings(self):
        prog = assemble("""
            br gt, 4, %ra -> 2, 5
            fence
            %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
            halt
        """)
        mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                     ("B", 4, PUBLIC, None),
                     ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))
        cfg = Config.initial({"ra": Value(Sym("x", tuple(range(12))))},
                             mem, pc=1)
        assert analyze_symbolic(prog, cfg, bound=12) == []

    def test_concrete_inputs_still_work(self):
        """The symbolic pipeline degrades to concrete analysis."""
        prog = assemble("""
            br gt, 4, %ra -> 2, 4
            %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
            halt
        """)
        mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                     ("B", 4, PUBLIC, None),
                     ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))
        cfg = Config.initial({"ra": 9}, mem, pc=1)
        findings = analyze_symbolic(prog, cfg, bound=12, fwd_hazards=False)
        assert findings and findings[0].model == {}

    def test_representative_config(self):
        mem = Memory().write(0x40, Value(Sym("m", (3, 4)), SECRET))
        cfg = Config.initial({"ra": Value(Sym("x", (7, 8)))}, mem, pc=1)
        rep = representative_config(cfg)
        assert rep.reg("ra").val == 7
        assert rep.mem.read(0x40) == Value(3, SECRET)
