"""CLI smoke tests for ``--subsume``/``--no-subsume`` (PR satellite).

Pins the flag's reach (analyze, litmus, repair), its interaction with
the ``--check`` exit-code contract (0 clean / 1 violation / 2 coverage
/ 3 usage), the symbolic back end's explicit refusal
(``subsume_ignored``), and — the cache-compatibility bar — that adding
the knob did not invalidate any existing ``ResultStore`` key: a
defaulted ``subsume=False`` is omitted from the canonical options, so
pre-PR reports stay addressable.
"""

import json

import pytest

from repro.api.cli import main
from repro.api.project import AnalysisOptions
from repro.serve.keys import canonical_options, store_key


class TestAnalyzeFlag:
    def test_subsume_insecure_exits_1(self, capsys):
        assert main(["analyze", "kocher_01", "--subsume", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["details"]["subsume"] is True
        assert data["subsumption"]["enabled"] is True
        assert data["schema_version"] == 8

    def test_no_subsume_insecure_exits_1(self, capsys):
        assert main(["analyze", "kocher_01", "--no-subsume",
                     "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["details"]["subsume"] is False
        assert data["subsumption"]["enabled"] is False
        assert data["subsumption"]["states_subsumed"] == 0

    def test_subsume_secure_exits_0(self, capsys):
        assert main(["analyze", "v1_fig8_fence", "--subsume",
                     "--check"]) == 0
        out = capsys.readouterr().out
        assert "SECURE" in out

    def test_same_verdict_both_ways(self, capsys):
        codes = {}
        for flag in ("--subsume", "--no-subsume"):
            codes[flag] = main(["analyze", "v1_fig8_fence", flag,
                                "--json"])
            data = json.loads(capsys.readouterr().out)
            codes[flag] = (codes[flag], data["status"],
                           [v["observation"] for v in data["violations"]])
        assert codes["--subsume"] == codes["--no-subsume"]

    def test_render_reports_subsumed_count(self, capsys):
        """Human output mentions subsumption only when it fired."""
        assert main(["analyze", "kocher_05", "--subsume",
                     "--max-paths", "20000"]) == 1
        out = capsys.readouterr().out
        # kocher_05 at its default bound may or may not subsume; the
        # render contract is: the marker appears iff the count is live.
        assert ("subsumed" in out) == (", 0 subsumed" not in out and
                                       "subsumed" in out)

    def test_usage_error_exits_3(self, capsys):
        assert main(["analyze", "no_such_case_xyz", "--subsume"]) == 3

    def test_symbolic_ignores_flag(self, capsys):
        code = main(["analyze", "kocher_01", "-a", "symbolic",
                     "--subsume", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["details"]["subsume_ignored"] is True

    def test_repair_accepts_flag(self, capsys):
        assert main(["repair", "kocher_01", "--subsume", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["status"] in ("repaired", "already-secure")


class TestLitmusFlag:
    def test_litmus_suite_with_subsume(self, capsys):
        """A whole suite still classifies every case as expected."""
        assert main(["litmus", "aliasing", "--subsume", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert not data["mismatches"]

    def test_litmus_check_exit_1_on_flagged(self, capsys):
        assert main(["litmus", "aliasing", "--subsume", "--check"]) == 1
        capsys.readouterr()


class TestStoreKeyCompatibility:
    """Adding the subsume knob must not re-key the result store."""

    FP = "fp0123456789abcdef"

    def test_defaulted_subsume_is_omitted(self):
        assert ("subsume", False) not in canonical_options(
            AnalysisOptions())
        assert ("subsume", False) not in canonical_options(
            AnalysisOptions(subsume=False))

    def test_pre_knob_keys_unchanged(self):
        """The canonical tuple (and so the store key) of every options
        shape expressible before this PR is byte-identical to what a
        post-PR writer computes for the same request."""
        shapes = [AnalysisOptions(),
                  AnalysisOptions(bound=40),
                  AnalysisOptions(bound=40, prune="full", shards=2),
                  AnalysisOptions.paper()]
        for options in shapes:
            explicit = options.with_(subsume=False)
            assert canonical_options(options) == \
                canonical_options(explicit)
            assert store_key("pitchfork", self.FP, options) == \
                store_key("pitchfork", self.FP, explicit)

    def test_enabled_subsume_gets_its_own_key(self):
        plain = store_key("pitchfork", self.FP, AnalysisOptions())
        subs = store_key("pitchfork", self.FP,
                         AnalysisOptions(subsume=True))
        assert plain != subs
        assert ("subsume", True) in canonical_options(
            AnalysisOptions(subsume=True))

    def test_round_trip_back_to_default_is_omitted(self):
        options = AnalysisOptions(subsume=True).with_(subsume=False)
        assert canonical_options(options) == \
            canonical_options(AnalysisOptions())
