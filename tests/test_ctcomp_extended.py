"""Extended MiniCT tests: fence pipeline, selects, overrides, and the
compiled modules' interaction with the detector."""

import pytest

from repro.core import (Jump, Machine, PUBLIC, SECRET, run_sequential,
                        secret_observations)
from repro.ctcomp import (ArrayDecl, Assign, BinOp, Const, FenceStmt, Func,
                          If, Index, Module, Select, StoreStmt, UnOp, Var,
                          VarDecl, While, compile_module, count_fences)
from repro.pitchfork import analyze


def _module(stmts, variables=(), arrays=()):
    return Module("m", funcs=(Func("main", tuple(stmts)),),
                  variables=tuple(variables), arrays=tuple(arrays))


class TestSelectAndUnops:
    def test_select_expression(self):
        mod = _module(
            [Assign("y", Select(BinOp("ltu", Var("x"), Const(3)),
                                Const(10), Const(20)))],
            variables=[VarDecl("x", PUBLIC, 1), VarDecl("y", PUBLIC)])
        cm = compile_module(mod)
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert seq.final.reg(cm.var_regs["y"]).val == 10

    def test_select_is_branch_free_on_secret(self):
        mod = _module(
            [Assign("y", Select(BinOp("ltu", Var("k"), Const(3)),
                                Const(10), Const(20)))],
            variables=[VarDecl("k", SECRET, 1), VarDecl("y", SECRET)])
        cm = compile_module(mod, style="c")   # even the C pipeline!
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert not any(isinstance(o, Jump) and o.label == SECRET
                       for o in seq.trace)

    def test_unop_mask(self):
        mod = _module(
            [Assign("m", UnOp("mask", Var("x"))),
             Assign("y", BinOp("and", Var("v"), Var("m")))],
            variables=[VarDecl("x", PUBLIC, 1), VarDecl("m", PUBLIC),
                       VarDecl("v", PUBLIC, 0xAB), VarDecl("y", PUBLIC)])
        cm = compile_module(mod)
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert seq.final.reg(cm.var_regs["y"]).val == 0xAB

    def test_unop_not(self):
        mod = _module(
            [Assign("y", UnOp("neg", Var("x")))],
            variables=[VarDecl("x", PUBLIC, 1), VarDecl("y", PUBLIC)])
        cm = compile_module(mod)
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert seq.final.reg(cm.var_regs["y"]).val == (1 << 64) - 1


class TestFencePipeline:
    def _guarded_access(self):
        # layout: a (public) directly followed by k (secret), so the
        # speculative out-of-bounds a[5] reads key material.
        return _module(
            [If(BinOp("ltu", Var("x"), Const(4)),
                then=(Assign("v", Index("a", Var("x"))),
                      Assign("t", Index("b", Var("v")))))],
            variables=[VarDecl("x", PUBLIC, 5), VarDecl("v", SECRET),
                       VarDecl("t", SECRET)],
            arrays=[ArrayDecl("a", 4, PUBLIC, (1, 2, 3, 0)),
                    ArrayDecl("k", 4, SECRET, (7, 7, 7, 7)),
                    ArrayDecl("b", 64, PUBLIC, None)])

    def test_unfenced_compile_is_vulnerable(self):
        cm = compile_module(self._guarded_access(), style="c")
        report = analyze(cm.program, cm.initial_config(), bound=16,
                         fwd_hazards=False)
        assert not report.secure

    def test_fenced_compile_is_secure(self):
        cm = compile_module(self._guarded_access(), style="c", fences=True)
        assert count_fences(cm.program) >= 2
        report = analyze(cm.program, cm.initial_config(), bound=16,
                         fwd_hazards=False)
        assert report.secure

    def test_fenced_compile_preserves_semantics(self):
        plain = compile_module(self._guarded_access(), style="c")
        fenced = compile_module(self._guarded_access(), style="c",
                                fences=True)
        s0 = run_sequential(Machine(plain.program), plain.initial_config())
        s1 = run_sequential(Machine(fenced.program),
                            fenced.initial_config())
        assert s0.final.regs == s1.final.regs

    def test_fences_in_while_loops(self):
        mod = _module(
            [Assign("i", Const(0)),
             While(BinOp("ltu", Var("i"), Const(3)),
                   (Assign("i", BinOp("add", Var("i"), Const(1))),))],
            variables=[VarDecl("i", PUBLIC)])
        cm = compile_module(mod, fences=True)
        assert count_fences(cm.program) >= 1
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert seq.final.reg(cm.var_regs["i"]).val == 3


class TestOverrides:
    def test_var_override(self):
        mod = _module(
            [Assign("y", BinOp("add", Var("x"), Const(1)))],
            variables=[VarDecl("x", PUBLIC, 1), VarDecl("y", PUBLIC)])
        cm = compile_module(mod)
        cfg = cm.initial_config(var_overrides={"x": 41})
        seq = run_sequential(Machine(cm.program), cfg)
        assert seq.final.reg(cm.var_regs["y"]).val == 42

    def test_mem_override(self):
        mod = _module(
            [Assign("y", Index("a", Const(0)))],
            variables=[VarDecl("y", SECRET)],
            arrays=[ArrayDecl("a", 2, SECRET, (1, 2))])
        cm = compile_module(mod)
        cfg = cm.initial_config(mem_overrides={"a": [9, 9]})
        seq = run_sequential(Machine(cm.program), cfg)
        assert seq.final.reg(cm.var_regs["y"]).val == 9

    def test_label_preserved_under_override(self):
        mod = _module(
            [Assign("y", Index("a", Const(0)))],
            variables=[VarDecl("y", SECRET)],
            arrays=[ArrayDecl("a", 2, SECRET, (1, 2))])
        cm = compile_module(mod)
        cfg = cm.initial_config(mem_overrides={"a": [9, 9]})
        assert cfg.mem.read(cm.addr_of("a")).label == SECRET

    def test_pinned_array_base(self):
        mod = _module(
            [Assign("y", Index("a", Const(0)))],
            variables=[VarDecl("y", PUBLIC)],
            arrays=[ArrayDecl("a", 2, PUBLIC, (5, 6), base=0x200)])
        cm = compile_module(mod)
        assert cm.addr_of("a") == 0x200
        seq = run_sequential(Machine(cm.program), cm.initial_config())
        assert seq.final.reg(cm.var_regs["y"]).val == 5


class TestSCTOnCompiledModules:
    def test_fact_build_satisfies_sct_definition(self):
        """Definition 3.1 checked on a FaCT-compiled module."""
        from repro.core import check_sct, secret_variations
        from repro.pitchfork import enumerate_schedules
        mod = _module(
            [Assign("pad", Index("out", Const(3))),
             If(BinOp("gt", Var("pad"), Const(1)),
                then=(Assign("pad", Const(1)),))],
            variables=[VarDecl("pad", SECRET)],
            arrays=[ArrayDecl("out", 4, SECRET, (9, 9, 9, 9))])
        cm = compile_module(mod, style="fact")
        machine = Machine(cm.program)
        config = cm.initial_config()
        schedules = enumerate_schedules(machine, config, bound=10,
                                        fwd_hazards=False)
        result = check_sct(machine, config, schedules)
        assert result.ok

    def test_c_build_violates_sct_definition(self):
        from repro.core import check_sct
        from repro.pitchfork import enumerate_schedules
        mod = _module(
            [Assign("pad", Index("out", Const(3))),
             If(BinOp("gt", Var("pad"), Const(1)),
                then=(Assign("pad", Const(1)),))],
            variables=[VarDecl("pad", SECRET)],
            arrays=[ArrayDecl("out", 4, SECRET, (9, 9, 9, 9))])
        cm = compile_module(mod, style="c")
        machine = Machine(cm.program)
        config = cm.initial_config()
        schedules = enumerate_schedules(machine, config, bound=10,
                                        fwd_hazards=False)
        result = check_sct(machine, config, schedules)
        assert not result.ok
