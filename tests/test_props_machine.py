"""Property-based tests of the machine's metatheory over random
programs and schedules (Appendix B, with hypothesis driving the
randomness)."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Machine, run
from repro.core.observations import Rollback
from repro.verify import (check_consistency, check_determinism,
                          check_label_stability,
                          check_sequential_equivalence, check_tool_soundness,
                          random_config, random_program, random_schedule)

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _instance(seed: int):
    rng = random.Random(seed)
    program = random_program(rng, length=10)
    machine = Machine(program)
    config = random_config(rng)
    schedule, _final = random_schedule(machine, config, rng)
    return machine, config, schedule, rng


class TestMetatheoryProps:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_determinism(self, seed):
        machine, config, schedule, _rng = _instance(seed)
        assert check_determinism(machine, config, schedule)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_sequential_equivalence(self, seed):
        machine, config, schedule, _rng = _instance(seed)
        assert check_sequential_equivalence(machine, config, schedule)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_label_stability(self, seed):
        machine, config, schedule, _rng = _instance(seed)
        assert check_label_stability(machine, config, schedule)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_consistency(self, seed):
        machine, config, schedule, rng = _instance(seed)
        other, _ = random_schedule(machine, config, rng)
        assert check_consistency(machine, config, schedule, other)

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_tool_soundness(self, seed):
        machine, config, schedule, _rng = _instance(seed)
        assert check_tool_soundness(machine, config, schedule, bound=12)


class TestStructuralInvariants:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_buffer_contiguous_along_every_run(self, seed):
        machine, config, schedule, _rng = _instance(seed)
        current = config
        for d in schedule:
            current, _leak = machine.step(current, d)
            idx = list(current.buf.indices())
            assert not idx or idx == list(range(idx[0], idx[0] + len(idx)))

    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_pc_tracks_buffer_on_rollback(self, seed):
        """After a rollback the machine refetches: pc must be a real
        program point or a halt point, never garbage below 1."""
        machine, config, schedule, _rng = _instance(seed)
        current = config
        for d in schedule:
            current, leak = machine.step(current, d)
            if any(isinstance(o, Rollback) for o in leak):
                assert current.pc >= 0

    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_trace_grows_monotonically(self, seed):
        machine, config, schedule, _rng = _instance(seed)
        res = run(machine, config, schedule)
        assert sum(len(s.leakage) for s in res.steps) == len(res.trace)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_retire_only_commits_architecturally(self, seed):
        """Execute steps never change ρ or µ; only retire does."""
        from repro.core.directives import Execute
        machine, config, schedule, _rng = _instance(seed)
        current = config
        for d in schedule:
            before = current
            current, _leak = machine.step(current, d)
            if isinstance(d, Execute):
                assert current.regs == before.regs
                assert current.mem == before.mem
