"""Tests for the figure-style execution renderer."""

from repro.core import (Machine, render_execution, render_trace, run,
                        Read, Rollback, PUBLIC, SECRET)
from repro.litmus import find_case


class TestRenderExecution:
    def test_fig1_table_shape(self):
        case = find_case("v1_fig1")
        res = run(Machine(case.program), case.config(),
                  case.attack_schedule)
        table = render_execution(res)
        assert "Directive" in table and "Leakage" in table
        assert "read 73_public" in table
        assert "read 230_secret" in table

    def test_quiet_steps_can_be_hidden(self):
        case = find_case("v1_fig1")
        res = run(Machine(case.program), case.config(),
                  case.attack_schedule)
        full = render_execution(res, show_quiet_steps=True)
        quiet = render_execution(res, show_quiet_steps=False)
        assert full.count("\n") > quiet.count("\n")
        assert "fetch" not in quiet  # fetches emit no leakage

    def test_rollback_effect_shows_squash(self):
        case = find_case("v4_fig7")
        res = run(Machine(case.program), case.config(),
                  case.attack_schedule)
        table = render_execution(res)
        assert "∉ buf" in table        # squashed indices reported
        assert "pc := 3" in table      # and the rollback target

    def test_empty_run(self):
        case = find_case("v1_fig1")
        res = run(Machine(case.program), case.config(), [])
        assert render_execution(res) == "(no steps)"


class TestRenderTrace:
    def test_empty(self):
        assert render_trace(()) == "(empty)"

    def test_sequence(self):
        text = render_trace((Read(0x40, PUBLIC), Rollback(),
                             Read(0x44, SECRET)))
        assert text == "read 64_public; rollback; read 68_secret"
