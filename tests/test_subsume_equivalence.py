"""Redundant-state subsumption differential suite: the PR's strict bar.

Turning ``subsume=True`` on must leave the flagged violation
*observation* set exactly as the un-subsumed run flags it — on the full
litmus registry (every registered case at its ground-truth knobs),
across every search strategy, every partial-order-reduction level,
serial and sharded, and on randomized programs.  A subsumed fork arm's
own observations were already recorded before the prune (and flushed if
its path never completes), and its *future* is covered by the canonical
state's future because the step relation is a function of configuration
and directive (Theorem B.1) and the canonical entry's residual
obligations are the same or weaker — so only duplicated suffixes
disappear, never observations.

Cost is pinned too: subsumption never steps *more* than the plain run,
and on re-convergent programs it must actually fire (states_subsumed >
0) and shrink the step count.
"""

import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.machine import Machine
from repro.engine import available_strategies
from repro.litmus import all_cases, find_case
from repro.pitchfork import (ExplorationOptions, Explorer, ShardedExplorer,
                             observation_set)
from repro.verify.generators import random_config, random_program

STRATEGIES = available_strategies()
LEVELS = ("none", "sleepset", "full")
RANDOM_PROGRAMS = 20


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolExecutor(max_workers=4) as executor:
        yield executor


def _case_options(case, **kw):
    kw.setdefault("strategy", "dfs")
    kw.setdefault("bound", case.min_bound)
    kw.setdefault("fwd_hazards", case.needs_fwd_hazards)
    kw.setdefault("explore_aliasing", case.needs_aliasing)
    kw.setdefault("jmpi_targets", case.jmpi_targets)
    kw.setdefault("rsb_targets", case.rsb_targets)
    return ExplorationOptions(**kw)


def _run(case, options, shards=1, pool=None, stop_at_first=False):
    machine = Machine(case.program, rsb_policy=case.rsb_policy)
    if shards == 1:
        explorer = Explorer(machine, options)
    else:
        explorer = ShardedExplorer(machine, options, shards=shards,
                                   pool=pool)
    return explorer.explore(case.make_config(), stop_at_first=stop_at_first)


def _obs(result):
    return observation_set(result.violations)


@pytest.fixture(scope="module")
def plain_reference():
    """Observation sets without subsumption, per case × prune level."""
    out = {}
    for case in all_cases():
        for prune in LEVELS:
            result = _run(case, _case_options(case, prune=prune))
            out[case.name, prune] = _obs(result)
    return out


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("prune", LEVELS)
def test_litmus_registry_equivalence(prune, strategy, plain_reference):
    """subsume=True flags the identical observation set as subsume=False
    on the full registry, at every prune level × search strategy."""
    mismatches = []
    for case in all_cases():
        options = _case_options(case, strategy=strategy, seed=5,
                                prune=prune, subsume=True)
        result = _run(case, options)
        if _obs(result) != plain_reference[case.name, prune]:
            mismatches.append(case.name)
        assert result.subsumption is not None and \
            result.subsumption.enabled, case.name
    assert not mismatches, (
        f"subsume=True with prune={prune} strategy={strategy} diverged "
        f"from the plain run on: {mismatches}")


@pytest.mark.parametrize("prune", LEVELS)
def test_litmus_registry_sharded_equivalence(prune, pool, plain_reference):
    """Each shard keeps its own SeenStates table; the merged observation
    set still matches the plain serial run at every prune level."""
    mismatches = []
    for case in all_cases():
        options = _case_options(case, prune=prune, subsume=True)
        result = _run(case, options, shards=4, pool=pool)
        if _obs(result) != plain_reference[case.name, prune]:
            mismatches.append(case.name)
        assert result.subsumption is not None and \
            result.subsumption.enabled, case.name
    assert not mismatches, (
        f"sharded subsume=True with prune={prune} diverged from the "
        f"plain serial run on: {mismatches}")


def test_litmus_stop_at_first_verdicts_agree(plain_reference):
    """The early-exit path (analyze's default) reaches the same secure
    verdict with and without subsumption."""
    for case in all_cases():
        plain = bool(plain_reference[case.name, "sleepset"])
        result = _run(case, _case_options(case, subsume=True),
                      stop_at_first=True)
        assert bool(result.violations) == plain, case.name


def test_random_programs_equivalence():
    """>= 20 random programs: subsume on/off observation sets agree at
    every prune level, and subsumption never steps more."""
    for seed in range(RANDOM_PROGRAMS):
        rng = random.Random(seed)
        program = random_program(rng, length=rng.randrange(8, 15))
        config = random_config(rng)
        machine = Machine(program)
        for level in LEVELS:
            plain = Explorer(machine, ExplorationOptions(
                bound=8, prune=level)).explore(config, stop_at_first=False)
            subs = Explorer(machine, ExplorationOptions(
                bound=8, prune=level, subsume=True)).explore(
                    config, stop_at_first=False)
            assert _obs(subs) == _obs(plain), \
                f"program seed {seed}, prune={level}"
            assert subs.applied_steps <= plain.applied_steps, \
                f"program seed {seed}, prune={level}"
            assert subs.subsumption.states_subsumed == \
                subs.engine.states_subsumed, f"program seed {seed}"


class TestStrictReduction:
    """Subsumption must actually pay: never more steps anywhere, and
    strictly fewer (with a live states_subsumed counter) on
    re-convergent programs."""

    @pytest.fixture(scope="class")
    def kocher_runs(self):
        out = {}
        for case in all_cases():
            if not case.name.startswith("kocher"):
                continue
            runs = {}
            for subsume in (False, True):
                options = _case_options(case, bound=20, fwd_hazards=True,
                                        subsume=subsume)
                runs[subsume] = _run(case, options)
            out[case.name] = runs
        return out

    def test_never_more_steps(self, kocher_runs):
        for name, runs in kocher_runs.items():
            assert runs[True].applied_steps <= runs[False].applied_steps, \
                name
            assert runs[True].paths_explored <= \
                runs[False].paths_explored, name

    def test_counters_consistent(self, kocher_runs):
        for name, runs in kocher_runs.items():
            off, on = runs[False], runs[True]
            assert off.subsumption is not None
            assert not off.subsumption.enabled
            assert off.subsumption.states_subsumed == 0, name
            assert on.subsumption.enabled, name
            assert on.subsumption.states_subsumed == \
                on.engine.states_subsumed, name
            assert on.subsumption.states_seen >= on.paths_explored - 1, name

    def test_fires_on_reconvergent_control_flow(self, kocher_runs):
        """At bound 20 several Kocher gadgets re-converge after the
        bounds check; the table must catch at least some of them."""
        fired = [name for name, runs in kocher_runs.items()
                 if runs[True].subsumption.states_subsumed > 0]
        assert fired, "subsumption never fired on the Kocher suite"
        for name in fired:
            runs = kocher_runs[name]
            assert runs[True].applied_steps < runs[False].applied_steps, \
                name


class TestDownstreamConsumers:
    """The knob threads through the API spine and back out again."""

    def test_detector_subsume_threading(self):
        from repro.api import Project, Report
        report = Project.from_litmus("kocher_05").run(
            "pitchfork", subsume=True, stop_at_first=False)
        assert report.details["subsume"] is True
        assert report.subsumption is not None
        assert report.subsumption["enabled"] is True
        assert report.subsumption["states_seen"] > 0
        restored = Report.from_json(report.to_json())
        assert restored == report
        assert restored.subsumption == report.subsumption

    def test_detector_default_off(self):
        from repro.api import Project
        report = Project.from_litmus("kocher_05").run(
            "pitchfork", stop_at_first=False)
        assert report.details["subsume"] is False
        assert report.subsumption is not None
        assert report.subsumption["enabled"] is False
        assert report.subsumption["states_subsumed"] == 0

    def test_symbolic_ignores_subsume(self):
        """Concrete-state subsumption is unsound for symbolic replay
        (equal concrete configs may carry different path constraints),
        so the symbolic analysis ignores the knob and says so."""
        from repro.api import Project
        project = Project.from_litmus("kocher_01")
        plain = project.run("symbolic")
        subs = project.run("symbolic", subsume=True)
        assert subs.details.get("subsume_ignored") is True
        assert plain.status == subs.status
        assert plain.violations == subs.violations

    def test_two_phase_and_repair_accept_knob(self):
        from repro.api import Project
        for analysis in ("two-phase", "repair"):
            plain = Project.from_litmus("kocher_01").run(analysis)
            subs = Project.from_litmus("kocher_01").run(analysis,
                                                        subsume=True)
            assert plain.status == subs.status, analysis

    def test_invalid_subsume_rejected(self):
        from repro.api import AnalysisOptions
        with pytest.raises(ValueError, match="subsume"):
            AnalysisOptions(subsume="yes")
        with pytest.raises(ValueError, match="subsume"):
            ExplorationOptions(subsume=1)

    def test_schedule_enumeration_accepts_knob(self):
        """Materialised schedule sets shrink under subsumption but stay
        a subset of the plain enumeration."""
        from repro.pitchfork import enumerate_schedules
        case = find_case("kocher_05")
        machine = Machine(case.program, rsb_policy=case.rsb_policy)
        plain = enumerate_schedules(machine, case.make_config(), bound=20)
        subs = enumerate_schedules(machine, case.make_config(), bound=20,
                                   subsume=True)
        assert len(subs) <= len(plain)
        assert set(map(tuple, subs)) <= set(map(tuple, plain))
