"""Machine tests: indirect jumps (Appendix A.1)."""

import pytest

from repro.core import (Config, Jump, Machine, Memory, RETIRE, Rollback,
                        StuckError, TJmpi, TJump, execute, fetch, run)
from repro.core.isa import Fence, Jmpi, Load, Op
from repro.core.lattice import PUBLIC, SECRET
from repro.core.program import Program
from repro.core.values import Reg, Value, operands, secret


def _machine():
    return Machine(Program({
        1: Jmpi(operands(12, "rb")),
        17: Op(Reg("rx"), "mov", operands(1), 18),
        20: Op(Reg("ry"), "mov", operands(2), 21),
    }, entry=1))


def _cfg(**regs):
    defaults = {"rb": 8}
    defaults.update(regs)
    return Config.initial(defaults, Memory(), pc=1)


class TestJmpiFetch:
    def test_fetch_records_guess_and_redirects(self):
        m = _machine()
        c, _ = m.step(_cfg(), fetch(17))
        assert c.pc == 17
        assert c.buf[1] == TJmpi(operands(12, "rb"), 17)

    def test_plain_fetch_stuck(self):
        m = _machine()
        with pytest.raises(StuckError):
            m.step(_cfg(), fetch())

    def test_bool_fetch_stuck(self):
        m = _machine()
        with pytest.raises(StuckError):
            m.step(_cfg(), fetch(True))


class TestJmpiExecute:
    def test_correct_guess_resolves(self):
        m = _machine()
        res = run(m, _cfg(), [fetch(20), execute(1)])
        assert res.final.buf[1] == TJump(20)
        assert res.trace == (Jump(20, PUBLIC),)
        assert res.final.pc == 20

    def test_incorrect_guess_rolls_back(self):
        m = _machine()
        res = run(m, _cfg(), [fetch(17), fetch(), execute(1)])
        assert res.final.buf[1] == TJump(20)
        assert 2 not in res.final.buf          # squashed
        assert res.final.pc == 20
        assert res.trace == (Rollback(), Jump(20, PUBLIC))

    def test_target_label_from_operands(self):
        m = _machine()
        res = run(m, _cfg(rb=secret(8)), [fetch(20), execute(1)])
        (jump,) = res.trace
        assert jump.label == SECRET

    def test_unresolved_operand_stuck(self):
        prog = Program({
            1: Op(Reg("rb"), "add", operands(4, 4), 2),
            2: Jmpi(operands(12, "rb")),
            20: Op(Reg("ry"), "mov", operands(2), 21),
        })
        m = Machine(prog)
        c = Config.initial({}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(20)])
        with pytest.raises(StuckError):
            m.step(res.final, execute(2))

    def test_jump_retires(self):
        m = _machine()
        res = run(m, _cfg(), [fetch(20), execute(1), RETIRE])
        assert res.final.is_terminal()

    def test_fence_blocks_jmpi(self):
        prog = Program({
            1: Fence(2),
            2: Jmpi(operands(20)),
            20: Op(Reg("ry"), "mov", operands(2), 21),
        })
        m = Machine(prog)
        c = Config.initial({}, Memory(), 1)
        res = run(m, c, [fetch(), fetch(20)])
        with pytest.raises(StuckError):
            m.step(res.final, execute(2))
