"""Table 2 reproduction tests: the four case studies, both build modes.

The full two-phase evaluation is exercised per variant; the expected
flag pattern is the paper's::

    Case Study                    C    FaCT
    curve25519-donna              -    -
    libsodium secretbox           ✓    -
    OpenSSL ssl3 record validate  ✓    f
    OpenSSL MEE-CBC               ✓    f
"""

import pytest

from repro.casestudies import (all_case_studies, evaluate_variant,
                               render_table2)
from repro.core import Machine, run_sequential, secret_observations

STUDIES = all_case_studies()
VARIANTS = [v for cs in STUDIES for v in cs.variants()]


@pytest.mark.parametrize("variant", VARIANTS, ids=[v.name for v in VARIANTS])
def test_sequentially_constant_time(variant):
    """Every audited implementation is sequentially CT (§4.2.1: the
    case studies 'have been verified to be (sequentially) constant-
    time')."""
    machine = Machine(variant.program)
    seq = run_sequential(machine, variant.config(), max_retires=3000)
    assert not secret_observations(seq.trace)
    assert seq.final.is_terminal()


@pytest.mark.parametrize("variant", VARIANTS, ids=[v.name for v in VARIANTS])
def test_table2_flag(variant):
    assert evaluate_variant(variant) == variant.expected


class TestTable2Shape:
    def test_paper_flag_pattern(self):
        expected = {
            "curve25519-donna": {"C": "clean", "FaCT": "clean"},
            "libsodium secretbox": {"C": "v1", "FaCT": "clean"},
            "OpenSSL ssl3 record validate": {"C": "v1", "FaCT": "f"},
            "OpenSSL MEE-CBC": {"C": "v1", "FaCT": "f"},
        }
        got = {cs.name: {"C": cs.c.expected, "FaCT": cs.fact.expected}
               for cs in STUDIES}
        assert got == expected

    def test_render_table(self):
        results = {cs.name: {"C": cs.c.expected, "FaCT": cs.fact.expected}
                   for cs in STUDIES}
        text = render_table2(results)
        assert "curve25519-donna" in text
        assert "✓" in text and "f" in text


class TestMEEMechanism:
    """The FaCT MEE violation must be Fig 10's, precisely."""

    def _violation(self):
        from repro.casestudies.mee_cbc import case_study
        from repro.pitchfork import analyze
        v = case_study().fact
        report = analyze(v.program, v.config(), bound=20, fwd_hazards=True)
        assert not report.secure
        return v, report.violations[0]

    def test_leak_is_out_minus_one_or_zero(self):
        from repro.casestudies.mee_cbc import OUT
        _v, violation = self._violation()
        assert violation.observation.addr in (OUT - 1, OUT)

    def test_phase1_misses_it(self):
        from repro.casestudies.mee_cbc import case_study
        from repro.pitchfork import analyze
        v = case_study().fact
        report = analyze(v.program, v.config(), bound=40, fwd_hazards=False)
        assert report.secure

    def test_register_reuse_is_essential(self):
        """Without the %r14 sharing the gadget disappears."""
        import dataclasses
        from repro.casestudies.mee_cbc import mee_fact_module
        from repro.ctcomp import compile_module
        from repro.pitchfork import analyze
        module = mee_fact_module()
        split = dataclasses.replace(
            module,
            variables=tuple(
                dataclasses.replace(v, reg_hint=None)
                for v in module.variables))
        build = compile_module(split, style="fact")
        report = analyze(build.program, build.initial_config(), bound=20,
                         fwd_hazards=True)
        assert report.secure


class TestSecretboxMechanism:
    """The C secretbox violation must be Fig 9's list walk."""

    def test_violation_address_is_key_material(self):
        from repro.casestudies.secretbox import KEYMAT, case_study
        from repro.pitchfork import analyze
        v = case_study().c
        report = analyze(v.program, v.config(), bound=28, fwd_hazards=False)
        assert not report.secure
        leak = report.violations[0].observation
        # the dereferenced 'list' pointer is a key byte
        assert leak.addr in range(0x61, 0x66)

    def test_intact_canary_never_panics_architecturally(self):
        from repro.casestudies.secretbox import case_study
        from repro.core import Jump
        v = case_study().c
        seq = run_sequential(Machine(v.program), v.config(),
                             max_retires=200)
        panic_point = v.program.label("panic")
        assert not any(isinstance(o, Jump) and o.target == panic_point
                       for o in seq.trace)
