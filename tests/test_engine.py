"""Unit tests for the structural-sharing execution core (repro.engine)."""

import copy
import pickle

import pytest

from repro.asm import assemble
from repro.core import (Config, Machine, Memory, PUBLIC, Region, SECRET,
                        Value, run)
from repro.core.directives import Execute, Fetch, Retire
from repro.core.errors import StuckError
from repro.engine import (EMPTY_LOG, EngineStats, ExecutionEngine, Log,
                          MachineState, ScheduleTree)


class TestLog:
    def test_empty(self):
        assert len(EMPTY_LOG) == 0
        assert not EMPTY_LOG
        assert EMPTY_LOG.materialize() == ()

    def test_append_is_persistent(self):
        a = EMPTY_LOG.append(1)
        b = a.append(2)
        c = a.append(3)  # fork: b and c share a
        assert a.materialize() == (1,)
        assert b.materialize() == (1, 2)
        assert c.materialize() == (1, 3)

    def test_extend(self):
        log = EMPTY_LOG.extend([1, 2]).extend([3])
        assert log.materialize() == (1, 2, 3)
        assert len(log) == 3

    def test_materialize_uses_cached_ancestor(self):
        a = EMPTY_LOG.extend(range(100))
        a.materialize()
        b = a.append(100)
        assert b.materialize() == tuple(range(101))

    def test_iter_and_last(self):
        log = EMPTY_LOG.extend("xyz")
        assert list(log) == ["x", "y", "z"]
        assert log.last() == "z"
        with pytest.raises(IndexError):
            EMPTY_LOG.last()


class TestMachineState:
    def test_config_snapshot_is_the_config(self):
        cfg = Config.initial({"ra": 1}, Memory(), 1)
        assert cfg.snapshot() is cfg

    def test_fork_is_independent(self):
        cfg = Config.initial({"ra": 1}, Memory(), 1)
        s = MachineState(cfg)
        s.schedule = s.schedule.append("d1")
        s.delayed.add(3)
        t = s.fork()
        t.schedule = t.schedule.append("d2")
        t.delayed.add(4)
        assert s.schedule.materialize() == ("d1",)
        assert t.schedule.materialize() == ("d1", "d2")
        assert s.delayed == {3}
        assert t.delayed == {3, 4}


class TestOverlayMemory:
    def test_write_shares_base(self):
        base = Memory({i: Value(i) for i in range(100)})
        m2 = base.write(5, Value(99))
        assert base.read(5).val == 5
        assert m2.read(5).val == 99
        assert m2._base is base._base  # storage genuinely shared

    def test_compaction_preserves_contents(self):
        mem = Memory()
        for i in range(200):  # far past the compaction threshold
            mem = mem.write(i, Value(i, SECRET if i % 3 else PUBLIC))
        assert all(mem.read(i).val == i for i in range(200))
        assert len(mem.cells()) == 200

    def test_equality_and_hash_across_overlay_shapes(self):
        a = Memory({1: Value(1)}).write(2, Value(2))
        b = Memory({1: Value(1), 2: Value(2)})
        assert a == b
        assert hash(a) == hash(b)

    def test_regions_survive_writes(self):
        mem = Memory().with_region(Region("A", 0x40, 4, PUBLIC))
        mem = mem.write(0x41, Value(7))
        assert mem.region("A").base == 0x40
        assert mem.region_of(0x41).name == "A"


class TestValueInterning:
    def test_small_ints_shared(self):
        assert Value(7) is Value(7)
        assert Value(7, SECRET) is Value(7, SECRET)
        assert Value(7) is not Value(7, SECRET)

    def test_big_payloads_not_interned_but_equal(self):
        a, b = Value(10**9), Value(10**9)
        assert a == b

    def test_copy_and_pickle_preserve_identity_semantics(self):
        v = Value(7, SECRET)
        assert copy.copy(v) is v
        assert copy.deepcopy(v) is v
        assert pickle.loads(pickle.dumps(v)) == v
        # Unpickling must not corrupt the intern table.
        assert Value(0).val == 0 and Value(0).label is PUBLIC


class TestExecutionEngine:
    def _engine(self):
        machine = Machine(assemble("%ra = op mov, 1\nhalt"))
        return ExecutionEngine(machine), Config.initial({}, Memory(), 1)

    def test_is_a_machine_drop_in(self):
        engine, cfg = self._engine()
        result = run(engine, cfg, (Fetch(None), Execute(1), Retire()))
        assert result.final.reg("ra").val == 1
        assert engine.stats.steps == 3

    def test_trial_then_commit_hits_cache(self):
        engine, cfg = self._engine()
        cfg, _ = engine.step(cfg, Fetch(None))
        assert engine.can(cfg, Execute(1))          # trial executes
        engine.step(cfg, Execute(1))                # commit is a hit
        assert engine.stats.cache_hits == 1

    def test_stuck_results_cached(self):
        engine, cfg = self._engine()
        for _ in range(2):
            with pytest.raises(StuckError):
                engine.step(cfg, Execute(9))
        assert engine.stats.stuck_hits == 1

    def test_fetch_and_retire_bypass_cache(self):
        engine, cfg = self._engine()
        engine.step(cfg, Fetch(None))
        engine.step(cfg, Fetch(None))  # same (config, directive), no hit
        assert engine.stats.cache_hits == 0
        assert engine.stats.steps == 2

    def test_impure_evaluator_disables_cache(self):
        from repro.pitchfork import SymbolicEvaluator
        machine = Machine(assemble("%ra = op mov, 1\nhalt"),
                          evaluator=SymbolicEvaluator())
        engine = ExecutionEngine(machine)
        cfg = Config.initial({}, Memory(), 1)
        cfg1, _ = engine.step(cfg, Fetch(None))
        engine.can(cfg1, Execute(1))
        engine.step(cfg1, Execute(1))
        assert engine.stats.cache_hits == 0

    def test_stats_snapshot_and_avoided(self):
        stats = EngineStats(steps=10, cache_hits=2, stuck_hits=1, reused=4)
        snap = stats.snapshot()
        assert snap == stats and snap is not stats
        assert stats.avoided == 7


class TestScheduleTree:
    def test_trie_shape_and_payloads(self):
        s1 = (Fetch(True), Execute(1), Retire())
        s2 = (Fetch(True), Execute(1), Execute(2))
        s3 = (Fetch(False),)
        tree = ScheduleTree.from_paths(
            [(s1, "p1"), (s2, "p2"), (s3, "p3")])
        assert tree.schedules == (s1, s2, s3)
        assert tree.payloads == ("p1", "p2", "p3")
        assert len(tree) == 3
        assert tree.naive_steps() == 7
        assert tree.edges() == 5  # two steps shared by s1/s2
        assert tree.shared_steps() == 2
        assert tree.root.leaves == 3

    def test_duplicate_schedules_keep_their_slots(self):
        s = (Fetch(None),)
        tree = ScheduleTree.from_paths([(s, "a"), (s, "b")])
        node = tree.root.children[Fetch(None)]
        assert node.leaf_indices == [0, 1]

    def test_prefix_schedule_marks_internal_node(self):
        tree = ScheduleTree.from_paths(
            [((Fetch(None), Retire()), "long"), ((Fetch(None),), "short")])
        inner = tree.root.children[Fetch(None)]
        assert inner.leaf_indices == [1]
        assert inner.children[Retire()].leaf_indices == [0]
