"""Cross-subsystem integration tests: compiler → machine → detector →
cache, and the SCT definition against the litmus ground truth."""

import pytest

from repro.asm import assemble, disassemble
from repro.cache import CacheConfig, FlushReload, ProbeArray, replay
from repro.core import (Config, Machine, Memory, PUBLIC, Region, SECRET,
                        Value, check_pair, check_sct, run, run_sequential,
                        secret_observations)
from repro.ctcomp import (ArrayDecl, Assign, BinOp, Const, Func, If, Index,
                          Module, VarDecl, Var, compile_module,
                          insert_fences)
from repro.litmus import find_case
from repro.pitchfork import analyze, enumerate_schedules


class TestCompilerToCacheAttack:
    """Compile a leaky module, let Pitchfork find the witness schedule,
    replay it, and recover the secret through the cache model — the full
    attack pipeline across four subsystems."""

    def _leaky_module(self):
        return Module("victim", funcs=(Func("main", (
            If(BinOp("ltu", Var("x"), Const(4)),
               then=(Assign("v", Index("a", Var("x"))),
                     Assign("t", Index("probe", Var("v"))))),)),),
            variables=(VarDecl("x", PUBLIC, 4), VarDecl("v", SECRET),
                       VarDecl("t", SECRET)),
            arrays=(ArrayDecl("a", 4, PUBLIC, (1, 2, 3, 0)),
                    ArrayDecl("k", 1, SECRET, (13,)),
                    ArrayDecl("probe", 64, PUBLIC, None, base=0x100)))

    def test_full_pipeline(self):
        cm = compile_module(self._leaky_module(), style="c")
        config = cm.initial_config()
        report = analyze(cm.program, config, bound=16, fwd_hazards=False)
        assert not report.secure

        # replay the tool's witness schedule and feed the cache
        witness = report.violations[0].schedule
        res = run(Machine(cm.program), config, witness)
        probe = ProbeArray(0x100, 1, tuple(range(64)))
        attacker = FlushReload(probe, CacheConfig(sets=64, ways=4,
                                                  line_size=1))
        hits = attacker.recover(res.trace)
        assert 13 in hits   # the secret k[0] appears in the probe set

    def test_fence_pass_breaks_the_pipeline(self):
        cm = compile_module(self._leaky_module(), style="c")
        fenced = insert_fences(cm.program)
        report = analyze(fenced, cm.initial_config(), bound=16,
                         fwd_hazards=False)
        assert report.secure


class TestSCTAgainstGroundTruth:
    """Definition 3.1 agrees with the label-based criterion on the
    figure cases (Cor. B.10's two directions, empirically)."""

    @pytest.mark.parametrize("name,violates", [
        ("v1_fig1", True),
        ("v1_fig8_fence", False),
        ("v1_masked_index", False),
        ("v11_public_store", False),
    ])
    def test_sct_definition(self, name, violates):
        case = find_case(name)
        machine = Machine(case.program)
        config = case.config()
        schedules = enumerate_schedules(machine, config, bound=10,
                                        fwd_hazards=False)
        result = check_sct(machine, config, schedules)
        assert result.ok == (not violates)

    def test_sct_counterexample_is_concrete(self):
        """The counterexample's two configs really produce different
        traces under the witnessing schedule."""
        case = find_case("v1_fig1")
        machine = Machine(case.program)
        config = case.config()
        schedules = enumerate_schedules(machine, config, bound=10,
                                        fwd_hazards=False)
        result = check_sct(machine, config, schedules)
        cex = result.counterexample
        ra = run(machine, cex.config_a, cex.schedule, record_steps=False)
        rb = run(machine, cex.config_b, cex.schedule, record_steps=False)
        assert ra.trace != rb.trace


class TestSequentialSpeculativeAgreement:
    """Speculative execution always commits the sequential result, even
    through attacks and rollbacks (Thm 3.2 on the litmus suite)."""

    @pytest.mark.parametrize("name", [
        "v1_fig1", "v11_fig6", "v4_fig7", "aliasing_fig2",
        "retpoline_fig13"])
    def test_attack_then_drain_matches_sequential(self, name):
        from repro.core import drain
        case = find_case(name)
        machine = Machine(case.program, rsb_policy=case.rsb_policy)
        if case.attack_schedule is None:
            pytest.skip("no attack schedule")
        res = run(machine, case.config(), case.attack_schedule)
        # After the attack, drive the machine to quiescence with the
        # sequential driver semantics: just drain what is in flight.
        try:
            settled = drain(machine, res.final)
        except Exception:
            pytest.skip("mid-speculation state cannot drain standalone")
        seq = run_sequential(machine, case.config(),
                             stop_at=res.retired + settled.retired)
        # Thm 3.2: same retire count ⇒ ≈-equivalent architectural state.
        assert settled.final.arch_equivalent(seq.final)


class TestDisassemblerRoundTrip:
    @pytest.mark.parametrize("name", ["v1_fig1", "v11_fig6", "v4_fig7",
                                      "kocher_01", "kocher_05"])
    def test_disassemble_reassemble(self, name):
        """Disassembled litmus programs reassemble to the same code."""
        case = find_case(name)
        text_lines = []
        for n, _instr in case.program.items():
            from repro.asm.disasm import format_instruction
            text_lines.append((n, format_instruction(case.program, n)))
        # re-assemble with explicit numeric targets where labels exist
        # (format_instruction prints label names; map them back)
        rebuilt = {}
        from repro.asm import parse
        for n, line in text_lines:
            # skip label-name targets: translate via the label table
            for label, point in case.program.labels().items():
                line = line.replace(f"-> {label},", f"-> {point},")
                line = line.replace(f", {label}", f", {point}") \
                    if f"-> " in line else line
            rebuilt[n] = line
        # sanity: every line parses
        source = "\n".join(line for _n, line in sorted(rebuilt.items()))
        parsed = parse(source)
        assert len(parsed.instrs) == len(case.program)
