"""Tests for the repro.api front end: Project, options, registry,
Report, and the batch AnalysisManager."""

import json

import pytest

from repro.api import (AnalysisManager, AnalysisOptions, Project, Report,
                       available_analyses, get_analysis)
from repro.core import Memory, PUBLIC, SECRET, layout
from repro.litmus import all_cases, find_case, load_suite

FIG1_SRC = """
    check:  br gt, 4, %ra -> body, done
    body:   %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
    done:   halt
"""


def fig1_project(**kw):
    mem = layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                 ("B", 4, PUBLIC, None),
                 ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))
    return Project.from_asm(FIG1_SRC, regs={"ra": 9}, mem=mem,
                            name="fig1", **kw)


class TestAnalysisOptions:
    def test_defaults_validate(self):
        options = AnalysisOptions()
        assert options.bound == 20 and options.fwd_hazards

    @pytest.mark.parametrize("bad", [
        {"bound": 0}, {"bound_no_fwd": -1}, {"max_paths": 0},
        {"rsb_policy": "bogus"}, {"experiments": 0},
    ])
    def test_rejects_bad_knobs(self, bad):
        with pytest.raises(ValueError):
            AnalysisOptions(**bad)

    def test_paper_preset(self):
        options = AnalysisOptions.paper()
        assert (options.bound_no_fwd, options.bound_fwd) == (250, 20)

    def test_table2_preset(self):
        options = AnalysisOptions.table2()
        assert (options.bound_no_fwd, options.bound_fwd) == (28, 20)

    def test_for_case_mirrors_ground_truth_knobs(self):
        case = find_case("v4_fig7")
        options = AnalysisOptions.for_case(case)
        assert options.bound == case.min_bound
        assert options.fwd_hazards == case.needs_fwd_hazards
        assert options.jmpi_targets == case.jmpi_targets

    def test_with_ignores_none_and_rejects_unknown(self):
        options = AnalysisOptions()
        assert options.with_(bound=None) is options
        assert options.with_(bound=7).bound == 7
        with pytest.raises(TypeError):
            options.with_(no_such_knob=1)

    def test_targets_normalised_to_tuples(self):
        options = AnalysisOptions(jmpi_targets=[3, 4])
        assert options.jmpi_targets == (3, 4)
        hash(options)  # must stay hashable (cache keys)


class TestProject:
    def test_needs_exactly_one_config_source(self):
        program = fig1_project().program
        with pytest.raises(ValueError):
            Project(program)
        with pytest.raises(ValueError):
            Project(program, fig1_project().config(),
                    make_config=lambda: None)

    def test_from_asm_runs_pitchfork(self):
        report = fig1_project().analyses.pitchfork(bound=12,
                                                   fwd_hazards=False)
        assert not report.ok and report.status == "insecure"
        assert report.violations and report.analysis == "pitchfork"

    def test_from_litmus_by_name_and_record(self):
        by_name = Project.from_litmus("v1_fig1")
        by_record = Project.from_litmus(find_case("v1_fig1"))
        assert by_name.name == by_record.name == "v1_fig1"
        assert by_name.options == by_record.options

    def test_from_litmus_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            Project.from_litmus("no_such_case")

    def test_every_litmus_case_round_trips(self):
        """Every registered case is reachable through the facade with
        its ground-truth knobs mirrored into the options."""
        for case in all_cases():
            project = Project.from_litmus(case.name)
            assert project.name == case.name
            assert len(project.program) == len(case.program)
            assert project.options.bound == case.min_bound
            assert project.options.fwd_hazards == case.needs_fwd_hazards
            assert project.options.explore_aliasing == case.needs_aliasing
            assert project.options.rsb_policy == case.rsb_policy
            assert project.config().low_equivalent(case.config())

    def test_from_variant_carries_expected_flag(self):
        from repro.casestudies import all_case_studies
        study = all_case_studies()[0]
        project = Project.from_variant(study.c)
        assert project.name == study.c.name
        assert project.expected == study.c.expected
        assert project.options.bound_no_fwd == 28

    def test_fingerprint_is_value_based(self):
        a, b = fig1_project(), fig1_project()
        assert a is not b and a.fingerprint() == b.fingerprint()

    def test_hub_unknown_analysis(self):
        with pytest.raises(AttributeError):
            fig1_project().analyses.nonsense


class TestRegistry:
    def test_all_eight_registered(self):
        assert set(available_analyses()) == {
            "pitchfork", "two-phase", "sct", "cache-attack", "metatheory",
            "symbolic", "repair", "sps"}

    def test_aliases_and_unknown(self):
        assert get_analysis("two_phase").name == "two-phase"
        assert get_analysis("cache").name == "cache-attack"
        assert get_analysis("mitigate").name == "repair"
        with pytest.raises(KeyError):
            get_analysis("nope")


class TestReport:
    def test_json_round_trip(self):
        report = fig1_project().analyses.pitchfork(bound=12,
                                                   fwd_hazards=False)
        data = json.loads(report.to_json())
        assert data["status"] == "insecure"
        assert data["violations"]
        assert data["phases"][0]["name"] == "v1/v1.1"

    def test_bool_follows_ok(self):
        assert bool(Report("t", "a", "secure", secure=True))
        assert not bool(Report("t", "a", "insecure", secure=False))
        assert bool(Report("t", "a", "clean"))
        assert not bool(Report("t", "a", "v1"))

    def test_render_mentions_vacuous(self):
        report = Report("t", "sct", "secure", secure=True, vacuous=True)
        assert "VACUOUS" in report.render()


class TestSCTVacuous:
    def test_no_secrets_is_vacuous_not_secure_evidence(self):
        project = Project.from_asm(
            "%ra = op mov, 1\nhalt", regs={}, name="no-secrets")
        report = project.analyses.sct(sct_bound=4)
        assert report.ok and report.vacuous
        assert report.details["pairs_checked"] == 0

    def test_real_check_is_not_vacuous(self):
        report = fig1_project().analyses.sct(sct_bound=6,
                                             fwd_hazards=False)
        assert not report.vacuous
        assert not report.ok and report.counterexamples


class TestAnalysisManager:
    def test_parallel_matches_serial_on_full_kocher_suite(self):
        projects = [Project.from_litmus(c) for c in load_suite("kocher")]
        serial = AnalysisManager("pitchfork").run(projects)
        parallel = AnalysisManager("pitchfork", workers=4).run(projects)
        from repro.serve import strip_volatile
        strip = lambda r: {k: v for k, v in strip_volatile(r.to_dict()).items()
                           if k != "phases"}
        assert [strip(r) for r in serial] == [strip(r) for r in parallel]
        assert sum(not r.ok for r in serial) == 14

    def test_cache_hits_on_repeat(self):
        manager = AnalysisManager("pitchfork")
        projects = [Project.from_litmus("v1_fig1")]
        first = manager.run(projects)
        second = manager.run([Project.from_litmus("v1_fig1")])
        assert manager.cache_info.hits == 1
        assert first[0] is second[0]
        manager.clear_cache()
        assert manager.cache_info.size == 0

    def test_option_overrides_apply(self):
        manager = AnalysisManager("pitchfork")
        project = Project.from_litmus("v1_fig8_fence")
        report = manager.run_one(project, bound=6)
        assert report.phases[0].bound == 6

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            AnalysisManager("pitchfork", workers=0)


class TestCLI:
    def test_list(self, capsys):
        from repro.api.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pitchfork" in out and "kocher" in out

    def test_list_json(self, capsys):
        from repro.api.cli import main
        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "two-phase" in data["analyses"]

    def test_analyze_litmus_case_json(self, capsys):
        from repro.api.cli import main
        code = main(["analyze", "kocher_01", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1 and data["status"] == "insecure"

    def test_analyze_asm_file(self, tmp_path, capsys):
        from repro.api.cli import main
        src = tmp_path / "victim.s"
        src.write_text("%ra = op mov, 1\nhalt\n")
        code = main(["analyze", str(src), "--reg", "ra=0", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0 and data["status"] == "secure"

    def test_analyze_unknown_target_exits_3(self):
        from repro.api.cli import main
        assert main(["analyze", "definitely_not_a_case"]) == 3

    def test_litmus_sweep_one_suite(self, capsys):
        from repro.api.cli import main
        assert main(["litmus", "spec_v1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mismatches"] == []
        assert len(data["suites"]["spec_v1"]) == 9

    def test_strategy_and_shards_flags(self, capsys):
        from repro.api.cli import main
        code = main(["analyze", "kocher_05", "--strategy", "coverage",
                     "--shards", "2", "--seed", "3", "--json"])
        assert code == 1  # flagged by design
        data = json.loads(capsys.readouterr().out)
        assert data["details"]["strategy"] == "coverage"
        assert data["details"]["shards"] == 2
        assert data["shard_stats"], "sharded run reports per-shard stats"

    def test_symbolic_surfaces_ignored_shards(self, capsys):
        from repro.api.cli import main
        main(["analyze", "kocher_01", "-a", "symbolic", "--bound", "12",
              "--shards", "4", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["details"]["shards_ignored"] == 4

    def test_unknown_strategy_is_clean_cli_error(self, capsys):
        from repro.api.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["analyze", "kocher_01", "--strategy", "dijkstra"])
        assert exc.value.code == 3   # argparse usage errors share exit 3


class TestCheckFlag:
    """`--check`: CI gate — exit 1 on a violation, exit 2 when "secure"
    was earned with truncated coverage or a vacuous quantifier."""

    def test_secure_case_passes(self, capsys):
        from repro.api.cli import main
        assert main(["analyze", "v1_fig8_fence", "--check"]) == 0

    def test_flagged_case_fails(self, capsys):
        from repro.api.cli import main
        assert main(["analyze", "kocher_01", "--check"]) == 1

    def test_truncated_secure_case_exits_2_only_with_check(self, capsys):
        from repro.api.cli import main
        args = ["analyze", "v1_fig8_fence", "--max-paths", "1"]
        assert main(args) == 0            # "secure", coverage capped
        assert main(args + ["--check"]) == 2

    def test_litmus_check_fails_on_flagged_suite(self, capsys):
        from repro.api.cli import main
        # spec_v1 contains flagged-by-design gadgets: the ground-truth
        # sweep passes, the --check gate does not.
        assert main(["litmus", "spec_v1"]) == 0
        assert main(["litmus", "spec_v1", "--check"]) == 1

    def test_vacuous_sct_pass_exits_2_with_check(self, tmp_path, capsys):
        from repro.api.cli import main
        # A no-secrets program makes the SCT quantifier empty: the
        # verdict is "secure" by emptiness (vacuous), which must not
        # earn a green CI gate — but it is a coverage failure (2), not
        # a violation (1).
        src = tmp_path / "nosecrets.s"
        src.write_text("%ra = op mov, 1\nhalt\n")
        args = ["analyze", str(src), "-a", "sct"]
        assert main(args) == 0
        assert main(args + ["--check"]) == 2

    def test_usage_error_exits_3(self, capsys):
        from repro.api.cli import main
        assert main(["analyze", "kocher_01", "-a", "nope"]) == 3


class TestReportSchema:
    """schema_version + exact JSON round-trip (satellite)."""

    def _sharded_report(self):
        return Project.from_litmus("kocher_05").run(
            "pitchfork", shards=2, stop_at_first=False)

    def test_schema_version_serialised(self):
        report = fig1_project().analyses.pitchfork(bound=12)
        data = json.loads(report.to_json())
        assert data["schema_version"] == 8

    def test_round_trip_plain(self):
        report = fig1_project().analyses.pitchfork(bound=12,
                                                   fwd_hazards=False)
        assert Report.from_json(report.to_json()) == report

    def test_round_trip_covers_shard_stats(self):
        report = self._sharded_report()
        assert report.shard_stats, "kocher_05 at bound 40 must shard"
        restored = Report.from_json(report.to_json())
        assert restored == report
        assert restored.shard_stats == report.shard_stats

    def test_round_trip_two_phase_and_sct(self):
        project = fig1_project()
        for analysis in ("two-phase", "sct"):
            report = project.run(analysis)
            assert Report.from_json(report.to_json()) == report

    def test_schema_v1_payload_still_loads(self):
        report = fig1_project().analyses.pitchfork(bound=12)
        data = report.to_dict()
        del data["schema_version"]      # a pre-sharding producer
        del data["shard_stats"]
        restored = Report.from_dict(data)
        assert restored.status == report.status
        assert restored.shard_stats == ()

    def test_newer_schema_rejected(self):
        report = fig1_project().analyses.pitchfork(bound=12)
        data = report.to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            Report.from_dict(data)
