"""A set-associative cache model driven by observation traces.

The paper deliberately does *not* model the cache: "we can reason about
any possible cache implementation, as any cache eviction policy can be
expressed as a function of the sequence of observations" (§3.1).  This
module makes that argument executable: a cache state is computed by
folding an observation trace, and the cache-timing attackers in
:mod:`repro.cache.attacker` recover secrets from nothing but that fold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.observations import Fwd, Jump, Observation, Read, Trace, Write


@dataclass(frozen=True)
class CacheConfig:
    """Geometry + policy of a cache."""

    sets: int = 16
    ways: int = 4
    line_size: int = 4          #: bytes per line (small, to match tiny memories)
    policy: str = "LRU"         #: "LRU" or "FIFO"

    def __post_init__(self):
        if self.policy not in ("LRU", "FIFO"):
            raise ValueError(f"unknown policy {self.policy!r}")
        for name in ("sets", "ways", "line_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


class Cache:
    """A set-associative cache with LRU or FIFO replacement."""

    def __init__(self, config: CacheConfig = CacheConfig()):
        self.config = config
        # Each set is an ordered list of line tags (most recent last).
        self._sets: List[List[int]] = [[] for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0

    # -- address helpers -----------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr // self.config.line_size

    def set_of(self, addr: int) -> int:
        return self.line_of(addr) % self.config.sets

    # -- operations ------------------------------------------------------------

    def access(self, addr: int) -> bool:
        """Touch ``addr``; True on hit.  Installs the line on miss."""
        line = self.line_of(addr)
        ways = self._sets[self.set_of(addr)]
        if line in ways:
            self.hits += 1
            if self.config.policy == "LRU":
                ways.remove(line)
                ways.append(line)
            return True
        self.misses += 1
        ways.append(line)
        if len(ways) > self.config.ways:
            ways.pop(0)  # evict oldest (LRU and FIFO agree on insertion order)
        return False

    def probe(self, addr: int) -> bool:
        """Non-destructive presence test (the attacker's timing probe)."""
        return self.line_of(addr) in self._sets[self.set_of(addr)]

    def flush(self, addr: int) -> None:
        """clflush: remove the line containing ``addr``."""
        line = self.line_of(addr)
        ways = self._sets[self.set_of(addr)]
        if line in ways:
            ways.remove(line)

    def flush_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    def contents(self) -> Tuple[Tuple[int, ...], ...]:
        """Snapshot of all sets (tuples of line tags, LRU order)."""
        return tuple(tuple(ways) for ways in self._sets)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cache):
            return NotImplemented
        return (self.config == other.config
                and self.contents() == other.contents())

    # A Cache is mutable (access() reorders LRU state), so defining
    # __eq__ leaves __hash__ implicitly None: caches are unhashable by
    # design and must not be used as dict keys.


def addresses_touching_cache(trace: Trace) -> List[int]:
    """The data addresses a trace makes cache-visible.

    ``read`` and ``write`` touch the accessed line.  ``fwd`` is the
    *absence* of a memory access (store-to-load forwarding), so it
    touches nothing — but its presence in the trace is still
    attacker-visible information.
    """
    out = []
    for obs in trace:
        if isinstance(obs, (Read, Write)) and isinstance(obs.addr, int):
            out.append(obs.addr)
    return out


def replay(trace: Trace,
           cache: Optional[Cache] = None,
           config: CacheConfig = CacheConfig()) -> Cache:
    """Fold an observation trace into a cache state.

    This is the paper's claim in code: the final cache state is a pure
    function of the observation sequence (given the initial state).
    """
    cache = cache if cache is not None else Cache(config)
    for addr in addresses_touching_cache(trace):
        cache.access(addr)
    return cache
