"""Cache model and cache-timing attackers.

The paper's semantics never models the cache; this package shows why
that loses nothing: cache state is a fold over the observation trace
(:func:`replay`), and Flush+Reload / Prime+Probe recover secrets from
that fold alone (:mod:`repro.cache.attacker`, :mod:`repro.cache.recover`).
"""

from .attacker import FlushReload, PrimeProbe, ProbeArray, recover_unique
from .cache import (Cache, CacheConfig, addresses_touching_cache, replay)
from .recover import SpectreV1Setup, build_setup, run_attack

__all__ = [
    "FlushReload", "PrimeProbe", "ProbeArray", "recover_unique", "Cache",
    "CacheConfig", "addresses_touching_cache", "replay", "SpectreV1Setup",
    "build_setup", "run_attack",
]
