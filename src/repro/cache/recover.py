"""End-to-end secret recovery: Fig 1's attack through the cache model.

Builds the Spectre v1 victim parametrised by a probe array wide enough
to distinguish byte values, runs the figure's directive schedule, folds
the observation trace into the cache, and recovers the key byte by
Flush+Reload — demonstrating that the semantics' observations are
sufficient for the real attack, with no labels consulted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..asm import ProgramBuilder
from ..core.config import Config
from ..core.executor import run
from ..core.lattice import PUBLIC, SECRET
from ..core.machine import Machine
from ..core.memory import Memory, Region
from ..core.directives import execute, fetch
from .attacker import FlushReload, ProbeArray, recover_unique
from .cache import CacheConfig

ARRAY_A = 0x40
KEY = 0x44
PROBE_BASE = 0x1000


@dataclass(frozen=True)
class SpectreV1Setup:
    """A ready-to-run Spectre v1 victim + attacker."""

    machine: Machine
    config: Config
    schedule: tuple
    attacker: FlushReload
    secret_value: int


def build_setup(secret_byte: int = 0xA2,
                stride: int = 64,
                candidates: Tuple[int, ...] = tuple(range(256)),
                oob_index: int = 4,
                cache: CacheConfig = CacheConfig(sets=256, ways=8,
                                                 line_size=64)
                ) -> SpectreV1Setup:
    """The Fig 1 victim with a byte-wide probe array.

    ``array A`` has 4 elements; ``oob_index`` reaches into the key; the
    second load touches ``probe[A[x] * stride]``.
    """
    b = ProgramBuilder()
    b.br("gt", [4, "ra"], "body", "done")
    b.label("body")
    b.load("rb", [ARRAY_A, "ra"])
    b.op("rb", "mul", ["rb", stride])
    b.load("rc", [PROBE_BASE, "rb"])
    b.label("done").halt()
    prog = b.build()

    mem = Memory()
    mem = mem.with_region(Region("A", ARRAY_A, 4, PUBLIC), [1, 2, 3, 0])
    mem = mem.with_region(Region("Key", KEY, 4, SECRET),
                          [secret_byte, 0xEE, 0xFF, 0x11])
    config = Config.initial({"ra": oob_index, "rb": 0, "rc": 0}, mem, pc=1)
    schedule = (fetch(True), fetch(), fetch(), fetch(),
                execute(2), execute(3), execute(4))
    probe = ProbeArray(PROBE_BASE, stride, candidates)
    attacker = FlushReload(probe, cache)
    return SpectreV1Setup(Machine(prog), config, schedule, attacker,
                          secret_byte)


def run_attack(setup: Optional[SpectreV1Setup] = None) -> Optional[int]:
    """Run the victim under the attack schedule; recover the key byte."""
    setup = setup or build_setup()
    result = run(setup.machine, setup.config, setup.schedule)
    return recover_unique(setup.attacker, result.trace)
