"""Cache-timing attackers: Flush+Reload and Prime+Probe.

These close the loop of the Spectre attacks: the machine's observation
trace drives the cache model (:mod:`repro.cache.cache`), and the
attacker recovers the secret *only* from post-run cache probes — i.e.
from timing, never from the trace's labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.observations import Trace
from .cache import Cache, CacheConfig, replay


@dataclass(frozen=True)
class ProbeArray:
    """The attacker's probe buffer: one cache line per secret candidate.

    In the classic Spectre PoC this is ``array2[guess * 512]``; here a
    candidate value ``v`` maps to address ``base + v * stride``.
    """

    base: int
    stride: int
    candidates: Tuple[int, ...]

    def addr_of(self, value: int) -> int:
        return self.base + value * self.stride


class FlushReload:
    """Flush+Reload: flush the probe lines, run the victim, reload."""

    def __init__(self, probe: ProbeArray,
                 config: CacheConfig = CacheConfig()):
        self.probe = probe
        self.config = config

    def prepare(self) -> Cache:
        """The attacker flushes every probe line (empty cache here)."""
        return Cache(self.config)

    def recover(self, victim_trace: Trace) -> List[int]:
        """Values whose probe line the victim's execution warmed."""
        cache = replay(victim_trace, self.prepare())
        return [v for v in self.probe.candidates
                if cache.probe(self.probe.addr_of(v))]


class PrimeProbe:
    """Prime+Probe: fill the sets, run the victim, find evictions."""

    def __init__(self, probe: ProbeArray,
                 config: CacheConfig = CacheConfig()):
        self.probe = probe
        self.config = config

    def prepare(self) -> Cache:
        """Prime: the attacker fills every set with its own lines.

        Attacker lines live in a distinct address range (high addresses)
        so victim accesses can only appear by evicting them.
        """
        cache = Cache(self.config)
        base = 1 << 20
        for s in range(self.config.sets):
            for w in range(self.config.ways):
                line_index = s + w * self.config.sets
                cache.access(base + line_index * self.config.line_size)
        return cache

    def recover(self, victim_trace: Trace) -> List[int]:
        """Candidates whose set lost at least one attacker line."""
        primed = self.prepare()
        after = replay(victim_trace, self.prepare())
        victims = []
        base = 1 << 20
        for v in self.probe.candidates:
            s = after.set_of(self.probe.addr_of(v))
            attacker_lines = {
                after.line_of(base + (s + w * self.config.sets)
                              * self.config.line_size)
                for w in range(self.config.ways)}
            survived = set(after.contents()[s]) & attacker_lines
            originally = set(primed.contents()[s]) & attacker_lines
            if survived != originally:
                victims.append(v)
        return victims


def recover_unique(attacker, victim_trace: Trace) -> Optional[int]:
    """The recovered secret, if exactly one candidate lights up."""
    hits = attacker.recover(victim_trace)
    return hits[0] if len(hits) == 1 else None
