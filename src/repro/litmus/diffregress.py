"""Differential-sweep regressions (``repro.sps.diff`` findings).

Every program here is a minimised disagreement between the two
speculative constant-time backends — the out-of-order
:mod:`repro.pitchfork` explorer and the sequential speculation-passing
check (:mod:`repro.sps`) — found by the differential harness and landed
permanently *after* the underlying bug was fixed.  The agreement tests
sweep the whole registry, so each case keeps guarding the exact
semantic rule whose violation it once witnessed:

* ``diffregress_store_addr_transient`` / ``_chain`` — the explorer's
  sleepset reduction deferred *every* store-address resolution under
  forwarding-hazard mode.  When the address reads an in-flight
  (possibly transient) value, the resolution observation leaks that
  value and deferring it past the producer's hazard squash silently
  dropped the leak.  Fixed by restoring the resolve-now/defer timing
  fork for exactly those stores.
* ``diffregress_ret_smash_transient`` — a store smashes the just-pushed
  return-address slot; the return's load can still wrong-forward the
  *original* return address and transiently run the caller's
  continuation into a secret-indexed load.  (Also the shape that
  exposed SPS's path-starvation bug: its per-path budgets now mirror
  the explorer's ``max_fetches``/``max_steps``.)
* ``diffregress_alias_secret_addr`` — a top-level aliasing guess
  (§3.5) validates only when the load's own address resolves, by which
  time the guessed-from store has retired: the machine validates
  against *memory* and emits a ``read`` at the load's true address,
  never a ``fwd``.  SPS once emitted the ``fwd`` at guess time.

The nested-aliasing squash rule (a guess inside an enclosing excursion
is rolled back before it validates, so nothing is emitted) is guarded
by ``aliasing_fig2`` in the aliasing suite.
"""

from __future__ import annotations

from typing import List

from ..core.config import Config
from ..core.isa import Call, Load, Ret, Store
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, Region
from ..core.program import Program
from ..core.values import Reg, Value, operands
from .registry import LitmusCase, suite


def _arena(cells=()) -> Memory:
    mem = Memory().with_region(Region("arena", 0x40, 8, PUBLIC), None)
    return mem.write_all(list(cells))


def _case_store_addr_transient() -> LitmusCase:
    # Minimised from random-plain-0-24: store5's address reads r0, a
    # value a stale (Spectre v4) load may have fetched from secret
    # memory — resolving that address leaks it (fwd 69_secret), and the
    # un-fixed sleepset reduction never resolved it before the squash.
    prog = Program({
        1: Store(Reg("r1"), operands(64, "r1"), 3),
        3: Load(Reg("r0"), operands(64, "r3"), 5),
        5: Store(Value(2), operands(64, "r0"), 11),
    }, entry=1)

    def config() -> Config:
        return Config.initial(
            {"r0": Value(3), "r1": Value(3), "r2": Value(2),
             "r3": Value(3, SECRET)},
            _arena([(0x43, Value(5, SECRET))]), pc=1)

    return LitmusCase(
        name="diffregress_store_addr_transient",
        variant="v4-diffregress",
        description="A younger store whose address reads a transiently "
                    "loaded secret: the address resolution itself is "
                    "the leak the sleepset deferral used to drop.",
        program=prog,
        make_config=config,
        leaks_sequentially=True,
        leaks_speculatively=True,
        needs_fwd_hazards=True,
    )


def _case_store_addr_transient_chain() -> LitmusCase:
    # Minimised from random-aliasing-0-37: same deferral bug reached
    # through a chain — the stale load feeds the *last* store's address
    # (fwd 71_secret) with an unrelated store pinning the buffer open.
    prog = Program({
        1: Store(Value(0), operands(69), 2),
        2: Store(Reg("r3"), operands(64, "r3"), 3),
        3: Load(Reg("r0"), operands(65), 5),
        5: Store(Reg("r0"), operands(64, "r0"), 9),
    }, entry=1)

    def config() -> Config:
        return Config.initial(
            {"r0": Value(0), "r1": Value(1), "r2": Value(2),
             "r3": Value(0, SECRET)},
            _arena([(0x41, Value(7, SECRET))]), pc=1)

    return LitmusCase(
        name="diffregress_store_addr_transient_chain",
        variant="v4-diffregress",
        description="Store-address leak of a stale-loaded secret behind "
                    "an unrelated pending store, under the aliasing "
                    "extension.",
        program=prog,
        make_config=config,
        leaks_sequentially=True,
        leaks_speculatively=True,
        needs_fwd_hazards=True,
        needs_aliasing=True,
        min_bound=12,
    )


def _case_ret_smash_transient() -> LitmusCase:
    # From random-callret sweeps (seed-3080 class), made terminating:
    # the callee smashes the return-address slot with a halt point, so
    # the architectural return leaves the program — but the return's
    # load can wrong-forward the call's *original* return address and
    # transiently run the caller's continuation into a secret-indexed
    # load (read 64_secret).  The smash target must stay a halt point
    # even after hardening passes splice in fresh instructions, so it
    # is 5 — referenced by pp4 but unmapped, which the pass allocator
    # (``_first_unreferenced_point``) never hands out.
    prog = Program({
        1: Load(Reg("r2"), operands(68), 2),
        2: Call(6, 3),
        3: Load(Reg("r0"), operands(64, "r3"), 4),
        4: Load(Reg("r2"), operands(64, "r1"), 5),
        6: Store(Value(5), operands("rsp"), 7),
        7: Ret(),
    }, entry=1)

    def config() -> Config:
        mem = Memory()
        mem = mem.with_region(Region("stack", 0x20, 8, PUBLIC), None)
        mem = mem.with_region(Region("arena", 0x40, 8, PUBLIC), None)
        return Config.initial(
            {"r0": Value(4), "r1": Value(0, SECRET), "r2": Value(6),
             "r3": Value(0), "rsp": Value(0x27)},
            mem, pc=1)

    return LitmusCase(
        name="diffregress_ret_smash_transient",
        variant="ret2spec-diffregress",
        description="Smashed return-address slot: the wrong-forward arm "
                    "of the return's load transiently resumes the "
                    "caller and hits a secret-indexed load.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=True,
        needs_fwd_hazards=True,
        min_bound=8,
    )


def _case_alias_secret_addr() -> LitmusCase:
    # Seed-2058 class: a top-level aliasing guess on a load whose own
    # address is secret.  The machine emits the validation *read* at
    # the true address; a backend that emits a fwd at guess time
    # diverges here.
    prog = Program({
        1: Store(Value(3), operands(70), 2),
        2: Load(Reg("r0"), operands(64, "r3"), 3),
    }, entry=1)

    def config() -> Config:
        return Config.initial(
            {"r0": Value(0), "r1": Value(1), "r2": Value(2),
             "r3": Value(7, SECRET)},
            _arena(), pc=1)

    return LitmusCase(
        name="diffregress_alias_secret_addr",
        variant="aliasing-diffregress",
        description="Aliasing guess on a secret-addressed load: the "
                    "guess surfaces only as the validation read at the "
                    "load's true address, never as a fwd.",
        program=prog,
        make_config=config,
        leaks_sequentially=True,
        leaks_speculatively=True,
        needs_fwd_hazards=True,
        needs_aliasing=True,
        min_bound=8,
    )


@suite("diffregress")
def cases() -> List[LitmusCase]:
    """Minimised differential-sweep findings, kept as regressions."""
    return [_case_store_addr_transient(),
            _case_store_addr_transient_chain(),
            _case_ret_smash_transient(),
            _case_alias_secret_addr()]
