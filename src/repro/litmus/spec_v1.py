"""Spectre v1 suite (bounds-check bypass), including Figure 1.

The paper's own v1 suite contains cases that are *sequentially*
constant-time and leak only under speculation ("Since many of the Kocher
examples exhibit violations even during sequential execution, we create a
new set of Spectre v1 test cases which only exhibit violations when
executed speculatively").  This module is that suite, with Figure 1 and
Figure 8 (the fence mitigation) as the anchor cases.

Shared memory layout, as in Figure 1::

    0x40..0x43  array A   (public)
    0x44..0x47  array B   (public)
    0x48..0x4B  Key       (secret)
"""

from __future__ import annotations

from typing import List

from ..asm import ProgramBuilder, assemble
from ..core.config import Config
from ..core.directives import execute, fetch
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, Region, layout
from .registry import LitmusCase, suite

A_BASE, B_BASE, KEY_BASE = 0x40, 0x44, 0x48


def fig1_memory() -> Memory:
    """The memory of Figure 1 (and most v1 cases)."""
    return layout(("A", 4, PUBLIC, [1, 2, 3, 0]),
                  ("B", 4, PUBLIC, [10, 20, 30, 40]),
                  ("Key", 4, SECRET, [0xA1, 0xA2, 0xA3, 0xA4]))


def _case_fig1() -> LitmusCase:
    # 1: br(>, (4, ra), 2, 4); 2: rb = load [0x40+ra]; 3: rc = load [0x44+rb]
    prog = assemble("""
        br gt, 4, %ra -> 2, 4
        %rb = load [0x40, %ra]
        %rc = load [0x44, %rb]
        halt
    """)
    schedule = (fetch(True), fetch(), fetch(), execute(2), execute(3))
    return LitmusCase(
        name="v1_fig1",
        variant="v1",
        description="Figure 1: classic bounds-check bypass; the second "
                    "load's address is derived from out-of-bounds data.",
        program=prog,
        make_config=lambda: Config.initial({"ra": 9}, fig1_memory(), pc=1),
        figure="Fig 1",
        attack_schedule=schedule,
        leaks_sequentially=False,
        leaks_speculatively=True,
    )


def _case_fig8_fence() -> LitmusCase:
    prog = assemble("""
        br gt, 4, %ra -> 2, 5
        fence
        %rb = load [0x40, %ra]
        %rc = load [0x44, %rb]
        halt
    """)
    return LitmusCase(
        name="v1_fig8_fence",
        variant="v1-mitigated",
        description="Figure 8: the fence after the branch stops the loads "
                    "from executing before the branch resolves.",
        program=prog,
        make_config=lambda: Config.initial({"ra": 9}, fig1_memory(), pc=1),
        figure="Fig 8",
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
    )


def _case_index_from_memory() -> LitmusCase:
    """The out-of-bounds index arrives via a load, not a register."""
    prog = assemble("""
        %ra = load [0x4C]
        br gt, 4, %ra -> 3, 5
        %rb = load [0x40, %ra]
        %rc = load [0x44, %rb]
        halt
    """)
    def config() -> Config:
        mem = fig1_memory().with_region(Region("idx", 0x4C, 1, PUBLIC), [9])
        return Config.initial({}, mem, pc=1)
    return LitmusCase(
        name="v1_index_from_memory",
        variant="v1",
        description="v1 where the attacker-controlled index is loaded "
                    "from memory before the bounds check.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=True,
    )


def _case_double_check() -> LitmusCase:
    """Two nested bounds checks; both must be bypassed speculatively."""
    prog = assemble("""
        br gt, 4, %ra -> 2, 6
        br ge, %ra, 0 -> 3, 6
        %rb = load [0x40, %ra]
        %rc = load [0x44, %rb]
        halt
        halt
    """)
    return LitmusCase(
        name="v1_double_check",
        variant="v1",
        description="Nested bounds checks: speculation must bypass two "
                    "branches; exercises multi-level misprediction.",
        program=prog,
        make_config=lambda: Config.initial({"ra": 9}, fig1_memory(), pc=1),
        leaks_sequentially=False,
        leaks_speculatively=True,
    )


def _case_leak_via_branch() -> LitmusCase:
    """The out-of-bounds value is leaked through a branch *condition*
    rather than a load address (control-flow leak)."""
    prog = assemble("""
        br gt, 4, %ra -> 2, 5
        %rb = load [0x40, %ra]
        br gt, %rb, 0x80 -> 4, 5
        %rc = load [0x44]
        halt
    """)
    return LitmusCase(
        name="v1_leak_via_branch",
        variant="v1",
        description="Bypassed bounds check followed by a branch on the "
                    "out-of-bounds (secret) value: the jump observation "
                    "carries a secret label.",
        program=prog,
        make_config=lambda: Config.initial({"ra": 9}, fig1_memory(), pc=1),
        leaks_sequentially=False,
        leaks_speculatively=True,
    )


def _case_leak_via_store_addr() -> LitmusCase:
    """The secret flows into a *store* address (leaks via fwd/write)."""
    prog = assemble("""
        br gt, 4, %ra -> 2, 5
        %rb = load [0x40, %ra]
        store 1, [0x44, %rb]
        halt
        halt
    """)
    return LitmusCase(
        name="v1_leak_via_store_addr",
        variant="v1",
        description="The out-of-bounds value becomes a store address; the "
                    "address resolution observation (fwd) leaks it.",
        program=prog,
        make_config=lambda: Config.initial({"ra": 9}, fig1_memory(), pc=1),
        leaks_sequentially=False,
        leaks_speculatively=True,
    )


def _case_in_register_only() -> LitmusCase:
    """Out-of-bounds data stays in registers: no observation leaks it."""
    prog = assemble("""
        br gt, 4, %ra -> 2, 4
        %rb = load [0x40, %ra]
        %rc = op add, %rb, 1
        halt
    """)
    return LitmusCase(
        name="v1_in_register_only",
        variant="v1-safe",
        description="The speculatively read secret never reaches an "
                    "address or branch: arithmetic on it is unobservable, "
                    "so the program is SCT.",
        program=prog,
        make_config=lambda: Config.initial({"ra": 9}, fig1_memory(), pc=1),
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
    )


def _case_masked_index() -> LitmusCase:
    """Index masking (the classic Spectre mitigation): always in bounds."""
    prog = assemble("""
        %ra = op and, %ra, 3
        br gt, 4, %ra -> 3, 5
        %rb = load [0x40, %ra]
        %rc = load [0x44, %rb]
        halt
    """)
    return LitmusCase(
        name="v1_masked_index",
        variant="v1-mitigated",
        description="The index is masked to the array bounds before use; "
                    "even mispredicted speculation stays in bounds.",
        program=prog,
        make_config=lambda: Config.initial({"ra": 9}, fig1_memory(), pc=1),
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
    )


def _case_sequential_leak() -> LitmusCase:
    """A classical (sequential) CT violation: loads a secret address
    unconditionally — flagged even without speculation."""
    prog = assemble("""
        %rb = load [0x48]
        %rc = load [0x44, %rb]
        halt
    """)
    return LitmusCase(
        name="v1_sequential_leak",
        variant="sequential",
        description="Unconditionally indexes a public array with a secret "
                    "value: violates classical constant-time (and hence "
                    "SCT) — like many original Kocher cases.",
        program=prog,
        make_config=lambda: Config.initial({}, fig1_memory(), pc=1),
        leaks_sequentially=True,
        leaks_speculatively=True,
    )


@suite("spec_v1")
def cases() -> List[LitmusCase]:
    """The v1 suite: Figure 1/8 plus speculative-only variants."""
    return [
        _case_fig1(),
        _case_fig8_fence(),
        _case_index_from_memory(),
        _case_double_check(),
        _case_leak_via_branch(),
        _case_leak_via_store_addr(),
        _case_in_register_only(),
        _case_masked_index(),
        _case_sequential_leak(),
    ]
