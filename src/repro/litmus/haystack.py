"""Haystack hunting cases: gadgets surrounded by decoy work.

The classic litmus programs are *detection* tests: single gadgets a few
instructions long, where depth-first search — which always descends
into the just-forked mispredicted arm — is within a step or two of the
structural optimum for *finding* the leak, not just proving it.  A
best-first strategy cannot beat what has nothing left to skip.

Hunting benchmarks need haystacks: programs where the leak is cheap to
reach but buried behind work a blind enumeration order wades through
first.  Each case here wraps the kocher_10 transmitter (a branch whose
*condition* is a speculatively loaded secret) in a different kind of
straw, one per steering signal the mcts frontier scores:

* ``haystack_01`` — a long public work tail between the gadget and the
  transmission; the fast violating schedule lets the reorder buffer
  drain so the pending tainted branch executes at once, instead of
  fetching the tail first (the pending-transmitter / drain signal);
* ``haystack_02`` — decoy public branches ahead of the gadget whose
  mispredicted arms wander busywork regions before rolling back (the
  speculation-window and novelty signals);
* ``haystack_03`` — the architectural (in-bounds) direction holds a
  chain of *public* loads, a decoy for naive nearest-load steering; the
  real transmitter sits on the mispredicted arm with the secret already
  in flight (the taint-resolution part of the proximity signal).

Ground truth mirrors kocher_10: no sequential leak (the bounds check
holds architecturally), a speculative leak through the comparison
outcome.  ``benchmarks/bench_hunt.py`` measures steps-to-first-
violation on exactly these shapes; the full-exploration equivalence
suites pick the cases up automatically via ``all_cases()``.

Shared memory layout is the Kocher one (see :mod:`.kocher`).
"""

from __future__ import annotations

from typing import List

from ..asm import ProgramBuilder
from ..core.program import Program
from .kocher import ARRAY1, ARRAY2, SIZE_CELL, TEMP_CELL, ORDER_BASE, _config
from .registry import LitmusCase, suite

__all__ = ["haystack_01", "haystack_02", "haystack_03"]


def _case(name: str, description: str, prog: Program) -> LitmusCase:
    return LitmusCase(
        name=name, variant="hunting", description=description,
        program=prog, make_config=_config(prog), min_bound=20)


def _gadget(b: ProgramBuilder, hit_label: str, oob_label: str,
            miss_label: str) -> None:
    """The kocher_10 transmitter: speculatively load a secret, then
    branch on it — executing the branch leaks the comparison outcome.
    ``oob_label`` is where the (architecturally taken) bounds check
    bails to; ``miss_label`` is the secret comparison's false arm."""
    b.br("ltu", ["rx", "rs"], "cmp", oob_label)
    b.label("cmp")
    b.load("rv", [ARRAY1, "rx"])
    b.br("eq", ["rv", 0x31], hit_label, miss_label)


def haystack_01() -> LitmusCase:
    """Work-tail haystack: the taken direction of the secret-dependent
    branch runs a long public computation before transmitting.  The
    fast violating schedule stops fetching and drains the buffer, so
    the pending tainted branch executes immediately; a depth-first
    order fetches the whole tail first."""
    b = ProgramBuilder()
    b.load("rs", [SIZE_CELL])
    _gadget(b, "hit", "done", "done")
    b.label("hit")
    for i in range(12):
        b.op("rp", "add", ["ry", i])
    b.load("rt", [ARRAY2])
    b.load("rtmp2", [TEMP_CELL])
    b.op("rtmp2", "and", ["rtmp2", "rt"])
    b.store("rtmp2", [TEMP_CELL])
    b.label("done").halt()
    return _case("haystack_01", haystack_01.__doc__, b.build())


def haystack_02() -> LitmusCase:
    """Decoy-branch haystack: two public branches ahead of the gadget,
    each guarding a busywork region that is architecturally skipped
    (``ry = 0``).  Blind orders wander every mispredicted decoy arm
    before reaching the secret-dependent branch."""
    b = ProgramBuilder()
    b.load("rs", [SIZE_CELL])
    for d in range(2):
        b.br("eq", ["ry", 1], f"decoy{d}", f"next{d}")
        b.label(f"decoy{d}")
        for i in range(6):
            b.op("rp", "add", ["rp", i])
        b.label(f"next{d}")
    _gadget(b, "hit", "done", "done")
    b.label("hit")
    b.load("rt", [ARRAY2])
    b.label("done").halt()
    return _case("haystack_02", haystack_02.__doc__, b.build())


def haystack_03() -> LitmusCase:
    """Cold-load haystack: the architectural (bounds-check-fails)
    direction runs a chain of public loads — bait for steering that
    chases the nearest load without asking what its operands hold.
    The leak is on the mispredicted arm, where the loaded secret is
    already in flight."""
    b = ProgramBuilder()
    b.load("rs", [SIZE_CELL])
    _gadget(b, "hit", "cold", "done")
    b.label("hit")
    b.load("rt", [ARRAY2])
    b.label("done").halt()
    b.label("cold")
    for _i in range(8):
        b.load("rc", [ORDER_BASE])
        b.op("rc", "add", ["rc", 1])
    b.halt()
    return _case("haystack_03", haystack_03.__doc__, b.build())


@suite("haystack")
def cases() -> List[LitmusCase]:
    """The three hunting haystacks."""
    return [haystack_01(), haystack_02(), haystack_03()]
