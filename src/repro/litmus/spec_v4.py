"""Spectre v4 suite (speculative store bypass), Figure 7.

v4 gadgets have a store that *should* hide stale (secret) data from a
younger load, but the store's address resolves late, so the load reads
the stale value from memory and leaks it.  These cases are only found
with forwarding-hazard exploration enabled (Table 2's ``f`` flags).

Layout of Figure 7::

    0x40..0x43  secretKey (secret)
    0x44..0x47  pubArrA   (public)
"""

from __future__ import annotations

from typing import List

from ..asm import assemble
from ..core.config import Config
from ..core.directives import execute, fetch
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, Region, layout
from ..core.values import Value
from .registry import LitmusCase, suite


def fig7_memory() -> Memory:
    return layout(("secretKey", 4, SECRET, [0x21, 0x22, 0x23, 0x24]),
                  ("pubArrA", 4, PUBLIC, [0, 0, 0, 0]))


def _case_fig7() -> LitmusCase:
    # Buffer of Fig 7: 2: store(0,[3,ra]); 3: load [0x43]; 4: load [0x44,rc]
    prog = assemble("""
        %r0 = op mov, 0
        store 0, [3, %ra]
        %rc = load [0x43]
        %rc = load [0x44, %rc]
        halt
    """)
    schedule = (fetch(), fetch(), fetch(), fetch(),
                execute(3), execute(4), execute(2, "addr"))
    return LitmusCase(
        name="v4_fig7",
        variant="v4",
        description="Figure 7: the zeroing store's address resolves too "
                    "late; the load reads the stale secret from memory "
                    "and a dependent load leaks it.",
        program=prog,
        make_config=lambda: Config.initial({"ra": 0x40}, fig7_memory(), pc=1),
        figure="Fig 7",
        attack_schedule=schedule,
        leaks_sequentially=False,
        leaks_speculatively=True,
        needs_fwd_hazards=True,
    )


def _case_sanitizer_bypass() -> LitmusCase:
    """A 'sanitising' store that replaces a secret with a public token is
    bypassed; classic same-address store/load pair."""
    prog = assemble("""
        store 0, [%rp]
        %rv = load [%rp]
        %rc = load [0x44, %rv]
        halt
    """)
    def config() -> Config:
        mem = layout(("secret_slot", 1, SECRET, [0x33]),
                     ("pubArrA", 16, PUBLIC, None))
        return Config.initial({"rp": 0x40}, mem, pc=1)
    return LitmusCase(
        name="v4_sanitizer_bypass",
        variant="v4",
        description="Zero-out-then-reuse: with the store address delayed "
                    "the reuse load sees the secret it was meant to erase.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=True,
        needs_fwd_hazards=True,
    )


def _case_fenced() -> LitmusCase:
    """Fig 7 with a fence between store and loads: mitigated."""
    prog = assemble("""
        store 0, [3, %ra]
        fence
        %rc = load [0x43]
        %rc = load [0x44, %rc]
        halt
    """)
    return LitmusCase(
        name="v4_fenced",
        variant="v4-mitigated",
        description="The fence forces the store to retire before the "
                    "loads execute, so no stale data is readable.",
        program=prog,
        make_config=lambda: Config.initial({"ra": 0x40}, fig7_memory(), pc=1),
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
        needs_fwd_hazards=True,
    )


def _case_public_stale() -> LitmusCase:
    """The stale value is public: bypassing the store is architecturally
    wrong but leaks nothing secret."""
    prog = assemble("""
        store 1, [%rp]
        %rv = load [%rp]
        %rc = load [0x44, %rv]
        halt
    """)
    def config() -> Config:
        mem = layout(("pub_slot", 1, PUBLIC, [3]),
                     ("pubArrA", 16, PUBLIC, None))
        return Config.initial({"rp": 0x40}, mem, pc=1)
    return LitmusCase(
        name="v4_public_stale",
        variant="v4-safe",
        description="Same shape as Fig 7 with public stale data: the "
                    "hazard and rollback occur, but every observation is "
                    "public — SCT holds.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
        needs_fwd_hazards=True,
    )


def _case_double_store() -> LitmusCase:
    """Two stores to the slot; the load must skip both to reach the
    secret (deeper forwarding exploration)."""
    prog = assemble("""
        store 0, [%rp]
        store 1, [%rp]
        %rv = load [%rp]
        %rc = load [0x44, %rv]
        halt
    """)
    def config() -> Config:
        mem = layout(("secret_slot", 1, SECRET, [0x2A]),
                     ("pubArrA", 16, PUBLIC, None))
        return Config.initial({"rp": 0x40}, mem, pc=1)
    return LitmusCase(
        name="v4_double_store",
        variant="v4",
        description="The load must bypass two pending sanitising stores "
                    "to read the stale secret: tests that the explorer "
                    "enumerates *combinations* of deferred addresses.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=True,
        needs_fwd_hazards=True,
    )


@suite("spec_v4")
def cases() -> List[LitmusCase]:
    """The v4 suite: Figure 7 plus variants."""
    return [
        _case_fig7(),
        _case_sanitizer_bypass(),
        _case_fenced(),
        _case_public_stale(),
        _case_double_store(),
    ]
