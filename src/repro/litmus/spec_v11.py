"""Spectre v1.1 suite (speculative store-to-load forwarding), Figure 6.

v1.1 gadgets speculatively *write* out of bounds; the written (secret)
value is then forwarded to a younger load and leaked through a dependent
access.  Layout of Figure 6::

    0x40..0x43  secretKey (secret)
    0x44..0x47  pubArrA   (public)
    0x48..0x4B  pubArrB   (public)
"""

from __future__ import annotations

from typing import List

from ..asm import assemble
from ..core.config import Config
from ..core.directives import execute, fetch
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, layout
from ..core.values import Value
from .registry import LitmusCase, suite


def fig6_memory() -> Memory:
    return layout(("secretKey", 4, SECRET, [0x51, 0x52, 0x53, 0x54]),
                  ("pubArrA", 4, PUBLIC, [1, 2, 3, 4]),
                  ("pubArrB", 4, PUBLIC, [0, 0, 0, 0]))


def _case_fig6() -> LitmusCase:
    # Buffer layout of Fig 6: 1: br; 2: store; 3..6 filler; 7/8: loads.
    prog = assemble("""
        br gt, 4, %ra -> 2, 9
        store %rb, [0x40, %ra]
        %r1 = op mov, 0
        %r2 = op mov, 0
        %r3 = op mov, 0
        %r4 = op mov, 0
        %rc = load [0x45]
        %rc = load [0x48, %rc]
        halt
    """)
    schedule = (fetch(True),) + tuple(fetch() for _ in range(7)) + (
        execute(2, "addr"), execute(2, "value"), execute(7), execute(8))
    def config() -> Config:
        return Config.initial({"ra": 5, "rb": Value(0x77, SECRET)},
                              fig6_memory(), pc=1)
    return LitmusCase(
        name="v11_fig6",
        variant="v1.1",
        description="Figure 6: a bounds check guards a store; "
                    "misprediction sends the secret store out of bounds "
                    "where a benign load forwards and then leaks it.",
        program=prog,
        make_config=config,
        figure="Fig 6",
        attack_schedule=schedule,
        leaks_sequentially=False,
        leaks_speculatively=True,
    )


def _case_store_offset() -> LitmusCase:
    """v1.1 where the store address is computed, not immediate."""
    prog = assemble("""
        br ltu, %ra, 4 -> 2, 7
        %rt = op add, 0x40, %ra
        store %rb, [%rt]
        %rc = load [0x45]
        %rc = load [0x48, %rc]
        halt
        halt
    """)
    def config() -> Config:
        return Config.initial({"ra": 5, "rb": Value(0x66, SECRET)},
                              fig6_memory(), pc=1)
    return LitmusCase(
        name="v11_store_offset",
        variant="v1.1",
        description="v1.1 with the out-of-bounds store address computed "
                    "by an op in the speculative window.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=True,
    )


def _case_overwrite_index() -> LitmusCase:
    """The speculative store corrupts an in-bounds *index* that a
    following access trusts (classic v1.1 'speculative buffer overflow')."""
    prog = assemble("""
        br ltu, %ra, 4 -> 2, 5
        store %rb, [0x4C]
        %ri = load [0x4C]
        %rc = load [0x44, %ri]
        halt
    """)
    def config() -> Config:
        mem = fig6_memory()
        from ..core.memory import Region
        mem = mem.with_region(Region("idx", 0x4C, 1, PUBLIC), [2])
        return Config.initial({"ra": 9, "rb": Value(0xE0, SECRET)},
                              mem, pc=1)
    return LitmusCase(
        name="v11_overwrite_index",
        variant="v1.1",
        description="A speculative store clobbers a trusted index cell; "
                    "the dependent load leaks the forwarded secret.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=True,
    )


def _case_fenced() -> LitmusCase:
    """Fig 6 gadget with a fence between store and loads: mitigated."""
    prog = assemble("""
        br gt, 4, %ra -> 2, 7
        store %rb, [0x40, %ra]
        fence
        %rc = load [0x45]
        %rc = load [0x48, %rc]
        halt
        halt
    """)
    def config() -> Config:
        return Config.initial({"ra": 5, "rb": Value(0x77, SECRET)},
                              fig6_memory(), pc=1)
    return LitmusCase(
        name="v11_fenced",
        variant="v1.1-mitigated",
        description="The fence prevents the loads from executing before "
                    "the (mispredicted) branch and store resolve.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
    )


def _case_public_store() -> LitmusCase:
    """Out-of-bounds store of a *public* value: rollback-visible but no
    secret ever reaches an observation — SCT holds."""
    prog = assemble("""
        br gt, 4, %ra -> 2, 5
        store 7, [0x40, %ra]
        %rc = load [0x45]
        %rc = load [0x48, %rc]
        halt
    """)
    def config() -> Config:
        return Config.initial({"ra": 5}, fig6_memory(), pc=1)
    return LitmusCase(
        name="v11_public_store",
        variant="v1.1-safe",
        description="Same shape as Fig 6 but the stored value is public: "
                    "all observations stay public.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
    )


@suite("spec_v11")
def cases() -> List[LitmusCase]:
    """The v1.1 suite: Figure 6 plus variants."""
    return [
        _case_fig6(),
        _case_store_offset(),
        _case_overwrite_index(),
        _case_fenced(),
        _case_public_store(),
    ]
