"""The hypothetical aliasing-predictor attack of Figure 2 (§3.5).

A memory-aliasing predictor speculatively forwards a store's value to a
load *before either address is known*.  The forwarded (secret) value
feeds a dependent load whose address leaks it — no branch misprediction
is involved at all.  The paper notes this attack class is hypothetical
(an earlier claimed PoC was retracted), which is why the semantics keeps
it behind the ``execute i: fwd j`` directive and the tool behind the
``explore_aliasing`` extension flag.
"""

from __future__ import annotations

from typing import List

from ..asm import assemble
from ..core.config import Config
from ..core.directives import execute, fetch
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, layout
from ..core.values import Value
from .registry import LitmusCase, suite


def fig2_memory() -> Memory:
    return layout(("secretKey", 4, SECRET, [0x41, 0x42, 0x43, 0x44]),
                  ("pubArrA", 4, PUBLIC, [1, 2, 3, 4]),
                  ("pubArrB", 4, PUBLIC, [0, 0, 0, 0]))


def _case_fig2() -> LitmusCase:
    # Buffer layout of Fig 2: 2: store; 7/8: loads (fillers in between).
    prog = assemble("""
        %r0 = op mov, 0
        store %rb, [0x40, %ra]
        %r1 = op mov, 0
        %r2 = op mov, 0
        %r3 = op mov, 0
        %r4 = op mov, 0
        %rc = load [0x45]
        %rc = load [0x48, %rc]
        halt
    """)
    schedule = tuple(fetch() for _ in range(8)) + (
        execute(2, "value"),   # store resolves its (secret) data
        execute(7, 2),         # aliasing predictor: fwd from store 2
        execute(8),            # dependent load leaks read a_sec
        execute(2, "addr"),    # store address resolves: fwd 0x42_pub
        execute(7))            # misprediction detected: rollback, fwd 0x45
    def config() -> Config:
        return Config.initial({"ra": 2, "rb": Value(0x99, SECRET)},
                              fig2_memory(), pc=1)
    return LitmusCase(
        name="aliasing_fig2",
        variant="aliasing",
        description="Figure 2: an aliasing predictor forwards a secret "
                    "store value to an unrelated load; the dependent "
                    "access leaks it before the rollback.",
        program=prog,
        make_config=config,
        figure="Fig 2",
        attack_schedule=schedule,
        leaks_sequentially=False,
        leaks_speculatively=True,
        detected_by_core_tool=False,
        needs_aliasing=True,
    )


def _case_aliasing_public() -> LitmusCase:
    """The same shape with a public stored value: rollback but no leak."""
    prog = assemble("""
        store %rb, [0x40, %ra]
        %rc = load [0x45]
        %rc = load [0x48, %rc]
        halt
    """)
    def config() -> Config:
        return Config.initial({"ra": 2, "rb": 7}, fig2_memory(), pc=1)
    return LitmusCase(
        name="aliasing_public",
        variant="aliasing-safe",
        description="Mispredicted aliasing forward of a *public* value: "
                    "the machine rolls back, but every observation is "
                    "public, so SCT holds.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
        needs_aliasing=True,
    )


@suite("aliasing")
def cases() -> List[LitmusCase]:
    """Aliasing-predictor cases (Figure 2)."""
    return [_case_fig2(), _case_aliasing_public()]
