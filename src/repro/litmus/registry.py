"""Uniform litmus-case records.

Every test program in the suites (§4.2: "we create and analyze a set of
Spectre v1 and v1.1 test cases … based off the well-known Kocher
examples") is packaged as a :class:`LitmusCase` carrying:

* the program and a function building its initial configuration(s);
* the figure's *attack schedule*, when the case comes from a paper
  figure, so tests can replay the exact directive sequence;
* ground truth: does it leak sequentially?  speculatively?  does core
  Pitchfork (no aliasing / no indirect-target exploration) detect it,
  and does detection require forwarding-hazard mode?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import Config
from ..core.directives import Schedule
from ..core.program import Program


@dataclass(frozen=True)
class LitmusCase:
    """One litmus test program with ground-truth expectations."""

    name: str
    variant: str                   #: "v1", "v1.1", "v4", "v2", "ret2spec", …
    description: str
    program: Program
    make_config: Callable[[], Config]
    figure: Optional[str] = None   #: e.g. "Fig 1"
    attack_schedule: Optional[Schedule] = None
    leaks_sequentially: bool = False
    leaks_speculatively: bool = True
    #: Detected by the tool as evaluated in the paper (no aliasing /
    #: indirect-target exploration)?
    detected_by_core_tool: bool = True
    #: Detection requires forwarding-hazard (v4) exploration?
    needs_fwd_hazards: bool = False
    #: Needs the §3.5 aliasing-prediction extension?
    needs_aliasing: bool = False
    #: Extended exploration targets for v2/ret2spec cases.
    jmpi_targets: Tuple[int, ...] = ()
    rsb_targets: Tuple[int, ...] = ()
    rsb_policy: str = "directive"
    #: Smallest speculation bound at which the tool finds the leak
    #: (loop-carried gadgets need deeper windows — §4.2's motivation for
    #: the bound-250 configuration).
    min_bound: int = 12

    def config(self) -> Config:
        return self.make_config()


_SUITES: Dict[str, Callable[[], List[LitmusCase]]] = {}


def suite(name: str):
    """Decorator registering a suite factory under ``name``."""
    def register(fn: Callable[[], List[LitmusCase]]):
        _SUITES[name] = fn
        return fn
    return register


def load_suite(name: str) -> List[LitmusCase]:
    """Instantiate a registered suite by name."""
    # Import side effects register the suites on first use.
    from . import aliasing, diffregress, haystack, kocher, spec_rsb, \
        spec_v1, spec_v11, spec_v4  # noqa: F401
    return _SUITES[name]()


def all_suites() -> Dict[str, List[LitmusCase]]:
    from . import aliasing, diffregress, haystack, kocher, spec_rsb, \
        spec_v1, spec_v11, spec_v4  # noqa: F401
    return {name: factory() for name, factory in sorted(_SUITES.items())}


def all_cases() -> List[LitmusCase]:
    out: List[LitmusCase] = []
    for cases in all_suites().values():
        out.extend(cases)
    return out


def find_case(name: str) -> LitmusCase:
    for case in all_cases():
        if case.name == name:
            return case
    raise KeyError(name)


def expected_repair_status(case: LitmusCase) -> str:
    """Ground-truth outcome of ``repro repair`` on a litmus case.

    * ``"already-secure"`` — nothing to do;
    * ``"repaired"`` — the speculative leak is closed by per-site
      mitigation and the result re-verifies clean;
    * ``"sequential-residual"`` — the case violates *classical*
      constant time (it leaks under the sequential schedule), which no
      speculation barrier can mend: repair removes the
      speculation-introduced leaks and reports the architectural
      residue.
    """
    if case.leaks_sequentially:
        return "sequential-residual"
    if case.leaks_speculatively:
        return "repaired"
    return "already-secure"
