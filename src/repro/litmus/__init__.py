"""Spectre litmus suites (§4.2's test cases).

Suites: ``kocher`` (the 15 classic v1 variants), ``spec_v1`` (the paper's
speculative-only v1 suite, Figs 1/8), ``spec_v11`` (Fig 6 family),
``spec_v4`` (Fig 7 family), ``spec_rsb`` (v2/ret2spec/retpoline,
Figs 11-13), ``aliasing`` (Fig 2), and ``haystack`` (hunting
benchmarks: gadgets buried behind decoy work).
"""

from .registry import (LitmusCase, all_cases, all_suites,
                       expected_repair_status, find_case, load_suite)

__all__ = ["LitmusCase", "all_cases", "all_suites",
           "expected_repair_status", "find_case", "load_suite"]
