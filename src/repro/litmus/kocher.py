"""The Kocher Spectre v1 test-case family, ported to the paper's ISA.

Paul Kocher's 15 ``victim_function`` variants [19] are the standard
stress test for Spectre v1 detectors; §4.2 uses them to sanity-check
Pitchfork.  The original C sources target x86 binaries, so this module
ports each variant's *structural theme* to the abstract instruction
language (baseline gadget, masked copies of the index, leaks through
calls, loops, compound conditions, value-dependent branches, pointer
indirection, …).

As the paper notes, several of the original cases violate *classical*
constant time too (e.g. the memcmp-style variant branches on secret
data); the ground truth below records which ones.

Shared layout::

    0x20  array1_size (public, = 4)     0x28..0x2B  order[] (public)
    0x21  temp        (public)          0x2C        x-cell  (public)
    0x40..0x43  array1 (public)
    0x44..0x47  secret (secret; what out-of-bounds reads hit)
    0x100..     array2 (public; the transmission buffer)
"""

from __future__ import annotations

from typing import Callable, List

from ..asm import ProgramBuilder
from ..core.config import Config
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, Region
from ..core.program import Program
from .registry import LitmusCase, suite

SIZE_CELL = 0x20
TEMP_CELL = 0x21
ORDER_BASE = 0x28
XCELL = 0x2C
ARRAY1 = 0x40
SECRET_BASE = 0x44
ARRAY2 = 0x100

#: The attacker-chosen out-of-bounds index (array1[5] = secret[1]).
OOB_X = 5


def kocher_memory() -> Memory:
    mem = Memory()
    mem = mem.with_region(Region("array1_size", SIZE_CELL, 1, PUBLIC), [4])
    mem = mem.with_region(Region("temp", TEMP_CELL, 1, PUBLIC), [0xFF])
    mem = mem.with_region(Region("order", ORDER_BASE, 4, PUBLIC),
                          [3, 2, 1, 0])
    mem = mem.with_region(Region("xcell", XCELL, 1, PUBLIC), [OOB_X])
    mem = mem.with_region(Region("array1", ARRAY1, 4, PUBLIC), [0, 1, 2, 3])
    mem = mem.with_region(Region("secret", SECRET_BASE, 4, SECRET),
                          [0x31, 0x32, 0x33, 0x34])
    mem = mem.with_region(Region("array2", ARRAY2, 64, PUBLIC), None)
    return mem


def _config(prog: Program) -> Callable[[], Config]:
    def make() -> Config:
        return Config.initial({"rx": OOB_X, "ry": 0, "rsp": 0x200},
                              kocher_memory(), pc=prog.entry)
    return make


def _epilogue(b: ProgramBuilder, value_reg: str = "rt") -> None:
    """``temp &= <value>`` — the classic transmission tail."""
    b.load("rtmp2", [TEMP_CELL])
    b.op("rtmp2", "and", ["rtmp2", value_reg])
    b.store("rtmp2", [TEMP_CELL])


def _case(name: str, description: str, build: Callable[[], Program],
          leaks_seq: bool = False, leaks_spec: bool = True,
          detected: bool = True, min_bound: int = 12) -> LitmusCase:
    prog = build()
    return LitmusCase(
        name=name, variant="kocher-v1", description=description,
        program=prog, make_config=_config(prog),
        leaks_sequentially=leaks_seq, leaks_speculatively=leaks_spec,
        detected_by_core_tool=detected, min_bound=min_bound)


def kocher_01() -> LitmusCase:
    """Baseline: if (x < array1_size) temp &= array2[array1[x]]."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.br("ltu", ["rx", "rs"], "body", "done")
        b.label("body")
        b.load("rv", [ARRAY1, "rx"])
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.label("done").halt()
        return b.build()
    return _case("kocher_01", kocher_01.__doc__, build)


def kocher_02() -> LitmusCase:
    """Bounds check applied to a *masked copy* of x while the raw x is
    used for the access — architecturally out of bounds (sequential
    violation, like several original cases)."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.op("rm", "and", ["rx", 3])
        b.br("ltu", ["rm", "rs"], "body", "done")
        b.label("body")
        b.load("rv", [ARRAY1, "rx"])       # raw x, not the masked copy!
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.label("done").halt()
        return b.build()
    return _case("kocher_02", kocher_02.__doc__, build, leaks_seq=True)


def kocher_03() -> LitmusCase:
    """The leaking access lives in a separate function, called after the
    bounds check (speculation crosses the call)."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.br("ltu", ["rx", "rs"], "docall", "done")
        b.label("docall").call("leakfn")
        b.label("done").halt()
        b.label("leakfn")
        b.load("rv", [ARRAY1, "rx"])
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.ret()
        return b.build()
    return _case("kocher_03", kocher_03.__doc__, build)


def kocher_04() -> LitmusCase:
    """Double indirection: temp &= array2[order[array1[x]]]."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.br("ltu", ["rx", "rs"], "body", "done")
        b.label("body")
        b.load("rv", [ARRAY1, "rx"])       # array1[x]: OOB reads secret
        b.load("ro", [ORDER_BASE, "rv"])   # address now secret-tainted
        b.load("rt", [ARRAY2, "ro"])
        _epilogue(b)
        b.label("done").halt()
        return b.build()
    return _case("kocher_04", kocher_04.__doc__, build)


def kocher_05() -> LitmusCase:
    """Loop form: for (i = 0; i < x; i++) temp &= array2[array1[i]],
    guarded by one bounds check that speculation bypasses."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.br("ltu", ["rx", "rs"], "init", "done")
        b.label("init").mov("ri", 0)
        b.label("loop")
        b.br("ltu", ["ri", "rx"], "body", "done")
        b.label("body")
        b.load("rv", [ARRAY1, "ri"])
        b.load("rt", [ARRAY2, "rv"])
        b.op("ri", "add", ["ri", 1])
        b.br("eq", [0, 0], "loop", "loop")
        b.label("done").halt()
        return b.build()
    return _case("kocher_05", kocher_05.__doc__, build, min_bound=40)


def kocher_06() -> LitmusCase:
    """Branch-compiled ternary clamp: x2 = (x < size) ? x : 0 — the
    branch form still speculates into the unclamped access."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.br("ltu", ["rx", "rs"], "keep", "zero")
        b.label("keep").mov("rx2", "rx")
        b.br("eq", [0, 0], "access", "access")
        b.label("zero").mov("rx2", 0)
        b.label("access")
        b.load("rv", [ARRAY1, "rx2"])
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.halt()
        return b.build()
    return _case("kocher_06", kocher_06.__doc__, build)


def kocher_07() -> LitmusCase:
    """Inverted check with early exit: if (x >= size) return; leak."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.br("geu", ["rx", "rs"], "done", "body")
        b.label("body")
        b.load("rv", [ARRAY1, "rx"])
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.label("done").halt()
        return b.build()
    return _case("kocher_07", kocher_07.__doc__, build)


def kocher_08() -> LitmusCase:
    """Constant-time select (cmov-style) clamp: x2 = sel(x < size, x, 0).
    No branch exists, so there is nothing to mispredict — secure (the
    original v08 compiles to cmov on mainstream compilers)."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.op("rc", "ltu", ["rx", "rs"])
        b.op("rx2", "sel", ["rc", "rx", 0])
        b.load("rv", [ARRAY1, "rx2"])
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.halt()
        return b.build()
    return _case("kocher_08", kocher_08.__doc__, build,
                 leaks_spec=False, detected=False)


def kocher_09() -> LitmusCase:
    """Compound condition: if (x < size && ok) — two branches to bypass."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.br("ltu", ["rx", "rs"], "check2", "done")
        b.label("check2")
        b.br("ne", ["ry", 1], "body", "done")
        b.label("body")
        b.load("rv", [ARRAY1, "rx"])
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.label("done").halt()
        return b.build()
    return _case("kocher_09", kocher_09.__doc__, build)


def kocher_10() -> LitmusCase:
    """Leak via a value-dependent branch: if (x < size && array1[x] == k)
    temp &= array2[0] — the *comparison outcome* leaks."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.br("ltu", ["rx", "rs"], "cmp", "done")
        b.label("cmp")
        b.load("rv", [ARRAY1, "rx"])
        b.br("eq", ["rv", 0x31], "hit", "done")
        b.label("hit")
        b.load("rt", [ARRAY2])
        _epilogue(b)
        b.label("done").halt()
        return b.build()
    return _case("kocher_10", kocher_10.__doc__, build)


def kocher_11() -> LitmusCase:
    """memcmp-style comparison loop over the secret itself — branches on
    secret data even architecturally (classical CT violation)."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rv", [SECRET_BASE])
        b.br("eq", ["rv", 0x31], "next", "done")
        b.label("next")
        b.load("rv", [SECRET_BASE, 1])
        b.br("eq", ["rv", 0x32], "hit", "done")
        b.label("hit").load("rt", [ARRAY2])
        b.label("done").halt()
        return b.build()
    return _case("kocher_11", kocher_11.__doc__, build, leaks_seq=True)


def kocher_12() -> LitmusCase:
    """Composite index: if (x + y < size) temp &= array2[array1[x + y]]."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.op("rxy", "add", ["rx", "ry"])
        b.br("ltu", ["rxy", "rs"], "body", "done")
        b.label("body")
        b.load("rv", [ARRAY1, "rxy"])
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.label("done").halt()
        return b.build()
    return _case("kocher_12", kocher_12.__doc__, build)


def kocher_13() -> LitmusCase:
    """The bounds check calls a helper (is_x_safe(x)) and branches on its
    result — speculation crosses the call/return."""
    def build() -> Program:
        b = ProgramBuilder()
        b.call("checkfn")
        b.br("ne", ["rc", 0], "body", "done")
        b.label("body")
        b.load("rv", [ARRAY1, "rx"])
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.label("done").halt()
        b.label("checkfn")
        b.load("rs", [SIZE_CELL])
        b.op("rc", "ltu", ["rx", "rs"])
        b.ret()
        return b.build()
    return _case("kocher_13", kocher_13.__doc__, build)


def kocher_14() -> LitmusCase:
    """Speculative write-then-read: the guarded store goes out of bounds
    and an adjacent (secret) cell is read back and leaked."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rs", [SIZE_CELL])
        b.br("ltu", ["rx", "rs"], "body", "done")
        b.label("body")
        b.store(0, [ARRAY1, "rx"])
        b.load("rv", [ARRAY1 + 1, "rx"])   # adjacent cell: secret[2]
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.label("done").halt()
        return b.build()
    return _case("kocher_14", kocher_14.__doc__, build)


def kocher_15() -> LitmusCase:
    """Attacker controls a pointer, not an index: x = *px; classic v15."""
    def build() -> Program:
        b = ProgramBuilder()
        b.load("rx2", [XCELL])
        b.load("rs", [SIZE_CELL])
        b.br("ltu", ["rx2", "rs"], "body", "done")
        b.label("body")
        b.load("rv", [ARRAY1, "rx2"])
        b.load("rt", [ARRAY2, "rv"])
        _epilogue(b)
        b.label("done").halt()
        return b.build()
    return _case("kocher_15", kocher_15.__doc__, build)


@suite("kocher")
def cases() -> List[LitmusCase]:
    """All 15 Kocher-style v1 variants."""
    return [
        kocher_01(), kocher_02(), kocher_03(), kocher_04(), kocher_05(),
        kocher_06(), kocher_07(), kocher_08(), kocher_09(), kocher_10(),
        kocher_11(), kocher_12(), kocher_13(), kocher_14(), kocher_15(),
    ]
