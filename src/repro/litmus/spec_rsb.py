"""Spectre v2, ret2spec and retpoline (Appendix A; Figures 11-13).

These cases exercise the extended semantics: indirect jumps with
attacker-guessed targets, call/ret with the return stack buffer, and the
retpoline construction that defeats indirect-target mistraining.

The paper's core tool does not explore mistrained indirect targets
("Pitchfork only exercises a subset of our semantics"); the cases record
that via ``detected_by_core_tool=False`` together with the extended
exploration targets that *do* find them (``jmpi_targets`` /
``rsb_targets``).
"""

from __future__ import annotations

from typing import List

from ..core.config import Config
from ..core.directives import RETIRE, execute, fetch
from ..core.isa import Br, Call, Fence, Jmpi, Load, Op, Ret, Store
from ..core.lattice import PUBLIC, SECRET
from ..core.memory import Memory, Region, layout
from ..core.program import Program
from ..core.values import Reg, Value, operands
from .registry import LitmusCase, suite


def _fig11_program() -> Program:
    """Figure 11, verbatim: program points 1-3 and 16-18."""
    return Program({
        1: Load(Reg("rc"), operands(0x48, "ra"), 2),
        2: Fence(3),
        3: Jmpi(operands(12, "rb")),
        16: Fence(17),
        17: Load(Reg("rd"), operands(0x44, "rc"), 18),
        # 18: halt (unmapped)
        20: Fence(21),  # the intended target of the indirect jump
        # 21: halt (unmapped)
    }, entry=1)


def fig11_memory() -> Memory:
    # Figure 11's layout: array B at 0x44..0x47, Key at 0x48..0x4B.
    return layout(("pad", 4, PUBLIC, None),
                  ("B", 4, PUBLIC, [0, 0, 0, 0]),
                  ("Key", 4, SECRET, [0xB1, 0xB2, 0xB3, 0xB4]))


def _case_fig11_v2() -> LitmusCase:
    prog = _fig11_program()
    schedule = (fetch(), fetch(), execute(1), fetch(17), fetch(),
                RETIRE, RETIRE, execute(4))
    def config() -> Config:
        return Config.initial({"ra": 1, "rb": 8}, fig11_memory(), pc=1)
    return LitmusCase(
        name="v2_fig11",
        variant="v2",
        description="Figure 11: a mistrained indirect branch sends "
                    "speculation to a gadget that leaks the loaded "
                    "secret; fences do not help.",
        program=prog,
        make_config=config,
        figure="Fig 11",
        attack_schedule=schedule,
        leaks_sequentially=False,
        leaks_speculatively=True,
        detected_by_core_tool=False,
        jmpi_targets=(17,),
    )


def _ret2spec_program() -> Program:
    """Figure 12's program (call/ret/ret) plus a disclosure gadget."""
    return Program({
        1: Call(3, 2),
        2: Ret(),
        3: Ret(),
        # The gadget the attacker steers speculation into:
        10: Load(Reg("rd"), operands(0x40, "rk"), 11),
        11: Load(Reg("re"), operands(0x40, "rd"), 12),
        # 12: halt
    }, entry=1)


def _case_fig12_ret2spec() -> LitmusCase:
    prog = _ret2spec_program()
    def config() -> Config:
        mem = layout(("pubArr", 4, PUBLIC, [0, 0, 0, 0]),
                     ("Key", 4, SECRET, [0xC1, 0xC2, 0xC3, 0xC4]))
        mem = mem.with_region(Region("stack", 0x60, 8, PUBLIC), None)
        return Config.initial({"rsp": 0x67, "rk": 4}, mem, pc=1)
    # fetch call (1-3); fetch ret@3 (4-7, RSB predicts 2);
    # fetch ret@2 (8-11, RSB empty: attacker sends execution to 10);
    # fetch gadget loads (12, 13) and execute them.
    schedule = (fetch(), fetch(), fetch(10), fetch(), fetch(),
                execute(12), execute(13))
    return LitmusCase(
        name="ret2spec_fig12",
        variant="ret2spec",
        description="Figure 12: RSB underflow lets the attacker steer a "
                    "speculative return into a disclosure gadget.",
        program=prog,
        make_config=config,
        figure="Fig 12",
        attack_schedule=schedule,
        leaks_sequentially=False,
        leaks_speculatively=True,
        detected_by_core_tool=False,
        rsb_targets=(10,),
    )


def _retpoline_program() -> Program:
    """Figure 13, verbatim: the retpoline replacing Fig 11's jmpi."""
    return Program({
        3: Call(5, 4),
        4: Fence(4),                                   # fence self
        5: Op(Reg("rd"), "addr", operands(12, "rb"), 6),
        6: Store(Reg("rd"), operands("rsp"), 7),
        7: Ret(),
        20: Fence(21),                                 # the real target
        # 21: halt
    }, entry=3)


def _case_fig13_retpoline() -> LitmusCase:
    prog = _retpoline_program()
    def config() -> Config:
        mem = Memory().with_region(Region("stack", 0x78, 8, PUBLIC), None)
        return Config.initial({"rb": 8, "rsp": 0x7C}, mem, pc=3)
    # Figure 13's directive list, adjusted to our buffer numbering
    # (call group at 1-3, rd op at 4, store at 5, ret group at 6-9,
    # fence at 10):
    schedule = (fetch(), fetch(), fetch(), fetch(), fetch(),
                execute(2),            # rsp = succ(rsp) = 0x7B
                execute(4),            # rd = 12 + rb = 20
                execute(5, "value"),   # store(20, [rsp])
                execute(5, "addr"),    # store(20, 0x7B)      fwd 0x7B
                execute(7),            # rtmp = 20 (fwd from 5) fwd 0x7B
                execute(9))            # jmpi: guess 4, actual 20 →
                                       # rollback, jump 20
    return LitmusCase(
        name="retpoline_fig13",
        variant="v2-mitigated",
        description="Figure 13: the retpoline bounces speculation into a "
                    "self-looping fence; the eventual jump goes to the "
                    "computed target with no attacker influence.",
        program=prog,
        make_config=config,
        figure="Fig 13",
        attack_schedule=schedule,
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
    )


def _case_v2_retpolined_gadget() -> LitmusCase:
    """Fig 11's leaky program rebuilt with a retpoline: the secret-handling
    gadget at 17 is unreachable by mistraining."""
    prog = Program({
        1: Load(Reg("rc"), operands(0x48, "ra"), 2),
        2: Fence(3),
        3: Call(5, 4),
        4: Fence(4),
        5: Op(Reg("rd"), "addr", operands(12, "rb"), 6),
        6: Store(Reg("rd"), operands("rsp"), 7),
        7: Ret(),
        16: Fence(17),
        17: Load(Reg("rd"), operands(0x44, "rc"), 18),
        20: Fence(21),
        # 21: halt
    }, entry=1)
    def config() -> Config:
        mem = fig11_memory().with_region(Region("stack", 0x78, 8, PUBLIC),
                                         None)
        return Config.initial({"ra": 1, "rb": 8, "rsp": 0x7C}, mem, pc=1)
    return LitmusCase(
        name="v2_retpolined",
        variant="v2-mitigated",
        description="Fig 11's gadget guarded by a retpoline: the attacker "
                    "cannot steer the speculative target to 17, so the "
                    "secret in rc never reaches an observation.",
        program=prog,
        make_config=config,
        leaks_sequentially=False,
        leaks_speculatively=False,
        detected_by_core_tool=False,
        jmpi_targets=(17,),
    )


@suite("spec_rsb")
def cases() -> List[LitmusCase]:
    """v2 / ret2spec / retpoline cases (Figures 11-13)."""
    return [
        _case_fig11_v2(),
        _case_fig12_ret2spec(),
        _case_fig13_retpoline(),
        _case_v2_retpolined_gadget(),
    ]
