"""Span exporters: capture files, Chrome ``trace_event`` JSON, summaries.

A traced run persists as a **capture file** — newline-delimited JSON
with one header line (target, analysis, the report's ``telemetry``
section when present) followed by one line per span.  JSONL because it
streams: the writer never holds more than one span's JSON, a reader
can ``grep`` it, and a truncated file is still a valid prefix.

``repro trace export --format chrome`` turns a capture into Chrome's
``trace_event`` format (the ``{"traceEvents": [...]}`` object form),
loadable in Perfetto or ``chrome://tracing``.  Each span becomes one
complete ("ph": "X") event; the (pid, tid) tags place parent and
worker spans on their own tracks, and nesting re-emerges from interval
containment.  Two wrinkles the exporter owns:

* **ordering** — events are sorted by the deterministic (shard, seq)
  key (parent spans sort first as shard −1), never by timestamp, so
  the exported byte stream is a pure function of the recorded work;
* **clock bases** — each recording process stamps spans on its *own*
  monotonic clock, and those bases do not align across the pool
  boundary.  The exporter rebases every (pid, shard) stream to its
  earliest timestamp, so all tracks start at 0 and durations (the
  honest quantity) are preserved; cross-track offsets are
  presentation, not measurement.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["sort_spans", "chrome_trace", "write_capture", "read_capture",
           "summarize_spans", "CAPTURE_VERSION"]

#: Capture-file format version (the header's ``version`` field).
CAPTURE_VERSION = 1


def _merge_key(span: Mapping[str, Any]) -> Tuple[int, int]:
    shard = span.get("shard")
    return (-1 if shard is None else shard, span["seq"])


def sort_spans(spans: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Deterministic merged order: (shard, seq), parent stream first.

    This is the merge contract for sharded captures — worker streams
    concatenate in merge-slot order with their own dense seq numbers,
    independent of how wall-clock time interleaved them.
    """
    return [dict(span) for span in sorted(spans, key=_merge_key)]


def chrome_trace(spans: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Spans as a Chrome ``trace_event`` object (Perfetto-loadable)."""
    ordered = sort_spans(spans)
    bases: Dict[Tuple[Any, Any], float] = {}
    for span in ordered:
        stream = (span["pid"], span.get("shard"))
        ts = span["ts"]
        if ts < bases.get(stream, float("inf")):
            bases[stream] = ts
    events = []
    for span in ordered:
        stream = (span["pid"], span.get("shard"))
        shard = span.get("shard")
        events.append({
            "name": span["name"],
            "cat": span["cat"],
            "ph": "X",
            "ts": round((span["ts"] - bases[stream]) * 1e6, 3),
            "dur": round(span["dur"] * 1e6, 3),
            "pid": span["pid"],
            "tid": f"shard-{shard}" if shard is not None else span["tid"],
            "args": dict(span.get("args") or {}),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_capture(path, spans: Iterable[Mapping[str, Any]],
                  header: Optional[Mapping[str, Any]] = None) -> Path:
    """Write a capture file: one header line, then one line per span
    in deterministic merged order."""
    path = Path(path)
    head = {"kind": "header", "version": CAPTURE_VERSION}
    if header:
        head.update(header)
    lines = [json.dumps(head, sort_keys=True)]
    lines.extend(json.dumps({"kind": "span", **span}, sort_keys=True)
                 for span in sort_spans(spans))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_capture(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse a capture file into (header, spans).

    Tolerates a missing header (a bare span log still summarises) but
    rejects files that are not span JSONL at all.
    """
    header: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            raise ValueError(f"{path}:{lineno}: not JSONL") from None
        kind = record.get("kind") if isinstance(record, dict) else None
        if kind == "header":
            header = record
        elif kind == "span":
            record.pop("kind")
            spans.append(record)
        else:
            raise ValueError(f"{path}:{lineno}: unknown record "
                             f"{record!r}")
    return header, spans


def summarize_spans(spans: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate a span stream for ``repro trace summary``.

    Per (category, name): count and total self-reported duration —
    note spans nest, so durations overlap and do not sum to wall time.
    """
    by_series: Dict[Tuple[str, str], Dict[str, Any]] = {}
    shards = set()
    processes = set()
    total = 0
    for span in spans:
        total += 1
        processes.add(span["pid"])
        if span.get("shard") is not None:
            shards.add(span["shard"])
        key = (span["cat"], span["name"])
        row = by_series.get(key)
        if row is None:
            row = by_series[key] = {"cat": key[0], "name": key[1],
                                    "count": 0, "wall": 0.0}
        row["count"] += 1
        row["wall"] += span["dur"]
    series = [by_series[key] for key in sorted(by_series)]
    for row in series:
        row["wall"] = round(row["wall"], 6)
    return {"spans": total, "processes": len(processes),
            "shards": sorted(shards), "series": series}
