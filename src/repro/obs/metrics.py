"""Aggregated counters, gauges and fixed-bucket histograms.

Spans (:mod:`repro.obs.tracer`) answer "what happened in this run";
metrics answer "what is this *process* doing over time" — the resident
daemon's question.  A :class:`MetricsRegistry` is a named bag of three
instrument kinds, all zero-dependency and thread-safe:

* :class:`Counter` — monotonically increasing totals (jobs computed,
  store hits);
* :class:`Gauge` — last-write-wins samples of a level (pool workers
  live, jobs in flight, store hit ratio);
* :class:`Histogram` — fixed cumulative buckets over observations
  (job wall seconds).  Buckets are fixed at construction so two
  registries (or two scrapes of one) are always comparable; the
  default :data:`DEFAULT_BUCKETS` ladder spans 1 ms to 60 s.

Rendering is either a JSON-ready dict (:meth:`MetricsRegistry.to_dict`
— what the daemon's ``metrics`` RPC returns) or a flat text exposition
(:meth:`MetricsRegistry.render_text`, one ``name value`` line per
series in sorted order, histogram buckets as cumulative ``le=`` series
— the conventional scrape format, greppable in CI logs).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: Default histogram ladder (seconds): sub-millisecond work up to the
#: one-minute jobs the daemon's batch sweeps submit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins level sample."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Cumulative fixed-bucket distribution of observations.

    ``counts[i]`` tallies observations ``<= buckets[i]``; the implicit
    final ``+Inf`` bucket catches the rest.  ``sum``/``count`` give the
    mean without storing observations.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "_lock")

    def __init__(self, name: str,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs ascending "
                             f"buckets, got {buckets!r}")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def to_dict(self) -> Dict[str, Any]:
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = running + self.counts[-1]
        return {"buckets": cumulative, "sum": self.sum,
                "count": self.count}


class MetricsRegistry:
    """Named instruments, created on first use, rendered in sorted
    order so two scrapes diff cleanly."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets if buckets is not None
                    else DEFAULT_BUCKETS)
            return instrument

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with sorted names."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c
                             in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g
                           in sorted(self._gauges.items())},
                "histograms": {name: h.to_dict() for name, h
                               in sorted(self._histograms.items())},
            }

    def render_text(self) -> str:
        """Flat ``name value`` exposition, one line per series."""
        snapshot = self.to_dict()
        lines: List[str] = []
        for name, value in snapshot["counters"].items():
            lines.append(f"{name} {value}")
        for name, value in snapshot["gauges"].items():
            lines.append(f"{name} {value:g}")
        for name, hist in snapshot["histograms"].items():
            for bound, running in hist["buckets"].items():
                lines.append(f'{name}_bucket{{le="{bound}"}} {running}')
            lines.append(f"{name}_sum {hist['sum']:g}")
            lines.append(f"{name}_count {hist['count']}")
        return "\n".join(lines) + ("\n" if lines else "")
