"""``repro.obs`` — unified tracing, metrics and search telemetry.

The observability substrate under the whole exploration stack, zero
external dependencies:

* :class:`Tracer` / :data:`NULL_TRACER` — cheap counter-annotated
  spans on a monotonic clock, off by default at the cost of one
  attribute check per instrumented seam; scoped over a call tree as a
  thread-local ambient via :func:`tracing_context` (the
  ``shard_context`` pattern);
* :class:`MetricsRegistry` — aggregated counters / gauges /
  fixed-bucket histograms, rendered as JSON or flat text (the daemon's
  ``metrics`` RPC);
* :class:`SearchTelemetry` — the deterministic per-fetch-PC heatmap
  and per-fork-level schedule histogram reports carry in their
  schema-v7 ``telemetry`` section;
* :mod:`repro.obs.export` — capture files (JSONL), Chrome
  ``trace_event`` JSON for Perfetto, deterministic (shard, seq) merge
  of per-worker span streams, and the ``repro trace summary``
  aggregation.

See DESIGN.md, "Observability".
"""

from .export import (CAPTURE_VERSION, chrome_trace, read_capture,
                     sort_spans, summarize_spans, write_capture)
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .telemetry import SearchTelemetry, validate_telemetry
from .tracer import (NULL_TRACER, NullTracer, Span, Tracer,
                     ambient_tracer, tracing_context)

__all__ = [
    "CAPTURE_VERSION", "Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram",
    "MetricsRegistry", "NULL_TRACER", "NullTracer", "SearchTelemetry",
    "Span", "Tracer", "ambient_tracer", "chrome_trace", "read_capture",
    "sort_spans", "summarize_spans", "tracing_context",
    "validate_telemetry", "write_capture",
]
