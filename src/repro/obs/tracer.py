"""Cheap nested spans with a null default — tracing as an ambient.

The stack already counts everything (EngineStats, ShardStats,
PruningStats, SubsumptionStats, AnytimeStats); what it cannot say is
*where the time and steps went* — which frontier pops were expensive,
which shard stalled, what the mcts bandit saw when it picked a branch.
A :class:`Tracer` records that as flat **spans**: named, categorised
intervals on a monotonic clock, tagged with the recording process and
thread and annotated with whatever counters the instrumented seam finds
cheap to attach (step deltas, cache hits, POR skips, UCT scores).
Nesting is positional — Chrome's ``trace_event`` viewers reconstruct
the span tree from interval containment per (pid, tid) track, so the
recorder never maintains a stack.

The cost contract (DESIGN.md, "Observability"): tracing off is the
default, and an instrumented hot path pays **one attribute check** —
``tracer.enabled`` on the :data:`NULL_TRACER` singleton — per
instrumented region, never per machine step.  Instrumentation
therefore lives at the frontier-pop / fork-expansion / shard
granularity, and :class:`ExecutionEngine.step` itself is untouched.

Like the shard pool (:func:`repro.pitchfork.sharding.shard_context`),
the active tracer is a thread-local **ambient**: a CLI ``--trace`` run
scopes one over the whole analysis call tree with
:func:`tracing_context` instead of threading an unpicklable recorder
through every options object.  Shard workers are separate processes —
the parent's ambient does not reach them — so the sharded explorer
ships a ``trace`` flag to each worker, which records into a local
tracer and returns its spans for the parent to :meth:`Tracer.adopt`,
tagged with the shard's merge-slot index.  The (shard, seq) pair is
the deterministic merge key: seq numbers are dense per recorder, so
the merged stream's order is a pure function of the work done, not of
wall-clock interleaving.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER",
           "tracing_context", "ambient_tracer"]


class Span:
    """One completed interval: ``[ts, ts + dur)`` on the recorder's
    monotonic clock, with identity tags and counter annotations.

    ``shard`` is None for spans recorded in the parent process and the
    merge-slot index for spans adopted from a shard worker; ``seq`` is
    dense per recorder, so ``(shard, seq)`` orders a merged stream
    deterministically.  Plain slots + dict round-trip keep spans
    picklable across the pool boundary.
    """

    __slots__ = ("name", "cat", "ts", "dur", "pid", "tid", "shard",
                 "seq", "args")

    def __init__(self, name: str, cat: str, ts: float, dur: float,
                 pid: int, tid: int, shard: Optional[int], seq: int,
                 args: Dict[str, Any]):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.pid = pid
        self.tid = tid
        self.shard = shard
        self.seq = seq
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "cat": self.cat, "ts": self.ts,
                "dur": self.dur, "pid": self.pid, "tid": self.tid,
                "shard": self.shard, "seq": self.seq, "args": self.args}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        return cls(data["name"], data["cat"], data["ts"], data["dur"],
                   data["pid"], data["tid"], data.get("shard"),
                   data["seq"], dict(data.get("args") or {}))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f"shard={self.shard}" if self.shard is not None \
            else f"pid={self.pid}"
        return (f"Span({self.name!r}/{self.cat}, {self.dur * 1e3:.3f}ms, "
                f"{where}, seq={self.seq})")


class _NullSpan:
    """The no-op context manager :meth:`NullTracer.span` hands out."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """A live span recorder (``enabled`` is True).

    Hot seams use the explicit two-call form — ``ts = tracer.start()``
    … work … ``tracer.add(name, cat, ts, args)`` — so the disabled path
    never allocates; cool seams use the :meth:`span` context manager.
    Thread-safe: the daemon records from its event loop and its shard
    threads into one tracer.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._seq = 0

    def start(self) -> float:
        """A timestamp for a later :meth:`add` — just the clock."""
        return self.clock()

    def add(self, name: str, cat: str, ts: float,
            args: Optional[Dict[str, Any]] = None) -> None:
        """Record a span that started at ``ts`` and ends now."""
        dur = self.clock() - ts
        with self._lock:
            seq = self._seq
            self._seq += 1
            self.spans.append(Span(name, cat, ts, dur, os.getpid(),
                                   threading.get_ident(), None, seq,
                                   args if args is not None else {}))

    def instant(self, name: str, cat: str = "repro", **args: Any) -> None:
        """A zero-duration marker span."""
        self.add(name, cat, self.clock(), args)

    @contextmanager
    def span(self, name: str, cat: str = "repro", **args: Any):
        ts = self.start()
        try:
            yield
        finally:
            self.add(name, cat, ts, args)

    def adopt(self, span_dicts: Iterable[Mapping[str, Any]],
              shard: int) -> None:
        """Merge a worker's exported spans under a shard index.

        Worker ``seq`` numbers are kept — (shard, seq) is the
        deterministic stream order — and the worker's own pid/tid tags
        survive so each worker renders as its own track.
        """
        adopted = []
        for data in span_dicts:
            span = Span.from_dict(data)
            span.shard = shard
            adopted.append(span)
        with self._lock:
            self.spans.extend(adopted)

    def export(self) -> List[Dict[str, Any]]:
        """Every recorded span as a plain dict, in recording order."""
        with self._lock:
            return [span.to_dict() for span in self.spans]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Tracer |{len(self.spans)} spans|>"


class NullTracer:
    """The default recorder: off, free, and safe to call anyway.

    ``enabled`` is a class attribute read as *the* hot-path check; all
    recording methods are no-ops so un-guarded cool paths need no
    branches at all.
    """

    enabled = False
    spans: tuple = ()

    def start(self) -> float:
        return 0.0

    def add(self, name: str, cat: str, ts: float,
            args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def instant(self, name: str, cat: str = "repro", **args: Any) -> None:
        pass

    def span(self, name: str, cat: str = "repro", **args: Any):
        return _NULL_SPAN

    def adopt(self, span_dicts: Iterable[Mapping[str, Any]],
              shard: int) -> None:
        pass

    def export(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NullTracer>"


#: The process-wide disabled recorder every seam falls back to.
NULL_TRACER = NullTracer()


class _TraceContext(threading.local):
    """Per-thread ambient tracer for nested analysis call trees."""

    tracer: Optional[Tracer] = None


_CONTEXT = _TraceContext()


@contextmanager
def tracing_context(tracer: Optional[Tracer]):
    """Scope a tracer over a call tree (thread-local, like
    :func:`~repro.pitchfork.sharding.shard_context`).

    Everything constructed in this thread while the context is active —
    explorers, managers, sharded merges — records into ``tracer``;
    ``None`` restores the null default (useful for explicitly shielding
    a subtree).
    """
    previous = _CONTEXT.tracer
    _CONTEXT.tracer = tracer
    try:
        yield tracer
    finally:
        _CONTEXT.tracer = previous


def ambient_tracer():
    """The innermost scoped tracer, or :data:`NULL_TRACER`."""
    tracer = _CONTEXT.tracer
    return tracer if tracer is not None else NULL_TRACER
