"""Search telemetry: where the exploration actually went.

Two deterministic distributions, accumulated by the explorer when
``options.telemetry`` is on and attached to reports under the schema-v7
``telemetry`` section:

* **heatmap** — frontier pops per fetch PC: which program locations the
  search kept returning to.  This is the data behind "why is mcts
  faster here" (its novelty prior is literally an online estimate of
  this map) and "which region is the path explosion";
* **fork_levels** — completed schedules per fork depth: how deep the
  fork tree's mass sits, i.e. which choice-point levels dominate the
  enumeration (the shape ``--prune`` and ``--subsume`` exist to
  flatten).

Both are plain counters over deterministic quantities, so for a fixed
configuration (strategy, seed, shards) the section is bit-stable —
only its ``wall_time`` field is volatile, and
:func:`repro.serve.keys.strip_volatile` zeroes it so the daemon's
byte-identity differential gates are unaffected.  JSON object keys
must be strings, so :meth:`SearchTelemetry.to_section` stringifies the
integer PC / depth keys once, at the serialisation boundary; the
section then round-trips ``Report.to_json``/``from_json`` exactly.

Sharded runs sum per-shard sections (:meth:`SearchTelemetry
.merge_section`) — counts, like the other shard counters, are
additive.  Note the *distribution* is shard-count-dependent by
construction: split-level states are advanced directly (never popped)
and workers re-pop their replayed subtree roots, so compare heatmaps
at equal ``--shards`` only.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

__all__ = ["SearchTelemetry", "validate_telemetry"]


def validate_telemetry(telemetry: Any) -> None:
    """Validate the telemetry knob (shared by every options type)."""
    if not isinstance(telemetry, bool):
        raise ValueError(f"telemetry must be a bool, got {telemetry!r}")


class SearchTelemetry:
    """Accumulator for one exploration's search-shape counters."""

    __slots__ = ("heatmap", "fork_levels", "pops")

    def __init__(self):
        self.heatmap: Dict[int, int] = {}     #: fetch PC -> frontier pops
        self.fork_levels: Dict[int, int] = {} #: fork depth -> schedules
        self.pops = 0

    def record_pop(self, pc: Optional[int]) -> None:
        """One frontier pop at fetch PC ``pc`` (None: ran off program)."""
        self.pops += 1
        if pc is not None:
            self.heatmap[pc] = self.heatmap.get(pc, 0) + 1

    def record_schedule(self, depth: int) -> None:
        """One completed schedule whose path sat at fork depth ``depth``."""
        self.fork_levels[depth] = self.fork_levels.get(depth, 0) + 1

    def merge(self, other: "SearchTelemetry") -> None:
        for pc, n in other.heatmap.items():
            self.heatmap[pc] = self.heatmap.get(pc, 0) + n
        for depth, n in other.fork_levels.items():
            self.fork_levels[depth] = self.fork_levels.get(depth, 0) + n
        self.pops += other.pops

    def merge_section(self, section: Mapping[str, Any]) -> None:
        """Fold in a serialised section (a shard worker's contribution
        crossing the process boundary as its string-keyed dict)."""
        for pc, n in (section.get("heatmap") or {}).items():
            pc = int(pc)
            self.heatmap[pc] = self.heatmap.get(pc, 0) + n
        for depth, n in (section.get("fork_levels") or {}).items():
            depth = int(depth)
            self.fork_levels[depth] = self.fork_levels.get(depth, 0) + n
        self.pops += section.get("pops", 0)

    def to_section(self, wall_time: float) -> Dict[str, Any]:
        """The JSON-ready ``telemetry`` report section.

        Keys are stringified (JSON objects) and sorted numerically so
        the section is deterministic for deterministic counters;
        ``wall_time`` is the only volatile field.
        """
        return {
            "heatmap": {str(pc): self.heatmap[pc]
                        for pc in sorted(self.heatmap)},
            "fork_levels": {str(depth): self.fork_levels[depth]
                            for depth in sorted(self.fork_levels)},
            "pops": self.pops,
            "wall_time": wall_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SearchTelemetry(pops={self.pops}, "
                f"|heatmap|={len(self.heatmap)}, "
                f"|fork_levels|={len(self.fork_levels)})")
