"""A persistent, content-addressed store for analysis :class:`Report`s.

Results are filed under the :func:`~repro.serve.keys.store_key` of their
``(target fingerprint, analysis, options)`` triple::

    <root>/objects/<key[:2]>/<key>.json     one envelope per result
    <root>/index.json                       eviction/GC index

Invariants the rest of the serve stack relies on:

* **atomic writes** — an envelope is written to a same-directory temp
  file and ``os.replace``d into place, so a reader never observes a
  half-written object and a crashed writer leaves at most a temp file
  (swept by :meth:`ResultStore.gc`);
* **corrupt reads are misses** — truncated/garbled JSON, an envelope
  whose recorded key does not match its filename, or a report that no
  longer round-trips raises nothing: :meth:`get` quarantines the object
  (unlinks it) and returns ``None``, so the caller recomputes instead
  of crashing;
* **schema-versioned** — the envelope records its own
  :data:`STORE_VERSION` and the embedded report carries the report
  ``schema_version``; objects written by a *newer* store or report
  schema read as misses rather than misparses.  Older report schemas
  are accepted exactly as :meth:`Report.from_dict` accepts them;
* **self-healing index** — ``index.json`` is a cache of the object
  directory, not the source of truth: a missing or corrupt index is
  rebuilt by scanning ``objects/``.

The store is safe for concurrent readers and writer processes: the only
mutation is an atomic rename (last writer wins — both writers hold the
same deterministic result, so the race is benign), and the index is
rewritten atomically on the same rule.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..api.report import Report

__all__ = ["ResultStore", "StoreStats", "STORE_VERSION"]

#: Version of the on-disk envelope shape.
STORE_VERSION = 1


@dataclass
class StoreStats:
    """Counters for one :class:`ResultStore` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0        #: objects quarantined by failed reads
    evicted: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt,
                "evicted": self.evicted}


class ResultStore:
    """Disk-backed result cache, content-addressed by
    :func:`~repro.serve.keys.store_key`.

        store = ResultStore("~/.cache/repro-store")
        store.put(key, report, target="kocher_01", analysis="pitchfork")
        report = store.get(key)        # None on miss/corruption
    """

    def __init__(self, root: str, max_entries: Optional[int] = None):
        self.root = os.path.abspath(os.path.expanduser(root))
        self.objects = os.path.join(self.root, "objects")
        self._index_path = os.path.join(self.root, "index.json")
        self.max_entries = max_entries
        self.stats = StoreStats()
        self._lock = threading.Lock()
        os.makedirs(self.objects, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def path_for(self, key: str) -> str:
        return os.path.join(self.objects, key[:2], f"{key}.json")

    # -- read ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Report]:
        """The stored report, or ``None`` (miss, corruption, or a newer
        schema than this process can parse)."""
        envelope = self._read_envelope(key)
        if envelope is None:
            self.stats.misses += 1
            return None
        try:
            report = Report.from_dict(envelope["report"])
        except (ValueError, KeyError, TypeError):
            self._quarantine(key)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return report

    def contains(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def _read_envelope(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                envelope = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Truncated by a crashed writer or corrupted on disk:
            # quarantine so the next writer replaces it cleanly.
            self._quarantine(key)
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("store_version", 0) > STORE_VERSION
                or envelope.get("key") != key
                or "report" not in envelope):
            self._quarantine(key)
            return None
        return envelope

    def _quarantine(self, key: str) -> None:
        try:
            os.unlink(self.path_for(key))
            self.stats.corrupt += 1
        except OSError:  # pragma: no cover - already gone / perms
            pass

    # -- write ---------------------------------------------------------------

    def put(self, key: str, report: Report, *,
            target: str = "", analysis: str = "",
            options: Any = None) -> None:
        """Atomically file ``report`` under ``key`` and index it."""
        envelope = {
            "store_version": STORE_VERSION,
            "key": key,
            "target": target or report.target,
            "analysis": analysis or report.analysis,
            "options": repr(options) if options is not None else None,
            "stored_at": time.time(),
            "report": report.to_dict(),
        }
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._atomic_write(path, json.dumps(envelope, sort_keys=True))
        self.stats.stores += 1
        with self._lock:
            index = self._load_index()
            index[key] = {"target": envelope["target"],
                          "analysis": envelope["analysis"],
                          "status": report.status,
                          "stored_at": envelope["stored_at"]}
            self._write_index(index)
        if self.max_entries is not None:
            self.gc(max_entries=self.max_entries)

    @staticmethod
    def _atomic_write(path: str, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - already renamed
                pass
            raise

    # -- the index and GC ----------------------------------------------------

    def _load_index(self) -> Dict[str, Dict[str, Any]]:
        try:
            with open(self._index_path, encoding="utf-8") as fh:
                index = json.load(fh)
            if isinstance(index, dict):
                return index
        except FileNotFoundError:
            pass
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            pass
        return self._rebuild_index()

    def _rebuild_index(self) -> Dict[str, Dict[str, Any]]:
        """Rescan ``objects/`` — the index is only a cache of it."""
        index: Dict[str, Dict[str, Any]] = {}
        for dirpath, _dirs, names in os.walk(self.objects):
            for name in names:
                if not name.endswith(".json") or name.startswith(".tmp-"):
                    continue
                key = name[:-len(".json")]
                envelope = self._read_envelope(key)
                if envelope is not None:
                    index[key] = {
                        "target": envelope.get("target", ""),
                        "analysis": envelope.get("analysis", ""),
                        "status": envelope.get("report", {}).get("status"),
                        "stored_at": envelope.get("stored_at", 0.0)}
        return index

    def _write_index(self, index: Mapping[str, Any]) -> None:
        self._atomic_write(self._index_path,
                           json.dumps(index, sort_keys=True))

    def entries(self) -> List[Dict[str, Any]]:
        """Indexed entries, oldest first; each carries its ``key``."""
        with self._lock:
            index = self._load_index()
        rows = [{"key": key, **meta} for key, meta in index.items()]
        rows.sort(key=lambda row: (row.get("stored_at", 0.0), row["key"]))
        return rows

    def keys(self) -> List[str]:
        return [row["key"] for row in self.entries()]

    def __len__(self) -> int:
        return len(self.entries())

    def gc(self, max_entries: Optional[int] = None,
           max_age: Optional[float] = None) -> int:
        """Evict oldest-first down to ``max_entries`` and/or drop
        entries older than ``max_age`` seconds; sweep stale temp files.
        Returns the number of objects removed."""
        rows = self.entries()
        doomed: List[str] = []
        if max_age is not None:
            cutoff = time.time() - max_age
            doomed.extend(r["key"] for r in rows
                          if r.get("stored_at", 0.0) < cutoff)
        if max_entries is not None and len(rows) > max_entries:
            survivors = [r for r in rows if r["key"] not in set(doomed)]
            doomed.extend(r["key"]
                          for r in survivors[:len(survivors) - max_entries])
        for dirpath, _dirs, names in os.walk(self.objects):
            for name in names:
                if name.startswith(".tmp-"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                    except OSError:  # pragma: no cover - racing writer
                        pass
        if not doomed:
            return 0
        for key in doomed:
            try:
                os.unlink(self.path_for(key))
            except OSError:  # pragma: no cover - already gone
                pass
        self.stats.evicted += len(doomed)
        with self._lock:
            index = self._load_index()
            for key in doomed:
                index.pop(key, None)
            self._write_index(index)
        return len(doomed)

    def clear(self) -> None:
        """Drop every stored object (the index included)."""
        for key in self.keys():
            try:
                os.unlink(self.path_for(key))
            except OSError:  # pragma: no cover - already gone
                pass
        with self._lock:
            self._write_index({})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({self.root!r}, {len(self)} entries)"
