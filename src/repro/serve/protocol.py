"""Wire protocol for the analysis daemon: newline-delimited JSON-RPC 2.0.

One request or response per line, UTF-8, over a Unix or TCP socket.
Kept deliberately tiny — the stdlib has no JSON-RPC, and the daemon
needs exactly five verbs plus lifecycle::

    {"jsonrpc": "2.0", "id": 1, "method": "submit", "params": {...}}
    {"jsonrpc": "2.0", "id": 1, "result": {...}}
    {"jsonrpc": "2.0", "id": 1, "error": {"code": -32601, "message": ..}}

Methods (see :class:`repro.serve.server.ReproServer`):

``ping``, ``submit``, ``status``, ``result``, ``cancel``, ``stats``,
``results`` (store listing) and ``shutdown``.

Error codes follow the JSON-RPC spec for transport errors and use the
server range for domain errors (unknown job/target, draining, …).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = ["PROTOCOL_VERSION", "MAX_LINE", "ProtocolError", "ServeError",
           "request", "response", "error_response", "encode", "decode",
           "PARSE_ERROR", "INVALID_REQUEST", "METHOD_NOT_FOUND",
           "INVALID_PARAMS", "INTERNAL_ERROR", "UNKNOWN_JOB",
           "UNKNOWN_TARGET", "JOB_NOT_DONE", "JOB_FAILED", "DRAINING"]

#: Bumped when the RPC surface changes incompatibly; exchanged in
#: ``ping`` so mismatched client/daemon pairs fail loudly.
PROTOCOL_VERSION = 1

#: Upper bound on one protocol line.  Reports with thousands of
#: violation digests fit in well under a tenth of this.
MAX_LINE = 64 * 1024 * 1024

# JSON-RPC spec codes
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# Server-defined domain codes (-32000..-32099 reserved range)
UNKNOWN_JOB = -32000
UNKNOWN_TARGET = -32001
JOB_NOT_DONE = -32002
JOB_FAILED = -32003
DRAINING = -32004


class ProtocolError(Exception):
    """A malformed frame (transport layer)."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code


class ServeError(Exception):
    """An error *response* surfaced to a client caller."""

    def __init__(self, code: int, message: str,
                 data: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.code = code
        self.data = data or {}


def request(req_id: int, method: str,
            params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    msg: Dict[str, Any] = {"jsonrpc": "2.0", "id": req_id, "method": method}
    if params:
        msg["params"] = params
    return msg


def response(req_id: Any, result: Any) -> Dict[str, Any]:
    return {"jsonrpc": "2.0", "id": req_id, "result": result}


def error_response(req_id: Any, code: int, message: str,
                   data: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code, "message": message}
    if data:
        error["data"] = data
    return {"jsonrpc": "2.0", "id": req_id, "error": error}


def encode(msg: Dict[str, Any]) -> bytes:
    """One frame: compact JSON + newline."""
    return (json.dumps(msg, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse and structurally validate one frame."""
    if len(line) > MAX_LINE:
        raise ProtocolError(INVALID_REQUEST, "frame too large")
    try:
        msg = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(PARSE_ERROR, f"bad JSON frame: {exc}") from None
    if not isinstance(msg, dict) or msg.get("jsonrpc") != "2.0":
        raise ProtocolError(INVALID_REQUEST, "not a JSON-RPC 2.0 frame")
    if "method" in msg and not isinstance(msg["method"], str):
        raise ProtocolError(INVALID_REQUEST, "method must be a string")
    if "params" in msg and not isinstance(msg["params"], dict):
        raise ProtocolError(INVALID_PARAMS, "params must be an object")
    return msg
