"""Stable, cross-process cache keys for analysis results.

The in-memory :class:`~repro.api.manager.AnalysisManager` cache keyed on
``(analysis, Project.fingerprint(), AnalysisOptions)`` worked because
frozen dataclasses hash consistently *within* one interpreter.  A disk
store shared between processes (and between daemon restarts) needs
more:

* **canonical options** — :func:`canonical_options` reduces an
  :class:`~repro.api.project.AnalysisOptions` to the sorted tuple of its
  *non-default* fields.  Two option objects constructed differently but
  equal field-wise map to the same key, and — because defaulted fields
  are omitted — adding a new option with a default value in a later
  schema does not invalidate every previously stored result;
* **content-addressed targets** — :func:`fingerprint_digest` renders the
  ``(program, initial config)`` pair into a canonical text (sorted
  registers, sorted memory cells, instruction listing) and hashes it
  with SHA-256.  The digest is independent of ``PYTHONHASHSEED``,
  interpreter version details, and dict construction order, so any
  process computes the same address for the same target;
* **one key string** — :func:`store_key` combines analysis name, target
  digest and canonical options into the hex name a
  :class:`~repro.serve.store.ResultStore` object is filed under.

:func:`strip_volatile` is the comparison normaliser used by the
differential gates (tests and ``benchmarks/bench_serve.py``): it zeroes
the wall-clock fields and drops the serve-injected ``details.cache``
section, after which a daemon-computed report must be *byte-identical*
to the in-process ``analyze()`` report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import MISSING, fields
from typing import Any, Dict, Mapping, Tuple

__all__ = ["canonical_options", "fingerprint_digest", "options_digest",
           "store_key", "strip_volatile"]


def canonical_options(options) -> Tuple[Tuple[str, Any], ...]:
    """The sorted ``(name, value)`` tuple of non-default option fields.

    Hashable (sequence values are already normalised to tuples by
    ``AnalysisOptions.__post_init__``) and stable across processes.
    """
    out = []
    for f in fields(options):
        value = getattr(options, f.name)
        if f.default is not MISSING and value == f.default:
            continue
        out.append((f.name, value))
    return tuple(sorted(out))


def _render_value(value) -> str:
    """``val:label`` for a labelled machine value."""
    return f"{value.val!r}:{value.label.name}@{value.label.lattice}"


def _target_text(name: str, program, config) -> str:
    """A canonical, deterministic rendering of (program, initial config).

    Dict ordering never leaks in: registers sort by name, memory cells
    by address.  The reorder buffer and RSB of an *initial*
    configuration are empty, but their reprs are included so a
    non-initial configuration can never collide with the initial one.
    """
    lines = [f"name={name}", f"entry={program.entry}"]
    for pp, instr in sorted(program.items()):
        lines.append(f"{pp}: {instr!r}")
    lines.append(f"pc={config.pc}")
    for reg, value in sorted(config.regs.items(), key=lambda kv: kv[0].name):
        lines.append(f"reg {reg.name}={_render_value(value)}")
    for addr, value in sorted(config.mem.cells().items()):
        lines.append(f"mem {addr:#x}={_render_value(value)}")
    lines.append(f"buf={config.buf!r}")
    lines.append(f"rsb={config.rsb!r}")
    return "\n".join(lines)


def fingerprint_digest(project) -> str:
    """SHA-256 hex digest of a project's (name, program, initial config).

    The cross-process form of :meth:`repro.api.project.Project
    .fingerprint`: equal digests ⇒ equal fingerprints ⇒ identical
    analysis results under equal options.
    """
    text = _target_text(project.name, project.program, project.config())
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def options_digest(options) -> str:
    """SHA-256 hex digest of the canonical option tuple."""
    text = repr(canonical_options(options))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def store_key(analysis: str, fingerprint: str, options) -> str:
    """The content address of one ``(target, analysis, options)`` result.

    ``fingerprint`` is a :func:`fingerprint_digest`; ``options`` is an
    ``AnalysisOptions`` or an already-canonical tuple.  The key is the
    SHA-256 of the three parts, so it is filename-safe and uniform.
    """
    canon = options if isinstance(options, tuple) \
        else canonical_options(options)
    text = f"{analysis}\n{fingerprint}\n{canon!r}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def strip_volatile(report_dict: Mapping[str, Any]) -> Dict[str, Any]:
    """A deep copy with run-to-run noise removed, for byte-identity
    comparisons between daemon-computed and in-process reports.

    Zeroes every wall-clock reading (top level, per phase, per shard,
    the first-violation latch, and the anytime consumption stats) and
    drops the serve layer's ``details.cache`` annotation.  Everything
    else — statuses, violations, counters, shard/pruning accounting —
    must match exactly.
    """
    out = json.loads(json.dumps(dict(report_dict), sort_keys=True))
    out["wall_time"] = 0.0
    for phase in out.get("phases", ()):
        phase["wall_time"] = 0.0
    for shard in out.get("shard_stats", ()):
        shard["wall_time"] = 0.0
    first_violation = out.get("first_violation")
    if isinstance(first_violation, dict):
        first_violation["wall_time"] = 0.0
    anytime = out.get("anytime")
    if isinstance(anytime, dict):
        anytime["budget_consumed"] = 0.0
        if anytime.get("first_violation_time") is not None:
            anytime["first_violation_time"] = 0.0
    telemetry = out.get("telemetry")
    if isinstance(telemetry, dict):
        # The heatmap/fork-level counters are deterministic for a fixed
        # configuration; wall_time is the section's only volatile field.
        telemetry["wall_time"] = 0.0
    cross_check = out.get("cross_check")
    if isinstance(cross_check, dict):
        # Observation sets and completeness flags are deterministic;
        # the per-backend wall times are the section's only volatile
        # fields.
        for key in list(cross_check):
            if key.endswith("_wall_time"):
                cross_check[key] = 0.0
    details = out.get("details")
    if isinstance(details, dict):
        details.pop("cache", None)
    return out
