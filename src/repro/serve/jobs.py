"""Job payloads: how a submitted target travels to a warm worker.

A job is described by plain JSON data — a **target spec**, an analysis
name, and an options-override mapping — so the same payload can cross
the RPC socket *and* the process-pool boundary unchanged:

``{"kind": "name", "name": "kocher_01"}``
    a registered litmus case or Table 2 case-study variant, resolved
    exactly as the ``repro analyze`` CLI resolves positional targets
    (variants first, then litmus cases);

``{"kind": "asm", "source": "...", "regs": {"ra": 9}, "pc": 0}``
    raw assembly shipped by value — the client reads the file, the
    daemon never touches the client's filesystem.

Both kinds accept ``"preset": "paper" | "table2"`` for the named
options presets.  :func:`resolve_project` is the single resolution
path shared by the daemon, its pool workers and the CLI;
:func:`run_job` is the module-level pool entry point (picklable under
every multiprocessing start method, like the sharding/manager entry
points it mirrors).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from ..api.analyses import get_analysis
from ..api.project import AnalysisOptions, Project
from ..api.report import Report

__all__ = ["resolve_project", "run_job", "effective_options",
           "spec_for_name", "spec_for_asm"]


def spec_for_name(name: str, preset: Optional[str] = None) -> Dict[str, Any]:
    spec: Dict[str, Any] = {"kind": "name", "name": name}
    if preset:
        spec["preset"] = preset
    return spec


def spec_for_asm(source: str, *, regs: Optional[Mapping[str, int]] = None,
                 pc: Optional[int] = None, name: str = "<asm>",
                 preset: Optional[str] = None) -> Dict[str, Any]:
    spec: Dict[str, Any] = {"kind": "asm", "source": source, "name": name}
    if regs:
        spec["regs"] = dict(regs)
    if pc is not None:
        spec["pc"] = pc
    if preset:
        spec["preset"] = preset
    return spec


def _preset_options(spec: Mapping[str, Any]) -> Optional[AnalysisOptions]:
    preset = spec.get("preset")
    if preset is None:
        return None
    if preset == "paper":
        return AnalysisOptions.paper()
    if preset == "table2":
        return AnalysisOptions.table2()
    raise ValueError(f"unknown preset {preset!r} "
                     f"(expected 'paper' or 'table2')")


def resolve_project(spec: Mapping[str, Any]) -> Project:
    """Build the :class:`Project` a spec describes.

    Mirrors the CLI's target resolution bit-for-bit (same constructors,
    same default options), so a daemon-run analysis starts from exactly
    the state a local ``repro analyze`` would.  Raises ``KeyError`` for
    unknown names and ``ValueError`` for malformed specs.
    """
    kind = spec.get("kind", "name")
    options = _preset_options(spec)
    if kind == "asm":
        source = spec.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ValueError("asm spec needs non-empty 'source'")
        return Project.from_asm(
            source,
            regs={str(k): int(v) for k, v in (spec.get("regs") or {}).items()},
            pc=spec.get("pc"), name=spec.get("name", "<asm>"),
            options=options)
    if kind != "name":
        raise ValueError(f"unknown target kind {kind!r} "
                         f"(expected 'name' or 'asm')")
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("name spec needs a non-empty 'name'")
    from ..casestudies import all_case_studies
    for study in all_case_studies():
        for variant in study.variants():
            if variant.name == name:
                return Project.from_variant(variant, options=options)
    try:
        return Project.from_litmus(name, options=options)
    except KeyError:
        raise KeyError(f"unknown target {name!r}: not a case-study "
                       f"variant or litmus case "
                       f"(try `repro list`)") from None


def effective_options(project: Project,
                      overrides: Mapping[str, Any]) -> AnalysisOptions:
    """The options the analysis will actually run under — the project's
    defaults with the submitted overrides applied.  This is what cache
    keys are computed from.

    Every :class:`AnalysisOptions` field is overridable, including the
    anytime ``budget_seconds`` and the ``mcts_c``/``mcts_playout`` knobs
    — a budgeted job caches under a distinct store key (budget is part
    of the canonical options), so a truncated anytime result never
    shadows a complete run of the same target."""
    return project.options.with_(**dict(overrides))


def run_job(spec: Mapping[str, Any], analysis: str,
            overrides: Mapping[str, Any]) -> Report:
    """Pool-worker entry point: resolve the target, run the analysis.

    Runs serially inside one warm worker (the daemon routes
    ``shards > 1`` jobs through the resident shard pool instead, so a
    worker never nests a pool of its own).
    """
    project = resolve_project(spec)
    return get_analysis(analysis).run(project, **dict(overrides))
