"""``repro.serve`` — analysis as a service.

The library-to-service layer: a resident daemon that owns a warm pool
of shard workers and a persistent content-addressed result store, so
repeated analyses over near-identical inputs (CI pipelines, bound
ablations, batch sweeps) stop paying process spawn + prefix replay per
call and survive restarts.

Pieces (each its own module):

* :mod:`~repro.serve.keys` — stable cross-process cache keys:
  canonical options, target fingerprint digests, store addresses;
* :mod:`~repro.serve.store` — :class:`ResultStore`, the atomic,
  schema-versioned, corruption-tolerant on-disk report store (also
  pluggable into :class:`~repro.api.manager.AnalysisManager` as a
  second cache tier);
* :mod:`~repro.serve.pool` — :class:`WarmPool`, the owned-lifecycle
  resident ``ProcessPoolExecutor``;
* :mod:`~repro.serve.jobs` — JSON job payloads shared by the RPC
  socket and the pool boundary;
* :mod:`~repro.serve.protocol` — newline-delimited JSON-RPC 2.0;
* :mod:`~repro.serve.server` — :class:`ReproServer`, the asyncio
  daemon (``repro serve``);
* :mod:`~repro.serve.client` — :class:`ServeClient`, the blocking
  client (``repro submit`` / ``repro results``).

See DESIGN.md, "Analysis as a service".
"""

from .client import ServeClient, ServeError
from .jobs import resolve_project, run_job, spec_for_asm, spec_for_name
from .keys import (canonical_options, fingerprint_digest, options_digest,
                   store_key, strip_volatile)
from .pool import WarmPool
from .server import ReproServer, ServerHandle, default_socket_path, \
    start_in_thread
from .store import STORE_VERSION, ResultStore, StoreStats

__all__ = [
    "ServeClient", "ServeError", "ReproServer", "ServerHandle",
    "start_in_thread", "default_socket_path", "WarmPool", "ResultStore",
    "StoreStats", "STORE_VERSION", "canonical_options",
    "fingerprint_digest", "options_digest", "store_key", "strip_volatile",
    "resolve_project", "run_job", "spec_for_asm", "spec_for_name",
]
