"""Blocking client for the analysis daemon.

One :class:`ServeClient` is one socket connection issuing sequential
JSON-RPC calls; open several clients for concurrency (the daemon
multiplexes connections).  The high-level helpers mirror the CLI verbs:

    with ServeClient(socket_path=path) as client:
        job = client.submit({"kind": "name", "name": "kocher_01"})
        report, cache = client.wait(job["job"])

``wait`` polls ``status`` (cheap: the daemon answers from the job
table) and pages through the streaming progress events, handing each to
an optional callback as it arrives.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

from ..api.report import Report
from . import protocol
from .protocol import ServeError

__all__ = ["ServeClient", "ServeError", "ServeStats"]


@dataclass(frozen=True)
class ServeStats(Mapping):
    """The daemon's ``stats`` reply with the lifetime fields typed.

    Mapping-compatible with the raw reply dict (``stats["pool"]``,
    ``stats.get("jobs")`` keep working), plus typed accessors for the
    fields every monitoring consumer wants: when the daemon started
    (``started_at``, epoch seconds) and how long it has been up
    (``uptime_s``).  Older daemons that only report ``uptime`` still
    populate ``uptime_s``; their ``started_at`` is reconstructed from
    the reply's arrival time.
    """

    raw: Dict[str, Any] = field(default_factory=dict)
    started_at: float = 0.0
    uptime_s: float = 0.0

    @classmethod
    def from_reply(cls, reply: Mapping[str, Any]) -> "ServeStats":
        raw = dict(reply)
        uptime = float(raw.get("uptime_s", raw.get("uptime", 0.0)))
        started = raw.get("started_at")
        if started is None:
            started = time.time() - uptime
        return cls(raw=raw, started_at=float(started), uptime_s=uptime)

    def __getitem__(self, key: str) -> Any:
        return self.raw[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self.raw)

    def __len__(self) -> int:
        return len(self.raw)

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.raw)


class ServeClient:
    """A connected daemon client (context manager)."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: Optional[int] = None,
                 timeout: float = 600.0):
        if socket_path is None and host is None:
            from .server import default_socket_path
            socket_path = default_socket_path()
        self.socket_path = socket_path
        self.host, self.port = host, port
        self.timeout = timeout
        self._seq = 0
        try:
            if socket_path is not None:
                self._sock = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(socket_path)
            else:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout)
        except OSError as exc:
            where = socket_path if socket_path is not None \
                else f"{host}:{port}"
            raise ConnectionError(
                f"cannot reach analysis daemon at {where}: {exc} "
                f"(is `repro serve` running?)") from exc
        self._file = self._sock.makefile("rb")

    # -- transport -----------------------------------------------------------

    def call(self, method: str, **params: Any) -> Dict[str, Any]:
        """One round-trip; raises :class:`ServeError` on error replies."""
        self._seq += 1
        frame = protocol.request(self._seq, method, params or None)
        self._sock.sendall(protocol.encode(frame))
        line = self._file.readline(protocol.MAX_LINE)
        if not line:
            raise ConnectionError("daemon closed the connection")
        msg = protocol.decode(line)
        if "error" in msg:
            error = msg["error"]
            raise ServeError(error.get("code", protocol.INTERNAL_ERROR),
                             error.get("message", "unknown error"),
                             error.get("data"))
        return msg.get("result", {})

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def submit(self, target: Mapping[str, Any],
               analysis: str = "pitchfork",
               options: Optional[Mapping[str, Any]] = None
               ) -> Dict[str, Any]:
        return self.call("submit", target=dict(target), analysis=analysis,
                         options=dict(options or {}))

    def status(self, job_id: str, since: int = 0) -> Dict[str, Any]:
        return self.call("status", job=job_id, since=since)

    def result(self, job_id: str) -> Tuple[Report, Dict[str, Any]]:
        """The finished job's :class:`Report` plus the daemon's cache
        counters (``source``/``memory_hits``/``store_hits``/…)."""
        result = self.call("result", job=job_id)
        return Report.from_dict(result["report"]), result.get("cache", {})

    def result_dict(self, job_id: str) -> Dict[str, Any]:
        """The raw result payload (pristine report dict + cache)."""
        return self.call("result", job=job_id)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.call("cancel", job=job_id)

    def stats(self) -> ServeStats:
        """Daemon stats, mapping-compatible with the raw reply and with
        ``started_at``/``uptime_s`` typed (see :class:`ServeStats`)."""
        return ServeStats.from_reply(self.call("stats"))

    def metrics(self, render: bool = False) -> Dict[str, Any]:
        """The daemon's aggregated metrics registry
        (``{"metrics": {counters, gauges, histograms}, "interval"}``;
        ``render=True`` adds a flat text exposition)."""
        return self.call("metrics", render=render)

    def results(self, limit: int = 50) -> Dict[str, Any]:
        return self.call("results", limit=limit)

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.call("shutdown", drain=drain)

    # -- conveniences --------------------------------------------------------

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.05,
             on_event: Optional[Callable[[Dict[str, Any]], None]] = None
             ) -> Tuple[Report, Dict[str, Any]]:
        """Poll until the job settles; return (report, cache counters).

        Streams progress: each new event is passed to ``on_event`` as
        the poll that first sees it.  Raises :class:`ServeError` for
        failed/cancelled jobs and ``TimeoutError`` on ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        delay = poll
        while True:
            status = self.status(job_id, since=cursor)
            if on_event is not None:
                for event in status.get("events", ()):
                    on_event(event)
            cursor = status.get("next_cursor", cursor)
            if status["state"] not in ("queued", "running"):
                return self.result(job_id)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout}s")
            time.sleep(delay)
            delay = min(delay * 1.5, 0.5)

    def submit_and_wait(self, target: Mapping[str, Any],
                        analysis: str = "pitchfork",
                        options: Optional[Mapping[str, Any]] = None,
                        timeout: Optional[float] = None,
                        on_event: Optional[Callable[[Dict[str, Any]], None]]
                        = None) -> Tuple[Report, Dict[str, Any]]:
        job = self.submit(target, analysis=analysis, options=options)
        return self.wait(job["job"], timeout=timeout, on_event=on_event)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.socket_path or f"{self.host}:{self.port}"
        return f"ServeClient({where!r})"
