"""The resident analysis daemon.

:class:`ReproServer` is an asyncio front end over the subsystem's three
owned resources:

* a :class:`~repro.serve.pool.WarmPool` of shard workers — started
  once, health-checked, drained on shutdown.  ``shards == 1`` jobs run
  *whole* on a warm worker (no process spawn per call); ``shards > 1``
  jobs run their split/merge in a server thread with the resident pool
  scoped in via :func:`repro.pitchfork.sharding.shard_context`, so
  serial, per-call and resident pools share one worker code path;
* a :class:`~repro.serve.store.ResultStore` — every computed report is
  filed under its ``(fingerprint, analysis, options)`` content address;
  a warm resubmission is answered from the store (or the in-process
  memory tier above it) without ever touching the pool;
* a job table with streaming progress — sharded runs publish their
  per-shard merge events (:class:`ShardStats` fields + partial
  findings) into the job record, which ``status`` polls page through
  with a cursor.

RPC surface (JSON-RPC 2.0, newline-delimited; see
:mod:`repro.serve.protocol`): ``ping``, ``submit``, ``status``,
``result``, ``cancel``, ``stats``, ``metrics``, ``results``,
``shutdown``.

The daemon also keeps a :class:`~repro.obs.MetricsRegistry`: cache-tier
and job counters, a job wall-time histogram, and gauges (pool size,
in-flight jobs, warm-hit ratio) sampled periodically and refreshed
on-demand by the ``metrics`` RPC — ``repro serve --stats`` renders it.

Shutdown is a *drain*: new submissions are refused, in-flight jobs run
to completion (and are persisted), then the pool is shut down and the
listener closed — in-flight work is never dropped on the floor.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..api.analyses import get_analysis
from ..api.project import AnalysisOptions, Project
from ..api.report import Report
from ..obs import MetricsRegistry
from ..pitchfork.sharding import shard_context
from . import protocol
from .jobs import effective_options, resolve_project, run_job
from .keys import fingerprint_digest, store_key
from .pool import WarmPool
from .store import ResultStore

__all__ = ["ReproServer", "Job", "ServerHandle", "start_in_thread",
           "default_socket_path"]

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled")

#: Where a finished job's report came from.
SOURCE_COMPUTED, SOURCE_STORE, SOURCE_MEMORY = (
    "computed", "store", "memory")


def default_socket_path() -> str:
    """``$REPRO_SERVE_SOCKET`` or a per-user path under the temp dir."""
    env = os.environ.get("REPRO_SERVE_SOCKET")
    if env:
        return env
    uid = os.getuid() if hasattr(os, "getuid") else 0
    import tempfile
    return os.path.join(tempfile.gettempdir(), f"repro-serve-{uid}.sock")


@dataclass
class Job:
    """One submitted analysis run."""

    id: str
    key: str
    target: str
    analysis: str
    spec: Dict[str, Any]
    overrides: Dict[str, Any]
    state: str = QUEUED
    source: str = SOURCE_COMPUTED
    report: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Exception class name and formatted traceback of a FAILED job —
    #: the one-line ``error`` is for humans, these are for tooling
    #: (both ride on the failure state event and ``public_state()``).
    error_type: Optional[str] = None
    error_traceback: Optional[str] = None
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    cancel_requested: bool = False
    events: List[Dict[str, Any]] = field(default_factory=list)
    violations_so_far: int = 0
    #: The pool future for whole-job dispatches (cancellable while
    #: queued; a running worker job is cancelled best-effort at merge).
    future: Any = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def add_event(self, event: Dict[str, Any]) -> None:
        """Append a progress event (called from server loop *and* the
        sharded-merge thread; the lock keeps seq numbers dense)."""
        with self._lock:
            event = dict(event)
            event["seq"] = len(self.events)
            self.events.append(event)
            if "cumulative_violations" in event:
                self.violations_so_far = event["cumulative_violations"]

    def public_state(self) -> Dict[str, Any]:
        wall = None
        if self.started is not None:
            wall = (self.finished or time.time()) - self.started
        return {"job": self.id, "state": self.state, "source": self.source,
                "target": self.target, "analysis": self.analysis,
                "key": self.key, "created": self.created,
                "wall_time": wall, "error": self.error,
                "error_type": self.error_type,
                "error_traceback": self.error_traceback,
                "violations_so_far": self.violations_so_far,
                "events_available": len(self.events)}


class ReproServer:
    """The daemon: warm pool + result store + job table behind JSON-RPC.

        server = ReproServer(socket_path="/tmp/repro.sock",
                             store="~/.cache/repro-store", workers=4)
        server.run()                        # blocks; SIGINT drains
    """

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: int = 0,
                 store: Optional[object] = None,
                 workers: Optional[int] = None,
                 metrics_interval: float = 5.0):
        if socket_path is None and host is None:
            socket_path = default_socket_path()
        self.socket_path = socket_path
        self.host, self.port = host, port
        if isinstance(store, str):
            store = ResultStore(store)
        self.store: Optional[ResultStore] = store
        #: Aggregated counters/gauges/histograms for the ``metrics``
        #: RPC; gauges are sampled every ``metrics_interval`` seconds
        #: and refreshed on-demand per request.  Created before the
        #: pool so pool traffic mirrors into the same registry.
        self.metrics = MetricsRegistry()
        self.metrics_interval = metrics_interval
        self.pool = WarmPool(workers, metrics=self.metrics)
        self._jobs: Dict[str, Job] = {}
        self._active_by_key: Dict[str, str] = {}
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._seq = itertools.count(1)
        self._tasks: set = set()
        self._threads = ThreadPoolExecutor(
            max_workers=max(4, self.pool.workers),
            thread_name_prefix="repro-serve-job")
        self._server: Optional[asyncio.AbstractServer] = None
        self._done: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._shutdown_task: Optional[asyncio.Task] = None
        self._started_at = time.time()
        self.memory_hits = 0
        self.store_hits = 0
        self.jobs_computed = 0
        self.jobs_coalesced = 0
        self._sampler_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port)
            self.port = self._server.sockets[0].getsockname()[1]
        self._sampler_task = self._loop.create_task(
            self._sample_periodically())

    @property
    def address(self) -> Dict[str, Any]:
        if self.socket_path is not None:
            return {"socket": self.socket_path}
        return {"host": self.host, "port": self.port}

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._done.wait()

    def run(self) -> None:
        """Blocking entry point (the ``repro serve`` CLI)."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass

    async def request_shutdown(self, drain: bool = True,
                               timeout: Optional[float] = None) -> None:
        """Stop accepting, drain in-flight jobs, stop the pool, exit."""
        self._draining = True
        if self._sampler_task is not None:
            self._sampler_task.cancel()
        if self._server is not None:
            self._server.close()
        if drain and self._tasks:
            await asyncio.wait(set(self._tasks), timeout=timeout)
        # The pool's futures are settled once the job tasks are done;
        # shutdown in a thread so a wedged worker can't hang the loop
        # forever when drain=False.
        await asyncio.get_running_loop().run_in_executor(
            self._threads, lambda: self.pool.shutdown(drain=drain,
                                                      timeout=timeout))
        if self._server is not None:
            await self._server.wait_closed()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._threads.shutdown(wait=False)
        self._done.set()

    # -- connection handling -------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                reply = await self._dispatch_line(line)
                if reply is not None:
                    writer.write(protocol.encode(reply))
                    try:
                        await writer.drain()
                    except ConnectionResetError:
                        break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch_line(self, line: bytes) -> Optional[Dict[str, Any]]:
        try:
            msg = protocol.decode(line)
        except protocol.ProtocolError as exc:
            return protocol.error_response(None, exc.code, str(exc))
        req_id = msg.get("id")
        method = msg.get("method")
        params = msg.get("params", {})
        handler = getattr(self, f"rpc_{method}", None)
        if handler is None:
            return protocol.error_response(
                req_id, protocol.METHOD_NOT_FOUND,
                f"unknown method {method!r}")
        try:
            result = handler(params)
            if asyncio.iscoroutine(result):
                result = await result
            return protocol.response(req_id, result)
        except protocol.ServeError as exc:
            return protocol.error_response(req_id, exc.code, str(exc),
                                           exc.data)
        except (KeyError, ValueError, TypeError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            return protocol.error_response(req_id, protocol.INVALID_PARAMS,
                                           str(message))
        except Exception as exc:  # pragma: no cover - defensive
            return protocol.error_response(req_id, protocol.INTERNAL_ERROR,
                                           f"{type(exc).__name__}: {exc}")

    # -- RPC methods ---------------------------------------------------------

    def rpc_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "protocol": protocol.PROTOCOL_VERSION,
                "pid": os.getpid(), "draining": self._draining}

    def rpc_submit(self, params: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            raise protocol.ServeError(protocol.DRAINING,
                                      "daemon is draining; not accepting "
                                      "new submissions")
        spec = params.get("target")
        if not isinstance(spec, dict):
            raise protocol.ServeError(protocol.INVALID_PARAMS,
                                      "submit needs a 'target' spec object")
        analysis_name = params.get("analysis", "pitchfork")
        overrides = dict(params.get("options") or {})
        try:
            analysis = get_analysis(analysis_name).name
            project = resolve_project(spec)
            options = effective_options(project, overrides)
        except KeyError as exc:
            raise protocol.ServeError(
                protocol.UNKNOWN_TARGET,
                str(exc.args[0] if exc.args else exc)) from None
        except (ValueError, TypeError) as exc:
            raise protocol.ServeError(protocol.INVALID_PARAMS,
                                      str(exc)) from None
        key = store_key(analysis, fingerprint_digest(project), options)
        self.metrics.counter("serve_jobs_submitted_total").inc()

        # Warm tiers first: the in-process memory cache, then the disk
        # store.  Either answers without touching the pool at all.
        cached = self._memory.get(key)
        source = SOURCE_MEMORY
        if cached is None and self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                cached = stored.to_dict()
                self._memory[key] = cached
                source = SOURCE_STORE
                self.store_hits += 1
                self.metrics.counter("serve_store_hits_total").inc()
        elif cached is not None:
            self.memory_hits += 1
            self.metrics.counter("serve_memory_hits_total").inc()
        if cached is not None:
            job = self._new_job(key, project.name, analysis, spec, overrides)
            job.state = DONE
            job.source = source
            job.report = cached
            job.started = job.finished = time.time()
            job.violations_so_far = len(cached.get("violations", ()))
            job.add_event({"kind": "state", "state": DONE, "source": source})
            return {**job.public_state(), "cached": True}

        # Coalesce identical in-flight work onto one computation.
        active_id = self._active_by_key.get(key)
        if active_id is not None:
            active = self._jobs.get(active_id)
            if active is not None and active.state in (QUEUED, RUNNING):
                self.jobs_coalesced += 1
                self.metrics.counter("serve_jobs_coalesced_total").inc()
                return {**active.public_state(), "cached": False,
                        "coalesced": True}

        job = self._new_job(key, project.name, analysis, spec, overrides)
        job.add_event({"kind": "state", "state": QUEUED})
        self._active_by_key[key] = job.id
        task = self._loop.create_task(
            self._run_job(job, project, options))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return {**job.public_state(), "cached": False}

    def rpc_status(self, params: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job(params)
        since = int(params.get("since", 0))
        with job._lock:
            events = list(job.events[since:])
            cursor = len(job.events)
        return {**job.public_state(), "events": events,
                "next_cursor": cursor}

    def rpc_result(self, params: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job(params)
        if job.state in (QUEUED, RUNNING):
            raise protocol.ServeError(
                protocol.JOB_NOT_DONE,
                f"job {job.id} is {job.state}", data=job.public_state())
        if job.state in (FAILED, CANCELLED):
            raise protocol.ServeError(
                protocol.JOB_FAILED,
                job.error or f"job {job.id} was {job.state}",
                data=job.public_state())
        return {"job": job.id, "key": job.key, "report": job.report,
                "source": job.source,
                "cache": self._cache_counters(job.source)}

    def rpc_cancel(self, params: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job(params)
        if job.state in (DONE, FAILED, CANCELLED):
            return {"job": job.id, "state": job.state, "cancelled": False}
        job.cancel_requested = True
        if job.future is not None:
            # Only dequeues a not-yet-started pool job; a running one
            # finishes and has its result dropped (but stored — it is
            # deterministic, so future submissions still benefit).
            job.future.cancel()
        job.add_event({"kind": "state", "state": "cancel-requested"})
        return {"job": job.id, "state": job.state, "cancelled": True}

    def rpc_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        uptime = time.time() - self._started_at
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            # "uptime" predates started_at/uptime_s and is kept for
            # older clients; new consumers read the typed pair.
            "uptime": uptime,
            "started_at": self._started_at,
            "uptime_s": uptime,
            "draining": self._draining,
            "jobs": states,
            "cache": self._cache_counters(None),
            "pool": self.pool.stats(),
            "store": (None if self.store is None else
                      {"root": self.store.root,
                       "entries": len(self.store),
                       **self.store.stats.to_dict()}),
        }

    def rpc_metrics(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The aggregated registry, with gauges refreshed on demand
        (the periodic sampler covers pull-less consumers like dashboards
        scraping ``repro serve --stats``)."""
        self._sample_gauges()
        result: Dict[str, Any] = {"metrics": self.metrics.to_dict(),
                                  "interval": self.metrics_interval}
        if params.get("render"):
            result["rendered"] = self.metrics.render_text()
        return result

    def rpc_results(self, params: Dict[str, Any]) -> Dict[str, Any]:
        if self.store is None:
            raise protocol.ServeError(protocol.INVALID_PARAMS,
                                      "daemon runs without a result store")
        limit = int(params.get("limit", 50))
        rows = self.store.entries()
        return {"entries": rows[-limit:], "total": len(rows)}

    def rpc_shutdown(self, params: Dict[str, Any]) -> Dict[str, Any]:
        drain = bool(params.get("drain", True))
        inflight = sum(1 for j in self._jobs.values()
                       if j.state in (QUEUED, RUNNING))
        self._draining = True
        task = self._loop.create_task(self.request_shutdown(drain=drain))
        # Keep a reference so the shutdown task isn't GC'd mid-flight;
        # it must NOT go through self._tasks (request_shutdown awaits
        # those, and a task awaiting itself deadlocks the drain).
        self._shutdown_task = task
        return {"draining": True, "drain": drain, "jobs_inflight": inflight}

    # -- gauge sampling ------------------------------------------------------

    def _sample_gauges(self) -> None:
        """One gauge snapshot: pool occupancy, job table, hit ratio."""
        pool = self.pool.stats()
        self.metrics.gauge("serve_pool_workers").set(pool.get("workers", 0))
        self.metrics.gauge("serve_pool_inflight").set(
            pool.get("inflight", 0))
        self.metrics.gauge("serve_jobs_inflight").set(
            sum(1 for j in self._jobs.values()
                if j.state in (QUEUED, RUNNING)))
        warm = self.memory_hits + self.store_hits
        answered = warm + self.jobs_computed
        self.metrics.gauge("serve_cache_hit_ratio").set(
            warm / answered if answered else 0.0)

    async def _sample_periodically(self) -> None:
        try:
            while not self._draining:
                self._sample_gauges()
                await asyncio.sleep(self.metrics_interval)
        except asyncio.CancelledError:  # pragma: no cover - shutdown
            pass

    # -- job execution -------------------------------------------------------

    def _new_job(self, key: str, target: str, analysis: str,
                 spec: Dict[str, Any], overrides: Dict[str, Any]) -> Job:
        job = Job(id=f"job-{next(self._seq)}", key=key, target=target,
                  analysis=analysis, spec=dict(spec), overrides=overrides)
        self._jobs[job.id] = job
        return job

    def _job(self, params: Dict[str, Any]) -> Job:
        job_id = params.get("job")
        job = self._jobs.get(job_id)
        if job is None:
            raise protocol.ServeError(protocol.UNKNOWN_JOB,
                                      f"unknown job {job_id!r}")
        return job

    def _cache_counters(self, source: Optional[str]) -> Dict[str, Any]:
        counters = {"memory_hits": self.memory_hits,
                    "store_hits": self.store_hits,
                    "computed": self.jobs_computed,
                    "coalesced": self.jobs_coalesced}
        if source is not None:
            counters["source"] = source
        if self.store is not None:
            counters["store"] = self.store.stats.to_dict()
        return counters

    async def _run_job(self, job: Job, project: Project,
                       options: AnalysisOptions) -> None:
        job.state = RUNNING
        job.started = time.time()
        job.add_event({"kind": "state", "state": RUNNING})
        loop = asyncio.get_running_loop()
        try:
            if options.shards > 1:
                # Split/merge in a server thread; the shard jobs land on
                # the resident pool via the ambient shard_context.  The
                # job's event list doubles as the live progress stream.
                report = await loop.run_in_executor(
                    self._threads, self._run_sharded, job, project)
            else:
                # Whole job on one warm worker: no per-call process
                # spawn, and a worker crash is one failed job.
                future = self.pool.submit(
                    run_job, job.spec, job.analysis, job.overrides)
                job.future = future
                report = await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            job.state = CANCELLED
            job.error = "cancelled"
            job.finished = time.time()
            job.add_event({"kind": "state", "state": CANCELLED})
            return
        except Exception as exc:
            # Boundary handler: a bad job must never take the daemon
            # down, whatever it raises — but the failure travels to the
            # client with its class name and full traceback, never as a
            # bare message.
            job.state = CANCELLED if job.cancel_requested else FAILED
            if job.state == FAILED:
                self.metrics.counter("serve_jobs_failed_total").inc()
            job.error = f"{type(exc).__name__}: {exc}"
            job.error_type = type(exc).__name__
            job.error_traceback = traceback.format_exc()
            job.finished = time.time()
            job.add_event({"kind": "state", "state": job.state,
                           "error": job.error,
                           "error_type": job.error_type,
                           "error_traceback": job.error_traceback})
            return
        finally:
            if self._active_by_key.get(job.key) == job.id:
                del self._active_by_key[job.key]
        job.finished = time.time()
        report_dict = report.to_dict()
        if job.cancel_requested:
            # The computation finished before the cancel took effect;
            # honour the cancel (drop the result from the job) but keep
            # the deterministic report for future warm hits.
            job.state = CANCELLED
            job.error = "cancelled"
        else:
            job.state = DONE
            job.report = report_dict
            job.violations_so_far = len(report_dict.get("violations", ()))
        self.jobs_computed += 1
        self.metrics.counter("serve_jobs_computed_total").inc()
        self.metrics.histogram("serve_job_wall_seconds").observe(
            job.finished - job.started)
        self._memory[job.key] = report_dict
        if self.store is not None:
            self.store.put(job.key, report, target=job.target,
                           analysis=job.analysis)
        job.add_event({"kind": "state", "state": job.state,
                       "source": job.source,
                       "violations": job.violations_so_far,
                       "engine": {
                           "paths_explored":
                               report_dict.get("paths_explored", 0),
                           "states_stepped":
                               report_dict.get("states_stepped", 0),
                           "states_reused":
                               report_dict.get("states_reused", 0)}})

    def _run_sharded(self, job: Job, project: Project):
        with shard_context(pool=self.pool, progress=job.add_event):
            return get_analysis(job.analysis).run(project, **job.overrides)


# -- in-process harness -------------------------------------------------------


class ServerHandle:
    """A running server in a background thread (tests, benchmarks, and
    anything else that wants a daemon without a subprocess)."""

    def __init__(self, server: ReproServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        self.server = server
        self.thread = thread
        self.loop = loop

    @property
    def address(self) -> Dict[str, Any]:
        return self.server.address

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Graceful stop: drain jobs, shut the pool, join the thread."""
        if self.thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.request_shutdown(drain=drain, timeout=timeout),
                self.loop)
            try:
                future.result(timeout=timeout)
            except Exception:  # pragma: no cover - loop already gone
                pass
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(**kw) -> ServerHandle:
    """Start a :class:`ReproServer` on a fresh event loop in a daemon
    thread and block until it is accepting connections."""
    server = ReproServer(**kw)
    started = threading.Event()
    failure: List[BaseException] = []
    holder: Dict[str, asyncio.AbstractEventLoop] = {}

    def runner():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop

        async def main():
            try:
                await server.start()
            except BaseException as exc:
                failure.append(exc)
                raise
            finally:
                started.set()
            await server._done.wait()

        try:
            loop.run_until_complete(main())
        except BaseException as exc:  # pragma: no cover - startup failure
            if not failure:
                failure.append(exc)
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=runner, daemon=True,
                              name="repro-serve")
    thread.start()
    if not started.wait(timeout=30):  # pragma: no cover - wedged host
        raise RuntimeError("serve daemon failed to start within 30s")
    if failure:
        raise RuntimeError(f"serve daemon failed to start: {failure[0]}")
    return ServerHandle(server, thread, holder["loop"])
