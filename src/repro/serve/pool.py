"""The resident shard-worker pool: one ``ProcessPoolExecutor`` with an
*owned* lifecycle.

The per-call pools documented in :mod:`repro.pitchfork.sharding` exist
because a module-level executor cached behind the library's back
poisons every process forked after it (the inherited
``concurrent.futures`` atexit join deadlocks the child).  The daemon
dissolves that constraint by *owning* the pool instead of hiding it:

* started lazily (a store-served request never spawns a worker),
  explicitly restartable, and shut down by the server's drain path —
  never by interpreter teardown;
* health-checked: :meth:`WarmPool.health_check` round-trips a ping
  through every worker and transparently rebuilds a broken pool
  (a worker killed by the OOM killer turns into one failed job, not a
  dead daemon);
* accounted: submission/completion counters feed the server's ``stats``
  RPC so "did the warm pool actually serve this?" is observable.

The pool is intentionally *not* a context manager used per call — its
whole point is to outlive calls.  The owner is responsible for exactly
one :meth:`shutdown` at the end of its life.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Optional, Set

__all__ = ["WarmPool"]


def _worker_ping() -> int:
    """Health-check payload: prove the worker process is alive."""
    return os.getpid()


class WarmPool:
    """A long-lived ``ProcessPoolExecutor`` with explicit lifecycle.

        pool = WarmPool(workers=4)
        future = pool.submit(fn, *args)     # starts the pool on demand
        pool.drain()                        # wait out in-flight work
        pool.shutdown()                     # the one owned teardown
    """

    def __init__(self, workers: Optional[int] = None, metrics=None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or os.cpu_count() or 1
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._inflight: Set[Future] = set()
        self._closed = False
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.restarts = 0
        #: Optional :class:`repro.obs.MetricsRegistry` mirror — every
        #: submit/settle also bumps registry counters so the daemon's
        #: ``metrics`` RPC sees pool traffic without polling stats().
        self.metrics = metrics

    # -- lifecycle -----------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._executor is not None

    def start(self) -> None:
        """Spin the executor up (idempotent)."""
        with self._lock:
            self._ensure_locked()

    def _ensure_locked(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("pool is shut down")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def health_check(self, timeout: float = 30.0) -> bool:
        """Round-trip a ping through the pool; rebuild it if broken.

        Returns True when the (possibly rebuilt) pool answered.
        """
        try:
            pid = self.submit(_worker_ping).result(timeout=timeout)
            return isinstance(pid, int)
        except BrokenProcessPool:
            self.restart()
            try:
                pid = self.submit(_worker_ping).result(timeout=timeout)
                return isinstance(pid, int)
            except Exception:  # pragma: no cover - doubly broken host
                return False
        except Exception:  # pragma: no cover - timeout etc.
            return False

    def restart(self) -> None:
        """Tear the executor down and lazily rebuild on next submit."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
                self.restarts += 1

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every in-flight future settles.

        Returns False if ``timeout`` elapsed with work still running.
        """
        with self._lock:
            pending = list(self._inflight)
        done = threading.Event()
        remaining = len(pending)
        if not remaining:
            return True
        lock = threading.Lock()

        def _one_done(_f):
            nonlocal remaining
            with lock:
                remaining -= 1
                if remaining == 0:
                    done.set()

        for future in pending:
            future.add_done_callback(_one_done)
        return done.wait(timeout)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Owned teardown: optionally drain, then stop the workers.

        Idempotent; after this every submit raises.
        """
        if drain:
            self.drain(timeout)
        with self._lock:
            self._closed = True
            if self._executor is not None:
                self._executor.shutdown(wait=drain, cancel_futures=not drain)
                self._executor = None

    # -- work ----------------------------------------------------------------

    def submit(self, fn: Callable, *args: Any, **kw: Any) -> Future:
        """Submit to the warm executor (starting it on first use),
        transparently rebuilding a broken pool once."""
        with self._lock:
            executor = self._ensure_locked()
            try:
                future = executor.submit(fn, *args, **kw)
            except BrokenProcessPool:
                executor.shutdown(wait=False, cancel_futures=True)
                self.restarts += 1
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
                future = self._executor.submit(fn, *args, **kw)
            self.tasks_submitted += 1
            self._inflight.add(future)
        if self.metrics is not None:
            self.metrics.counter("pool_tasks_submitted_total").inc()
        future.add_done_callback(self._settle)
        return future

    def _settle(self, future: Future) -> None:
        with self._lock:
            self._inflight.discard(future)
        if future.cancelled() or future.exception() is not None:
            self.tasks_failed += 1
            if self.metrics is not None:
                self.metrics.counter("pool_tasks_failed_total").inc()
        else:
            self.tasks_completed += 1
            if self.metrics is not None:
                self.metrics.counter("pool_tasks_completed_total").inc()

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, Any]:
        return {"workers": self.workers, "started": self.started,
                "inflight": self.inflight,
                "tasks_submitted": self.tasks_submitted,
                "tasks_completed": self.tasks_completed,
                "tasks_failed": self.tasks_failed,
                "restarts": self.restarts}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else \
            ("warm" if self.started else "cold")
        return f"WarmPool(workers={self.workers}, {state})"
