"""Counterexample-guided mitigation synthesis: the repair→re-verify loop.

The algorithm is the standard CEGIS shape, with Pitchfork as the
verifier:

1. **Verify** — run :func:`repro.pitchfork.analyze` (inheriting the
   caller's bound / hazard / strategy / sharding knobs,
   ``stop_at_first=False`` so every leak in range is visible).
2. **Filter** — drop violations whose observation the *sequential*
   execution already produces: those are architectural leaks
   (the program is not sequentially constant-time; Corollary B.10's
   hypothesis fails) and no speculation barrier can remove them.  They
   are reported as ``sequential`` residue, never silently "repaired".
3. **Localize** — attribute the remaining transient violations to
   program points (:mod:`repro.mitigate.localize`).
4. **Propose** — protect each new leak point: SLH masking for
   v1-style loads under a mispredicted branch (policy ``slh``/
   ``auto``), a spliced fence otherwise.  Every proposal must preserve
   the program's sequential semantics (checked by replaying the
   canonical sequential schedule — Definition B.3 — and comparing
   traces and final architectural state); a proposal that breaks them
   is rolled back and replaced by a fence.
5. Repeat until the verifier finds nothing transient, then **shrink**:
   greedily remove mitigations youngest-first (fences and redundant SLH
   masks alike), keeping a removal only when re-verification stays
   clean — delta-debugging down to a *locally minimal* placement
   (every remaining mitigation is load-bearing: removing any single
   one re-introduces a leak).  The shrink invariant is that security
   is re-established by the verifier after every removal, so no
   reasoning about mitigation interaction is needed.

The result carries a machine-checkable :attr:`RepairResult.certificate`
— the repaired program as re-assembleable source plus the claims made
about it — which :func:`verify_certificate` re-checks from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..asm import assemble, to_source
from ..core.config import Config
from ..core.errors import ReproError
from ..core.machine import Machine
from ..core.observations import secret_observations
from ..core.program import Program
from ..core.sequential import run_sequential
from ..ctcomp.passes import count_fences, insert_fences
from ..pitchfork import AnalysisReport, analyze
from .localize import ViolationSite, localize_all
from .passes import (AppliedMitigation, MitigationError, apply_fence,
                     apply_slh, remove_fence, remove_slh)

#: Statuses a repair can end in.
REPAIR_STATUSES = ("already-secure", "repaired", "sequential-residual",
                   "gave-up")


@dataclass(frozen=True)
class RepairStep:
    """One accepted proposal of the synthesis loop."""

    site: ViolationSite
    applied: AppliedMitigation
    round: int

    def to_dict(self) -> Dict[str, object]:
        d = self.applied.to_dict()
        d.update({"round": self.round, "cause": self.site.cause,
                  "observation": self.site.observation})
        return d


@dataclass
class RepairResult:
    """Outcome of one synthesis run."""

    name: str
    status: str                     #: one of :data:`REPAIR_STATUSES`
    program: Program                #: the repaired program
    original: Program
    steps: Tuple[RepairStep, ...] = ()
    final_report: Optional[AnalysisReport] = None
    rounds: int = 0
    verifications: int = 0          #: full Pitchfork re-runs performed
    fences_added: int = 0
    slh_sites: int = 0
    shrink_removed: int = 0
    #: Fences the blanket Fig 8 pass would have added — the baseline the
    #: minimal placement is measured against.
    blanket_fences: int = 0
    #: Sequential machine steps: original, repaired, and the difference
    #: (the mitigation's architectural overhead).
    sequential_steps: int = 0
    repaired_sequential_steps: int = 0
    #: Observations the sequential execution leaks on its own (empty for
    #: sequentially constant-time programs).
    sequential_leaks: Tuple[str, ...] = ()
    semantics_preserved: bool = True
    #: Why each equivalence check failed (one line per rejected SLH
    #: proposal or semantics-breaking accepted fence).  Empty iff
    #: every proposal replayed cleanly; ``semantics_preserved`` is
    #: False exactly when an *accepted* mitigation appears here.
    semantics_failures: Tuple[str, ...] = ()
    wall_time: float = 0.0
    #: Verifier machine-step accounting summed over every re-run.
    states_stepped: int = 0
    states_reused: int = 0

    @property
    def secure(self) -> bool:
        """No transient leak remains (sequential residue may)."""
        return self.status in ("already-secure", "repaired",
                               "sequential-residual")

    @property
    def overhead_steps(self) -> int:
        return self.repaired_sequential_steps - self.sequential_steps

    @property
    def certificate(self) -> Dict[str, object]:
        """A machine-checkable summary: the repaired program as source
        text plus every claim — re-check it with
        :func:`verify_certificate`."""
        return {
            "name": self.name,
            "status": self.status,
            "program": to_source(self.program),
            "base": min(self.program.points(), default=1),
            "entry": self.program.entry,
            "steps": [s.to_dict() for s in self.steps],
            "fences_added": self.fences_added,
            "slh_sites": self.slh_sites,
            "shrink_removed": self.shrink_removed,
            "blanket_fences": self.blanket_fences,
            "overhead_steps": self.overhead_steps,
            "sequential_leaks": list(self.sequential_leaks),
            "semantics_preserved": self.semantics_preserved,
            "semantics_failures": list(self.semantics_failures),
            "verifications": self.verifications,
        }


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the repair loop (the verifier's knobs ride along in
    ``analyze_kwargs``)."""

    policy: str = "auto"            #: "fence" | "slh" | "auto"
    max_rounds: int = 16
    shrink: bool = True
    #: Retire budget for the sequential baseline/overhead runs.
    max_retires: int = 20_000

    def __post_init__(self):
        if self.policy not in ("fence", "slh", "auto"):
            raise ValueError(f"policy must be fence|slh|auto, "
                             f"got {self.policy!r}")
        if self.max_rounds <= 0:
            raise ValueError("max_rounds must be positive")


def _sequential_profile(program: Program, config: Config, rsb_policy: str,
                        max_retires: int) -> Tuple[Set[str], int, object]:
    """Secret observations + step count + result of the canonical
    sequential schedule."""
    machine = Machine(program, rsb_policy=rsb_policy)
    result = run_sequential(machine, config, max_retires=max_retires)
    leaks = {repr(o) for o in secret_observations(result.trace)}
    return leaks, len(result.schedule), result


def _preserves_semantics(base_result, candidate: Program, config: Config,
                         rsb_policy: str,
                         max_retires: int) -> Optional[str]:
    """Sequential equivalence: same observation trace, same final
    architectural state (original registers and all of memory).

    Returns None when the candidate is equivalent, else a short reason
    string.  Only the machine's own failures (:class:`ReproError` —
    a stuck candidate, an ill-formed splice) count as "not
    equivalent"; anything else is a synthesizer bug and propagates.
    """
    machine = Machine(candidate, rsb_policy=rsb_policy)
    try:
        cand = run_sequential(machine, config.with_(pc=candidate.entry),
                              max_retires=max_retires)
    except ReproError as exc:
        return f"candidate does not run sequentially: {exc}"
    if cand.trace != base_result.trace:
        return "observation trace diverges"
    a, b = base_result.final, cand.final
    for reg, value in a.regs.items():
        if b.regs.get(reg) != value:
            return f"final value of register {reg.name} diverges"
    addrs = set(a.mem.addresses()) | set(b.mem.addresses())
    for addr in addrs:
        if a.mem.read(addr) != b.mem.read(addr):
            return f"final memory at {addr:#x} diverges"
    return None


class MitigationSynthesizer:
    """Drives the repair→re-verify loop for one target."""

    def __init__(self, program: Program, config: Config, *,
                 name: str = "<program>",
                 options: Optional[SynthesisOptions] = None,
                 rsb_policy: str = "directive",
                 **analyze_kwargs):
        self.original = program
        self.config = config
        self.name = name
        self.options = options or SynthesisOptions()
        self.rsb_policy = rsb_policy
        analyze_kwargs.pop("stop_at_first", None)
        self.analyze_kwargs = analyze_kwargs
        self._verifications = 0
        self._stepped = 0
        self._reused = 0
        self._shrunk = 0
        self._slh_done: Set[int] = set()
        self._semantics_failures: List[str] = []

    # -- the verifier --------------------------------------------------------

    def _verify(self, program: Program) -> AnalysisReport:
        report = analyze(program, self.config.with_(pc=program.entry),
                         name=self.name, stop_at_first=False,
                         rsb_policy=self.rsb_policy, **self.analyze_kwargs)
        self._verifications += 1
        self._stepped += report.states_stepped
        self._reused += report.states_reused
        return report

    def _transient(self, report: AnalysisReport, seq_leaks: Set[str]):
        """Violations not already exhibited by sequential execution."""
        return [v for v in report.violations
                if repr(v.observation) not in seq_leaks]

    # -- proposals -----------------------------------------------------------

    def _propose(self, program: Program, site: ViolationSite,
                 base_seq
                 ) -> Optional[Tuple[Program, AppliedMitigation, bool]]:
        """One mitigation for one site; returns (program, applied,
        semantics_ok), or None when nothing applies (a localization
        fallback blamed a point holding no repairable instruction —
        the loop treats the site as unprogressable).  SLH is tried
        first when the policy and the site shape allow it, with a fence
        as the fallback.

        Masking targets the *taint source* load when the site records
        one: the flagged (transmitting) load's address label is a join
        over its operands, which a mask can never lower — only zeroing
        the access load's index actually strips the secret from the
        transient data flow.
        """
        opts = self.options
        want_slh = (opts.policy in ("slh", "auto")
                    and site.branch_pp is not None
                    and site.cause in ("v1", "v1.1"))
        if want_slh:
            for load_pp in (site.taint_pp, site.leak_pp):
                if load_pp is None or load_pp in self._slh_done:
                    continue
                try:
                    candidate, applied = apply_slh(program, site, load_pp)
                except MitigationError:
                    continue
                why = _preserves_semantics(base_seq, candidate, self.config,
                                           self.rsb_policy, opts.max_retires)
                if why is None:
                    self._slh_done.add(load_pp)
                    return candidate, applied, True
                self._semantics_failures.append(
                    f"slh at point {load_pp} (site {site.leak_pp}, "
                    f"rejected): {why}")
        try:
            candidate, applied = apply_fence(program, site.leak_pp)
        except MitigationError:
            return None
        why = _preserves_semantics(base_seq, candidate, self.config,
                                   self.rsb_policy, opts.max_retires)
        if why is not None:
            self._semantics_failures.append(
                f"fence at point {site.leak_pp} (accepted): {why}")
        return candidate, applied, why is None

    # -- the loop ------------------------------------------------------------

    def run(self) -> RepairResult:
        t0 = time.perf_counter()
        opts = self.options
        seq_leaks, seq_steps, base_seq = _sequential_profile(
            self.original, self.config, self.rsb_policy, opts.max_retires)

        current = self.original
        steps: List[RepairStep] = []
        guarded: Set[int] = set()     # leak points already fenced
        semantics_ok = True
        status = "gave-up"
        report = None
        rounds = 0

        for rounds in range(1, opts.max_rounds + 1):
            report = self._verify(current)
            residual = self._transient(report, seq_leaks)
            if not residual:
                if not steps:
                    status = ("already-secure" if report.secure
                              else "sequential-residual")
                else:
                    status = ("repaired" if report.secure
                              else "sequential-residual")
                break
            machine = Machine(current, rsb_policy=self.rsb_policy)
            sites = localize_all(machine,
                                 self.config.with_(pc=current.entry),
                                 residual)
            progressed = False
            for site in sites:
                if site.leak_pp in guarded:
                    # A fence is already in front of this point and the
                    # leak persists: nothing stronger to offer.
                    continue
                proposal = self._propose(current, site, base_seq)
                if proposal is None:
                    continue
                candidate, applied, ok = proposal
                current = candidate
                semantics_ok = semantics_ok and ok
                if applied.policy == "fence":
                    guarded.add(site.leak_pp)
                steps.append(RepairStep(site, applied, rounds))
                progressed = True
            if not progressed:
                status = "gave-up"
                break
        else:
            report = self._verify(current)
            if not self._transient(report, seq_leaks):
                status = "repaired" if report.secure else "sequential-residual"

        if opts.shrink and steps and \
                status in ("repaired", "sequential-residual"):
            current, steps, shrunk_report = self._shrink(current, steps,
                                                         seq_leaks)
            if shrunk_report is not None:
                report = shrunk_report

        repaired_steps = seq_steps
        if steps:
            machine = Machine(current, rsb_policy=self.rsb_policy)
            result = run_sequential(machine,
                                    self.config.with_(pc=current.entry),
                                    max_retires=opts.max_retires)
            repaired_steps = len(result.schedule)

        live = tuple(steps)
        return RepairResult(
            name=self.name, status=status, program=current,
            original=self.original, steps=live, final_report=report,
            rounds=rounds, verifications=self._verifications,
            fences_added=count_fences(current) - count_fences(self.original),
            slh_sites=sum(1 for s in live if s.applied.policy == "slh"),
            shrink_removed=self._shrunk,
            blanket_fences=(count_fences(insert_fences(self.original))
                            - count_fences(self.original)),
            sequential_steps=seq_steps,
            repaired_sequential_steps=repaired_steps,
            sequential_leaks=tuple(sorted(seq_leaks)),
            semantics_preserved=semantics_ok,
            semantics_failures=tuple(self._semantics_failures),
            wall_time=time.perf_counter() - t0,
            states_stepped=self._stepped, states_reused=self._reused)

    def _shrink(self, program: Program, steps: List[RepairStep],
                seq_leaks: Set[str]
                ) -> Tuple[Program, List[RepairStep],
                           Optional[AnalysisReport]]:
        """Delta-debugging pass: drop mitigations that turn out to be
        redundant (security re-established by the verifier after every
        removal — the shrink invariant)."""
        live = list(steps)
        last_clean = None
        for step in reversed(steps):
            if step.applied.policy == "fence":
                candidate = remove_fence(program, step.applied)
            else:
                candidate = remove_slh(program, step.applied)
            if candidate is None:
                continue
            report = self._verify(candidate)
            if report.truncated:
                continue    # partial coverage must not license a removal
            if not self._transient(report, seq_leaks):
                program = candidate
                live.remove(step)
                self._shrunk += 1
                last_clean = report
        return program, live, last_clean


def repair(program: Program, config: Config, *,
           name: str = "<program>",
           policy: str = "auto",
           max_rounds: int = 16,
           shrink: bool = True,
           rsb_policy: str = "directive",
           **analyze_kwargs) -> RepairResult:
    """Synthesize a minimal mitigation for ``program``.

    ``analyze_kwargs`` are forwarded to :func:`repro.pitchfork.analyze`
    for every verification run (``bound``, ``fwd_hazards``,
    ``explore_aliasing``, ``jmpi_targets``, ``rsb_targets``,
    ``max_paths``, ``max_steps``, ``strategy``, ``shards``, ``seed``,
    ``prune``, ``subsume``).
    """
    synthesizer = MitigationSynthesizer(
        program, config, name=name,
        options=SynthesisOptions(policy=policy, max_rounds=max_rounds,
                                 shrink=shrink),
        rsb_policy=rsb_policy, **analyze_kwargs)
    return synthesizer.run()


def verify_certificate(certificate: Dict[str, object], config: Config, *,
                       rsb_policy: str = "directive",
                       max_retires: int = 20_000,
                       original: Optional[Program] = None,
                       **analyze_kwargs) -> bool:
    """Re-check a repair certificate from scratch.

    Re-assembles the embedded source, re-runs the verifier, and — when
    the original program is supplied — re-checks sequential
    equivalence.  Returns True iff every claim holds.
    """
    program = assemble(str(certificate["program"]),
                       base=int(certificate.get("base", 1)))
    if program.entry != certificate.get("entry", program.entry):
        return False
    report = analyze(program, config.with_(pc=program.entry),
                     stop_at_first=False, rsb_policy=rsb_policy,
                     **analyze_kwargs)
    allowed = set(certificate.get("sequential_leaks", ()))
    residual = [v for v in report.violations
                if repr(v.observation) not in allowed]
    if residual or report.truncated:
        return False
    if original is not None and certificate.get("semantics_preserved"):
        machine = Machine(original, rsb_policy=rsb_policy)
        base = run_sequential(machine, config.with_(pc=original.entry),
                              max_retires=max_retires)
        if _preserves_semantics(base, program, config, rsb_policy,
                                max_retires) is not None:
            return False
    return True
