"""Counterexample localization: from violations to program points.

The Pitchfork explorer hands back :class:`~repro.pitchfork.Violation`
values — a flagged observation plus the witnessing directive schedule.
Directives talk about *reorder-buffer indices*, not program points, so
before anything can be repaired the witness has to be replayed: the
machine relation is deterministic in ``(configuration, directive)``
(Theorem B.1), so stepping the schedule from the same initial
configuration reproduces the leaking execution exactly, and watching
the fetch stage recovers the map from buffer indices to the program
points they were fetched from.

The result is a structured :class:`ViolationSite` naming

* the **leak point** — the instruction whose execution produced the
  secret-labelled observation (the transient load, the store address
  resolution, the branch on tainted data);
* the **speculation sources** still in flight when it leaked — the
  mispredicted branch that opened the window (Spectre v1/v1.1), the
  mistrained indirect jump or return (v2 / ret2spec), the
  not-yet-resolved older stores a load may have bypassed (v4);
* a **cause** classification, including ``"sequential"`` when no
  speculation source was in flight — an architectural leak no fence
  placement can remove (the program was not sequentially constant-time
  to begin with; Corollary B.10's hypothesis fails).

:mod:`repro.mitigate.synth` consumes sites to decide *where* to place
a fence or an SLH mask, and the re-verification loop — not the
attribution — carries the soundness argument, so localization is free
to be heuristic about blame and exact only about the leak point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.config import Config
from ..core.directives import Execute, Fetch, Retire, Schedule
from ..core.errors import ReproError
from ..core.isa import (Br, Call, Fence, Instruction, Jmpi, Load, Op, Ret,
                        Store)
from ..core.machine import Machine
from ..core.rob import resolve_operands
from ..core.transient import TBr, TJmpi, TStore, TValue
from ..pitchfork.explorer import Violation


@dataclass(frozen=True)
class ViolationSite:
    """One violation attributed to responsible program points."""

    #: Program point of the instruction whose execution leaked.
    leak_pp: int
    #: Kind of the physical instruction at ``leak_pp``
    #: ("load"/"store"/"branch"/"jump"/"return"/"op"/"call"/"fence").
    kind: str
    #: "v1", "v1.1", "v4", "v2", "ret2spec", "aliasing", "sequential",
    #: or "unknown".
    cause: str
    observation: str           #: repr of the flagged observation
    step_index: int            #: position in the witnessing schedule
    #: Youngest in-flight mispredicted conditional branch older than the
    #: leaking instruction — the window the SLH mask re-checks.
    branch_pp: Optional[int] = None
    #: Was the speculated (leaking) arm the branch's true target?
    branch_taken: Optional[bool] = None
    #: Older stores with unresolved addresses at leak time (v4 bypass
    #: candidates).
    store_pps: Tuple[int, ...] = ()
    #: In-flight mispredicted indirect jump / return, if any.
    jmpi_pp: Optional[int] = None
    #: The access load that *introduced* the secret into the transient
    #: data flow (the youngest older in-flight load resolved to a
    #: secret-labelled value) — in a classic v1 gadget the transmitting
    #: load is flagged but masking must hit this one, or the tainted
    #: label survives the mask's label join.
    taint_pp: Optional[int] = None

    def describe(self) -> str:
        parts = [f"{self.cause} leak at {self.leak_pp} ({self.kind})"]
        if self.branch_pp is not None:
            parts.append(f"window opened by branch at {self.branch_pp}")
        if self.jmpi_pp is not None:
            parts.append(f"mistrained jump at {self.jmpi_pp}")
        if self.store_pps:
            parts.append(f"bypassed store(s) at {list(self.store_pps)}")
        return "; ".join(parts)


def _instruction_kind(instr: Optional[Instruction]) -> str:
    if isinstance(instr, Load):
        return "load"
    if isinstance(instr, Store):
        return "store"
    if isinstance(instr, Br):
        return "branch"
    if isinstance(instr, Jmpi):
        return "jump"
    if isinstance(instr, Ret):
        return "return"
    if isinstance(instr, Call):
        return "call"
    if isinstance(instr, Op):
        return "op"
    if isinstance(instr, Fence):
        return "fence"
    return "halt"


def replay_attribution(machine: Machine, config: Config,
                       schedule: Schedule
                       ) -> Tuple[List[Config], Dict[int, int]]:
    """Replay a witnessing schedule, recovering index → program point.

    Returns the configuration after every step (``configs[0]`` is the
    initial one) and the map from reorder-buffer indices to the program
    points their instructions were fetched from (call/ret groups map
    every member to the group's point).  Determinism (Theorem B.1)
    makes the replay exact.
    """
    index_pp: Dict[int, int] = {}
    current = config
    configs = [current]
    for directive in schedule:
        if isinstance(directive, Fetch):
            pc = current.pc
            before = current.buf.max_index()
            current, _leak = machine.step(current, directive)
            for i in range(before + 1, current.buf.max_index() + 1):
                index_pp[i] = pc
        else:
            current, _leak = machine.step(current, directive)
        configs.append(current)
    return configs, index_pp


def _branch_mispredicted(machine: Machine, config: Config, j: int,
                         entry: TBr) -> Optional[bool]:
    """Did the in-flight branch guess wrong?  None when its operands are
    still unresolved (treated as "possibly mispredicted" by callers —
    under DT(n) an eagerly-resolvable correct branch would already have
    executed, so a lingering branch is almost always the window)."""
    try:
        vals = resolve_operands(config.buf, j, config.regs, entry.args)
    except KeyError:
        return None
    if vals is None:
        return None
    try:
        cond = machine.evaluator.evaluate(entry.opcode, vals)
        taken = machine.evaluator.truth(cond)
    except ReproError:
        return None
    actual = entry.targets[0] if taken else entry.targets[1]
    return actual != entry.guess


def _jmpi_mispredicted(machine: Machine, config: Config, j: int,
                       entry: TJmpi) -> Optional[bool]:
    try:
        vals = resolve_operands(config.buf, j, config.regs, entry.args)
    except KeyError:
        return None
    if vals is None:
        return None
    try:
        addr = machine.evaluator.address(vals)
        return machine.evaluator.concretize(addr) != entry.guess
    except ReproError:
        return None


def localize(machine: Machine, config: Config,
             violation: Violation) -> ViolationSite:
    """Attribute one violation to its responsible program points.

    Replays the witnessing schedule (whose final directive is the
    flagging one) and inspects the configuration just before that step.
    """
    schedule = violation.schedule
    configs, index_pp = replay_attribution(machine, config, schedule)
    pre = configs[-2] if len(configs) >= 2 else configs[-1]
    directive = violation.directive

    if isinstance(directive, Execute):
        flagged = directive.index
        leak_pp = index_pp.get(flagged, pre.pc)
    elif isinstance(directive, Retire) and pre.buf:
        flagged = pre.buf.min_index()
        leak_pp = index_pp.get(flagged, pre.pc)
    else:
        flagged = pre.buf.max_index() + 1
        leak_pp = pre.pc

    branch_pp: Optional[int] = None
    branch_taken: Optional[bool] = None
    jmpi_pp: Optional[int] = None
    taint_pp: Optional[int] = None
    store_pps: List[int] = []
    for j, entry in pre.buf.items():
        if j >= flagged:
            break
        if isinstance(entry, TValue) and entry.is_load_result() and \
                not entry.value.is_public():
            # Resolved loads carry the program point of the physical
            # load (the hazard rules roll back to it).
            taint_pp = entry.pp if entry.pp is not None else index_pp.get(j)
        if isinstance(entry, TBr):
            wrong = _branch_mispredicted(machine, pre, j, entry)
            if wrong is None or wrong:
                branch_pp = index_pp.get(j, branch_pp)
                branch_taken = entry.guess == entry.targets[0]
        elif isinstance(entry, TJmpi):
            wrong = _jmpi_mispredicted(machine, pre, j, entry)
            if wrong is None or wrong:
                jmpi_pp = index_pp.get(j, jmpi_pp)
        elif isinstance(entry, TStore) and not entry.addr_resolved():
            pp = index_pp.get(j)
            if pp is not None:
                store_pps.append(pp)

    kind = _instruction_kind(machine.program.get(leak_pp))
    if isinstance(directive, Execute) and isinstance(directive.part, int):
        cause = "aliasing"
    elif branch_pp is not None:
        cause = "v1.1" if kind == "store" else "v1"
    elif jmpi_pp is not None:
        jmpi_instr = machine.program.get(jmpi_pp)
        cause = "ret2spec" if isinstance(jmpi_instr, Ret) else "v2"
    elif store_pps:
        cause = "v4"
    else:
        cause = "sequential"

    return ViolationSite(
        leak_pp=leak_pp, kind=kind, cause=cause,
        observation=repr(violation.observation),
        step_index=violation.step_index,
        branch_pp=branch_pp, branch_taken=branch_taken,
        store_pps=tuple(store_pps), jmpi_pp=jmpi_pp, taint_pp=taint_pp)


def localize_all(machine: Machine, config: Config,
                 violations: Iterable[Violation]) -> List[ViolationSite]:
    """Localize a batch of violations, deduplicated by leak point.

    The first witness per program point wins (sites are repaired per
    point, so extra witnesses of the same point add no information).
    """
    seen: Dict[int, ViolationSite] = {}
    for violation in violations:
        site = localize(machine, config, violation)
        if site.leak_pp not in seen:
            seen[site.leak_pp] = site
    return list(seen.values())
