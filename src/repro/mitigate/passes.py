"""Per-site mitigation passes.

Where :mod:`repro.ctcomp.passes` transforms *every* branch or load, the
passes here protect one :class:`~repro.mitigate.localize.ViolationSite`
at a time:

* :func:`apply_fence` — splice a speculation barrier in front of the
  leak point.  The original instruction moves to a fresh point and the
  fence takes its place, so every inbound edge — including dynamically
  computed ones (mistrained ``jmpi`` fetch targets, RSB predictions,
  return addresses read from memory) — passes through the barrier.
  Soundness is the fence side condition itself (``∀j<i : buf(j) ≠
  fence``): the protected instruction cannot execute while the fence is
  unretired, and the fence retires only once it is the oldest buffer
  entry — i.e. after every speculation source that preceded it has
  resolved, rolled back, or retired.
* :func:`apply_slh` — speculative-load-hardening for Spectre v1 loads:
  re-materialize the guarding branch's condition as data, turn it into
  an all-ones/all-zeroes mask (the classic ``ct`` idiom the ISA's
  ``mask`` opcode provides), and mask every register operand of the
  protected load.  On the architectural path the mask is all-ones and
  the load is unchanged; under misspeculation the condition evaluates
  false *as data* (ops execute transiently with actual register
  values), the operands collapse to zero, and the load hits the public
  base address.  Costs arithmetic instead of a speculation barrier.
* :func:`remove_fence` — the exact inverse splice, used by the shrink
  phase to test whether a fence is load-bearing.

Every pass emits a valid :class:`~repro.core.program.Program` that
round-trips through :func:`repro.asm.to_source` /
:func:`repro.asm.assemble`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import ReproError
from ..core.isa import Br, Fence, Instruction, Load, Op
from ..core.program import Program
from ..core.values import Reg, Value
from ..ctcomp.passes import _first_unreferenced_point, splice_before
from .localize import ViolationSite

#: Prefix of the scratch registers SLH sequences introduce.
SLH_PREFIX = "rslh"


class MitigationError(ReproError):
    """A pass does not apply to this site (callers fall back to a
    fence)."""


@dataclass(frozen=True)
class AppliedMitigation:
    """One applied per-site transformation (the repair-certificate
    entry)."""

    site_pp: int               #: protected program point
    policy: str                #: "fence" or "slh"
    relocated_pp: int          #: where the original instruction now lives
    new_points: Tuple[int, ...]  #: every point the pass allocated
    #: fence point (== site_pp for fence splices, None for SLH)
    fence_pp: Optional[int] = None
    masked_regs: Tuple[str, ...] = ()   #: SLH: load operands masked
    #: SLH: (original register, mask register) pairs, for exact undo.
    mask_pairs: Tuple[Tuple[str, str], ...] = ()
    guard_branch_pp: Optional[int] = None  #: SLH: branch re-checked

    def to_dict(self) -> Dict[str, object]:
        return {
            "site_pp": self.site_pp,
            "policy": self.policy,
            "relocated_pp": self.relocated_pp,
            "new_points": list(self.new_points),
            "fence_pp": self.fence_pp,
            "masked_regs": list(self.masked_regs),
            "guard_branch_pp": self.guard_branch_pp,
        }


def apply_fence(program: Program, pp: int
                ) -> Tuple[Program, AppliedMitigation]:
    """Splice ``fence`` in front of program point ``pp``."""
    if program.get(pp) is None:
        raise MitigationError(f"no instruction at program point {pp}")
    if isinstance(program.get(pp), Fence):
        raise MitigationError(f"point {pp} is already a fence")
    instrs: Dict[int, Instruction] = dict(program.items())
    relocated = _first_unreferenced_point(instrs)
    splice_before(instrs, pp, Fence(relocated), relocated)
    repaired = Program(instrs, entry=program.entry, labels=program.labels())
    return repaired, AppliedMitigation(
        site_pp=pp, policy="fence", relocated_pp=relocated,
        new_points=(relocated,), fence_pp=pp)


def remove_fence(program: Program,
                 applied: AppliedMitigation) -> Optional[Program]:
    """Invert :func:`apply_fence`: the relocated instruction moves back.

    Returns None when the splice is no longer cleanly removable — a
    later pass re-guarded one of its points (the shrink phase simply
    keeps such fences).
    """
    if applied.policy != "fence" or applied.fence_pp is None:
        return None
    instrs: Dict[int, Instruction] = dict(program.items())
    guard = instrs.get(applied.fence_pp)
    if not isinstance(guard, Fence) or guard.next != applied.relocated_pp:
        return None
    if applied.relocated_pp not in instrs:
        return None
    instrs[applied.fence_pp] = instrs.pop(applied.relocated_pp)
    return Program(instrs, entry=program.entry, labels=program.labels())


def _used_register_names(program: Program) -> Set[str]:
    names: Set[str] = set()
    for _n, instr in program.items():
        for attr in ("dest", "src"):
            v = getattr(instr, attr, None)
            if isinstance(v, Reg):
                names.add(v.name)
        for a in getattr(instr, "args", ()):
            if isinstance(a, Reg):
                names.add(a.name)
    return names


def _fresh_slh_regs(program: Program, count: int) -> List[Reg]:
    used = _used_register_names(program)
    out: List[Reg] = []
    serial = 0
    while len(out) < count:
        name = f"{SLH_PREFIX}{serial}"
        serial += 1
        if name not in used:
            used.add(name)
            out.append(Reg(name))
    return out


def apply_slh(program: Program, site: ViolationSite,
              load_pp: Optional[int] = None
              ) -> Tuple[Program, AppliedMitigation]:
    """Mask the load at ``load_pp`` (default: the site's leak point)
    with the re-checked condition of the mispredicted branch at
    ``site.branch_pp``.

    When the flagged load's address is already tainted, the useful
    target is the site's *taint source* — the access load whose result
    carries the secret — because masking downstream operands cannot
    lower their label (the mask joins in, it never subtracts); the
    synthesis loop passes ``site.taint_pp`` here in that case.

    Emits, spliced in front of the load (``c`` is the branch predicate,
    negated when the speculated arm was the false target)::

        rslh0 = op <cond>, <branch args>     ; recompute the guard
        rslh1 = op mask, rslh0               ; all-ones iff on-path
        rslh2 = op and, <reg operand>, rslh1 ; per register operand
        <dest> = load [<masked operands>]

    The transformation is *proposed*, not trusted: the synthesis loop
    re-verifies security with Pitchfork and re-checks sequential
    equivalence against the original program, falling back to a fence
    when either fails (e.g. a branch operand rewritten between the
    guard and the load).
    """
    load_pp = site.leak_pp if load_pp is None else load_pp
    load = program.get(load_pp)
    if not isinstance(load, Load):
        raise MitigationError(f"SLH protects loads; {load_pp} holds "
                              f"{load!r}")
    if site.branch_pp is None:
        raise MitigationError("no guarding branch to re-check")
    branch = program.get(site.branch_pp)
    if not isinstance(branch, Br):
        raise MitigationError(f"{site.branch_pp} holds {branch!r}, not a "
                              f"conditional branch")
    reg_args = []
    for a in load.args:
        if isinstance(a, Reg) and a not in reg_args:
            reg_args.append(a)
    if not reg_args:
        raise MitigationError("load has no register operands to mask")

    cond_polarity_true = bool(site.branch_taken)
    # The negation op reuses cond_reg, so only the condition, the mask
    # and one register per masked operand need fresh names.
    fresh = _fresh_slh_regs(program, 2 + len(reg_args))
    cond_reg, mask_reg, masked = fresh[0], fresh[1], fresh[2:]

    # The op sequence, in order; successors are wired up during layout.
    ops: List[Tuple[Reg, str, Tuple[object, ...]]] = [
        (cond_reg, branch.opcode, branch.args)]
    if not cond_polarity_true:
        ops.append((cond_reg, "eq", (cond_reg, Value(0))))
    ops.append((mask_reg, "mask", (cond_reg,)))
    mapping: Dict[Reg, Reg] = {}
    for r, m in zip(reg_args, masked):
        ops.append((m, "and", (r, mask_reg)))
        mapping[r] = m

    instrs: Dict[int, Instruction] = dict(program.items())
    next_free = _first_unreferenced_point(instrs)
    points = [load_pp] + list(range(next_free, next_free + len(ops) - 1))
    relocated = next_free + len(ops) - 1
    for k, (dest, opcode, args) in enumerate(ops):
        succ = points[k + 1] if k + 1 < len(ops) else relocated
        instrs[points[k]] = Op(dest, opcode, tuple(args), succ)
    new_args = tuple(mapping.get(a, a) if isinstance(a, Reg) else a
                     for a in load.args)
    instrs[relocated] = Load(load.dest, new_args, load.next)

    repaired = Program(instrs, entry=program.entry, labels=program.labels())
    return repaired, AppliedMitigation(
        site_pp=load_pp, policy="slh", relocated_pp=relocated,
        new_points=tuple(points[1:] + [relocated]),
        masked_regs=tuple(r.name for r in reg_args),
        mask_pairs=tuple((r.name, m.name) for r, m in mapping.items()),
        guard_branch_pp=site.branch_pp)


def remove_slh(program: Program,
               applied: AppliedMitigation) -> Optional[Program]:
    """Invert :func:`apply_slh`: restore the unmasked load at the site
    and drop the mask sequence.

    Returns None when the splice is no longer cleanly removable (a
    later pass re-guarded one of its points).
    """
    if applied.policy != "slh":
        return None
    instrs: Dict[int, Instruction] = dict(program.items())
    load = instrs.get(applied.relocated_pp)
    head = instrs.get(applied.site_pp)
    if not isinstance(load, Load) or not isinstance(head, Op):
        return None
    if not all(p in instrs for p in applied.new_points):
        return None
    unmask = {m: Reg(r) for r, m in applied.mask_pairs}
    restored = tuple(unmask.get(a.name, a) if isinstance(a, Reg) else a
                     for a in load.args)
    instrs[applied.site_pp] = Load(load.dest, restored, load.next)
    for p in applied.new_points:
        del instrs[p]
    return Program(instrs, entry=program.entry, labels=program.labels())
