"""``repro.mitigate`` — counterexample-guided mitigation synthesis.

Closes the detect→harden→re-verify loop: Pitchfork's violation
witnesses are localized to the responsible program points
(:mod:`~repro.mitigate.localize`), repaired per site with targeted
fences or SLH-style masking (:mod:`~repro.mitigate.passes`), and the
propose→re-verify→shrink loop (:mod:`~repro.mitigate.synth`) drives
the placement down to a locally minimal one, emitting a
machine-checkable repair certificate.

See DESIGN.md ("Mitigation synthesis") for the soundness argument and
the shrink invariant.
"""

from .localize import ViolationSite, localize, localize_all, \
    replay_attribution
from .passes import (SLH_PREFIX, AppliedMitigation, MitigationError,
                     apply_fence, apply_slh, remove_fence, remove_slh)
from .synth import (REPAIR_STATUSES, MitigationSynthesizer, RepairResult,
                    RepairStep, SynthesisOptions, repair,
                    verify_certificate)

__all__ = [
    "AppliedMitigation", "MitigationError", "MitigationSynthesizer",
    "REPAIR_STATUSES", "RepairResult", "RepairStep", "SLH_PREFIX",
    "SynthesisOptions", "ViolationSite", "apply_fence", "apply_slh",
    "localize", "localize_all", "remove_fence", "remove_slh", "repair",
    "replay_attribution", "verify_certificate",
]
