"""Worst-case schedule exploration (Section 4.1 / Definition B.18).

Pitchfork does not enumerate *all* schedules — that set is astronomically
large.  It explores the *tool schedules* DT(n), which Theorem B.20 proves
sound: if any schedule within speculation bound n leaks, some tool
schedule leaks.

The construction, exactly as Definition B.18 prescribes:

* fetch eagerly until the reorder buffer holds ``bound`` entries;
* ``op`` / ``load``: execute immediately after fetch;
* ``store``: resolve the data immediately; **choice point** — resolve the
  address now, or *defer* it (the deferred-address arm generates every
  store-to-load forwarding outcome, including Spectre v4's
  stale-from-memory reads; deferral is disabled when
  ``fwd_hazards=False``, the paper's "without forwarding hazard
  detection" mode);
* ``br``: **choice point** — fetch the correct arm (resolved immediately)
  or the wrong arm (resolution delayed until the branch is the oldest
  entry of a full buffer: the maximal speculation window);
* when the buffer is full (or there is nothing left to fetch), the oldest
  entry is resolved and retired, triggering any delayed rollbacks.

Calls and returns are fetched along the RSB prediction; their embedded
return-address store and load take part in the store-address choice
points — that is exactly how the OpenSSL MEE-CBC gadget (Fig 10) is
found.  Aliasing-predictor exploration (``execute i: fwd j``, §3.5) is an
optional extension the original tool did not implement.

The explorer runs the *concrete* machine with labelled values: by
Corollary B.10, a secret-labelled observation under any explored schedule
witnesses an SCT violation for sequentially-CT programs (and
:mod:`repro.core.sct` offers the full two-trace Definition 3.1 check).

Execution engine
----------------

The DFS runs on :class:`repro.engine.ExecutionEngine`.  Each live arm is
a :class:`repro.engine.MachineState`: the (immutable) configuration plus
persistent cons-list logs for the schedule, trace and pending
violations, so a fork is O(1) and two sibling arms share their entire
common history — nothing is re-executed or copied when the scheduler
forks.  The engine also caches trial steps: Definition B.18's "is this
directive enabled here?" probes and the subsequent commit of the chosen
arm evaluate each machine rule once, not twice.  The DFS fork structure
itself is preserved for downstream consumers (prefix-shared symbolic
replay) by :func:`repro.pitchfork.schedules.enumerate_schedule_tree`.

Partial-order reduction
-----------------------

``options.prune`` selects how much of the schedule space's redundancy
is cut (see :mod:`repro.engine.por` and DESIGN.md):

* ``"none"`` — the letter of Definition B.18: every store-address
  deferral is an explicit fork and rolled-back paths continue to
  completion.  Maximal, redundant, the differential baseline;
* ``"sleepset"`` (default) — deferral forks only where the store's
  address may alias an in-flight load (the independence argument) plus
  branch-misprediction rollback joins.  Byte-identical to the seed
  explorer's enumeration;
* ``"full"`` — additionally caps every *covered* speculation window at
  its rollback (store-forwarding hazards, aliasing-prediction
  validations, mispredicted jmpi/ret redirects whose correct arm was
  forked) and collapses degenerate fork arms that step to identical
  configurations.

All levels flag the same violation observations (the Mazurkiewicz-class
argument; pinned by ``tests/test_por_equivalence.py``), and pruning
composes with sharding — shard prefixes record the pruning
pseudo-actions, so a worker resumes with the exact sleep state of the
split.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, FrozenSet, List, Mapping, Optional,
                    Set, Tuple, Union)

from ..core.config import Config
from ..core.directives import Directive, Execute, Fetch, Retire, Schedule
from ..core.errors import ReproError, StuckError
from ..core.isa import Br, Jmpi, Ret
from ..core.machine import Machine, RSP
from ..core.observations import (Observation, Rollback, Trace,
                                 is_secret_dependent)
from ..core.rob import resolve_operands
from ..core.transient import (TBr, TCallMarker, TFence, TJmpi, TJump, TLoad,
                              TOp, TRetMarker, TStore, TValue, assigns)
from ..core.values import BOTTOM, Value
from ..engine import (EngineStats, ExecutionEngine, MachineState,
                      PruningStats, SeenStates, SubsumptionStats,
                      make_frontier)
from ..engine.mcts import (DEFAULT_EXPLORATION, DEFAULT_PLAYOUT_DEPTH,
                           validate_mcts)
from ..engine.por import drop_dead_entries, hazard_load, validate_prune
from ..engine.subsume import validate_subsume
from ..obs import SearchTelemetry, ambient_tracer, validate_telemetry


def validate_budget(budget_seconds: Optional[float]) -> None:
    """Validate a wall-clock budget (shared by every options type)."""
    if budget_seconds is None:
        return
    if not isinstance(budget_seconds, (int, float)) or \
            isinstance(budget_seconds, bool) or \
            not math.isfinite(budget_seconds) or budget_seconds <= 0:
        raise ValueError(f"budget_seconds must be a finite positive "
                         f"number of seconds, got {budget_seconds!r}")


@dataclass(frozen=True)
class ExplorationOptions:
    """Tuning knobs mirroring the paper's evaluation procedure (§4.2.1)."""

    bound: int = 20            #: speculation bound = max reorder-buffer size
    fwd_hazards: bool = True   #: explore deferred store addresses (v4 mode)
    explore_aliasing: bool = False  #: §3.5 extension: execute i: fwd j
    #: Search-order strategy for the frontier (see
    #: :mod:`repro.engine.frontier`): "dfs" (the seed order), "bfs",
    #: "random", "coverage".  Theorem B.20 makes the explored *set*
    #: order-invariant; only enumeration order (and which paths survive
    #: a cap) changes.
    strategy: str = "dfs"
    #: RNG seed for stochastic strategies ("random"); recorded so runs
    #: reproduce path-for-path.
    seed: int = 0
    #: extension: mistrained indirect-branch targets to explore (Spectre
    #: v2); the original tool does not explore these (§4, "Pitchfork only
    #: exercises a subset of our semantics").
    jmpi_targets: Tuple[int, ...] = ()
    #: extension: attacker-supplied return targets on RSB underflow
    #: (ret2spec); likewise not explored by the original tool.
    rsb_targets: Tuple[int, ...] = ()
    #: Treat every branch condition as statically unknown: both arms are
    #: fetched and resolution is always delayed to the window's end.
    #: This makes the generated schedules input-independent — the mode
    #: the symbolic back end (repro.pitchfork.symex) needs, since the
    #: "correct" arm varies with the symbolic inputs.
    assume_unknown_branches: bool = False
    max_paths: int = 20_000    #: cap on explored paths
    max_fetches: int = 2_000   #: per-path fetched-instruction budget
    max_steps: int = 40_000    #: per-path step budget
    #: Partial-order reduction level: "none" (raw Definition B.18),
    #: "sleepset" (the default — the seed enumeration), or "full"
    #: (window capping on covered rollbacks + degenerate-arm collapse).
    #: See :mod:`repro.engine.por`.
    prune: str = "sleepset"
    #: Redundant-state subsumption (see :mod:`repro.engine.subsume`):
    #: prune fork arms whose configuration was already explored with
    #: the same or weaker residual obligations.  Orthogonal to
    #: ``prune`` — POR cuts equivalent *schedules*, this cuts
    #: re-converged *states* — and off by default so the default
    #: enumeration (and its path/schedule identities) is unchanged.
    subsume: bool = False
    #: Anytime mode: wall-clock budget in seconds.  When set, the
    #: explorer stops popping at the deadline, marks the result
    #: ``truncated`` (budget expiry is a coverage failure, never a clean
    #: verdict) and reports honest coverage in ``result.anytime``.
    #: None (the default) disables the deadline entirely.
    budget_seconds: Optional[float] = None
    #: UCT exploration constant for ``strategy="mcts"`` (see
    #: :mod:`repro.engine.mcts`); ignored by other strategies.
    mcts_c: float = DEFAULT_EXPLORATION
    #: Static-playout lookahead depth for ``strategy="mcts"``; ignored
    #: by other strategies.
    mcts_playout: int = DEFAULT_PLAYOUT_DEPTH
    #: Search telemetry (see :mod:`repro.obs.telemetry`): accumulate
    #: the per-fetch-PC pop heatmap and per-fork-level schedule
    #: histogram and attach them to the result.  Pure counters over
    #: the run the explorer performs anyway — never changes which
    #: schedules are explored — and off by default so defaulted store
    #: keys are unchanged.
    telemetry: bool = False

    def __post_init__(self):
        validate_prune(self.prune)
        validate_subsume(self.subsume)
        validate_budget(self.budget_seconds)
        validate_mcts(self.mcts_c, self.mcts_playout)
        validate_telemetry(self.telemetry)


@dataclass(frozen=True)
class Violation:
    """A flagged secret-dependent observation."""

    observation: Observation
    step_index: int            #: position in the witnessing schedule
    directive: Directive
    buffer_index: Optional[int]
    schedule: Schedule         #: the witnessing schedule prefix
    trace: Trace               #: observations up to and including this one

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Violation({self.observation!r} at step {self.step_index} "
                f"via {self.directive!r})")


@dataclass(frozen=True)
class PathResult:
    """One completely explored tool schedule."""

    schedule: Schedule
    trace: Trace
    final: Config
    violations: Tuple[Violation, ...]
    complete: bool             #: False if a per-path budget was hit


@dataclass(frozen=True)
class ShardStats:
    """One shard of a sharded exploration (see
    :class:`~repro.pitchfork.sharding.ShardedExplorer`)."""

    index: int                 #: position in deterministic merge order
    prefix_len: int            #: schedule-prefix actions replayed
    paths_explored: int
    violations: int
    states_stepped: int        #: schedule steps applied (incl. replay)
    truncated: bool
    wall_time: float


@dataclass(frozen=True)
class AnytimeStats:
    """Honest coverage accounting for a wall-clock-budgeted run.

    The anytime contract: a budgeted run may stop early, but it must
    say so — how much of the budget was consumed, whether the deadline
    actually fired, how many paths completed versus how many frontier
    items were still pending, and (when a violation was found) how long
    the first one took.  A deadline-truncated run is *never* reported
    clean; ``--check`` maps it to the coverage-failure exit (2).
    """

    budget_seconds: float      #: the configured budget
    budget_consumed: float     #: wall seconds actually spent
    deadline_hit: bool         #: did the deadline stop the run?
    paths_explored: int        #: completed paths within the budget
    frontier_remaining: int    #: pending fork arms left unexplored
    first_violation_time: Optional[float] = None  #: seconds to first hit

    def to_dict(self) -> dict:
        return {
            "budget_seconds": self.budget_seconds,
            "budget_consumed": self.budget_consumed,
            "deadline_hit": self.deadline_hit,
            "paths_explored": self.paths_explored,
            "frontier_remaining": self.frontier_remaining,
            "first_violation_time": self.first_violation_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AnytimeStats":
        return cls(budget_seconds=data["budget_seconds"],
                   budget_consumed=data["budget_consumed"],
                   deadline_hit=data["deadline_hit"],
                   paths_explored=data["paths_explored"],
                   frontier_remaining=data["frontier_remaining"],
                   first_violation_time=data.get("first_violation_time"))


@dataclass
class ExplorationResult:
    """Everything the explorer found."""

    paths: List[PathResult] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    paths_explored: int = 0
    #: Naive step count: the sum over explored paths of their full
    #: root-to-end length — what fork-by-copy re-execution would cost.
    states_stepped: int = 0
    truncated: bool = False    #: max_paths was hit
    #: Paths cut short by a per-path budget (max_steps / max_fetches).
    exhausted_paths: int = 0
    #: Distinct schedule steps actually applied (DFS tree edges): the
    #: shared-prefix steps every forked sibling inherits for free.
    applied_steps: int = 0
    #: ``states_stepped - applied_steps``: steps completed paths reused
    #: from shared prefixes instead of re-executing.
    states_reused: int = 0
    #: The execution engine's counters for this exploration.
    engine: Optional[EngineStats] = None
    #: Per-shard accounting when the exploration was sharded (empty for
    #: single-process runs).
    shards: Tuple[ShardStats, ...] = ()
    #: Partial-order-reduction accounting (see :mod:`repro.engine.por`):
    #: the pruning level, completed representatives, and pruned subtree
    #: roots.
    pruning: Optional[PruningStats] = None
    #: Redundant-state-subsumption accounting (see
    #: :mod:`repro.engine.subsume`): states recorded and fork arms
    #: pruned as already-covered.
    subsumption: Optional[SubsumptionStats] = None
    #: Anytime coverage accounting; present iff ``budget_seconds`` was
    #: set on the options (honest even when the run beat the deadline).
    anytime: Optional[AnytimeStats] = None
    #: Search-telemetry section (see :mod:`repro.obs.telemetry`);
    #: present iff ``options.telemetry`` was set.  Already serialised
    #: (string keys) — it crosses the shard boundary and lands in the
    #: report verbatim.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def secure(self) -> bool:
        return not self.violations


@dataclass(frozen=True)
class _DelayJmpi:
    """Pseudo-action: postpone a mispredicted indirect jump.

    A ``jmpi`` whose computed target disagrees with its guess supports
    two attack schedules: executing it *now* redirects fetch to the
    actual target immediately (the speculative stale return of Fig 10),
    while *delaying* it keeps executing the guessed path (the mistrained
    window of Fig 11).  The explorer forks on both.
    """

    index: int


@dataclass(frozen=True)
class _Defer:
    """Pseudo-action (``prune="none"``): take the "defer" arm of §4.1's
    store-address choice point — leave this store's address pending
    until the oldest-entry sweep forces it."""

    index: int


@dataclass(frozen=True)
class _Sleep:
    """Pseudo-action (``prune="full"``): record a covered outcome in
    the path's sleep set (see :mod:`repro.engine.por`).

    ``entry`` is ``("fwd", store, load)`` or ``("redirect", index)``; a
    ``("redirect", None)`` resolves to the buffer's max index when
    applied (the just-fetched control transfer).  Carried inside fork
    arms so shard prefixes replay the exact sleep state of the split.
    """

    entry: tuple


_Action = Union[Directive, _DelayJmpi, _Defer, _Sleep]


def _state_pc(state: "MachineState") -> int:
    """Fetch-PC ranking key for the coverage-guided frontier."""
    return state.config.pc


@dataclass(frozen=True)
class _PendingViolation:
    """A violation recorded mid-path; its schedule/trace tuples are
    materialized from the shared logs only when the path completes."""

    observation: Observation
    step_index: int
    directive: Directive
    buffer_index: Optional[int]
    schedule_log: object       #: Log up to and including the directive
    trace_log: object          #: Log up to and including the observation

    def materialize(self) -> Violation:
        return Violation(self.observation, self.step_index, self.directive,
                         self.buffer_index, self.schedule_log.materialize(),
                         self.trace_log.materialize())


class Explorer:
    """Frontier-driven exploration of the tool schedules DT(bound).

    Paths are :class:`repro.engine.MachineState` values; forking is
    O(1) and all schedule/trace/violation history is shared between
    sibling arms.  The visit order comes from
    ``options.strategy`` (see :mod:`repro.engine.frontier`); the
    default ``"dfs"`` reproduces the seed explorer's enumeration order
    byte for byte.  After :meth:`explore`, :attr:`engine` holds the
    engine (with step/fork/reuse counters) of the last run.
    """

    def __init__(self, machine: Machine, options: ExplorationOptions,
                 clock: Optional[Callable[[], float]] = None):
        self.machine = machine
        self.options = options
        self.engine: ExecutionEngine = ExecutionEngine(machine)
        #: Monotonic clock for budget deadlines and first-violation
        #: wall times; injectable so anytime behaviour is testable with
        #: a fake clock instead of time.sleep.
        self._clock = clock if clock is not None else time.monotonic
        #: The ambient span recorder (NULL_TRACER unless a
        #: tracing_context encloses this construction).  Checked once
        #: per frontier pop — never inside the step loop.
        self._tracer = ambient_tracer()
        #: Search-telemetry accumulator (None when the knob is off).
        self._telemetry: Optional[SearchTelemetry] = \
            SearchTelemetry() if options.telemetry else None
        self._applied = 0  #: schedule steps applied in the current run
        self._skipped = 0  #: pruned subtree roots (joins + collapsed arms)
        self._pops = 0     #: frontier pops in the current run
        #: run start / budget deadline on the injected clock.  Armed
        #: lazily by explore_from only when unset, so the sharded
        #: merge can pin one shared deadline across sequential local
        #: jobs (each job must not restart the budget).
        self._started: Optional[float] = None
        self._deadline: Optional[float] = None
        self._deadline_hit = False
        self._frontier_remaining = 0
        #: the SeenStates table (see repro.engine.subsume), one per
        #: exploration — shard workers each build their own over their
        #: subtree and only the counters are merged
        self._seen: Optional[SeenStates] = \
            SeenStates() if options.subsume else None
        #: pending violations from subsumed arms, flushed (and drained)
        #: into the result at _finalize: pruning an arm must not drop
        #: observations its *prefix* already produced
        self._subsumed_notes: List[_PendingViolation] = []

    # -- driving ------------------------------------------------------------

    def explore(self, initial: Config,
                stop_at_first: bool = False) -> ExplorationResult:
        """Explore the tool schedules from an initial configuration."""
        self.engine = ExecutionEngine(self.machine)
        self._applied = 0
        self._skipped = 0
        self._pops = 0
        self._started = None
        self._deadline = None
        self._deadline_hit = False
        self._frontier_remaining = 0
        self._seen = SeenStates() if self.options.subsume else None
        self._subsumed_notes = []
        self._telemetry = SearchTelemetry() if self.options.telemetry \
            else None
        return self.explore_from([MachineState(initial)], stop_at_first)

    def explore_from(self, states: List[MachineState],
                     stop_at_first: bool = False) -> ExplorationResult:
        """Explore onward from pre-seeded states (shard workers resume a
        replayed subtree root here).  Unlike :meth:`explore` this does
        not reset the engine, so prefix-replay accounting survives."""
        result = ExplorationResult()
        if self._started is None:
            self._started = self._clock()
            if self.options.budget_seconds is not None:
                self._deadline = self._started + self.options.budget_seconds
        frontier = make_frontier(self.options.strategy,
                                 seed=self.options.seed,
                                 pc_of=_state_pc,
                                 program=self.machine.program,
                                 exploration=self.options.mcts_c,
                                 playout_depth=self.options.mcts_playout)
        frontier.extend(states)
        tracer = self._tracer
        telemetry = self._telemetry
        run_started = tracer.start() if tracer.enabled else 0.0
        while frontier:
            # Deadline checks sit at pop boundaries only, so a run with
            # an injected fake clock is deterministic: the same pops
            # happen before the same tick regardless of host speed.
            if self._deadline is not None and \
                    self._clock() >= self._deadline:
                result.truncated = True
                self._deadline_hit = True
                break
            if result.paths_explored >= self.options.max_paths:
                result.truncated = True
                break
            path = frontier.pop()
            self._pops += 1
            if telemetry is not None:
                telemetry.record_pop(path.config.pc)
            if tracer.enabled:
                forks = self._run_path_traced(path, frontier)
            else:
                forks = self._run_path(path)
            if forks is None:
                if telemetry is not None:
                    telemetry.record_schedule(path.depth)
                result.paths_explored += 1
                result.states_stepped += path.steps
                path_result = self._materialize(path)
                result.paths.append(path_result)
                result.violations.extend(path_result.violations)
                if not path_result.complete:
                    result.exhausted_paths += 1
                hit = bool(path_result.violations)
                frontier.reward(path, hit)
                if hit:
                    self.engine.stats.record_first_violation(
                        self._pops, self._applied,
                        self._clock() - self._started)
                if stop_at_first and hit:
                    break
            else:
                if stop_at_first and self._subsumed_notes:
                    # A subsumed arm carried a pending violation: the
                    # finding exists, stop exactly as a completed
                    # violating path would have.
                    self.engine.stats.record_first_violation(
                        self._pops, self._applied,
                        self._clock() - self._started)
                    break
                frontier.extend(forks)
        self._frontier_remaining = len(frontier)
        result = self._finalize(result)
        if tracer.enabled:
            tracer.add("explore", "explore", run_started, {
                "strategy": self.options.strategy,
                "pops": self._pops,
                "paths": result.paths_explored,
                "applied_steps": result.applied_steps,
                "violations": len(result.violations),
                "truncated": result.truncated})
        return result

    def _finalize(self, result: ExplorationResult) -> ExplorationResult:
        result.applied_steps = self._applied
        result.states_reused = max(0, result.states_stepped - self._applied)
        self.engine.count_reused(result.states_reused)
        if self._subsumed_notes:
            # Violations observed on prefixes of subsumed arms, appended
            # after the path-ordered violations (and drained: a sharded
            # run finalizes the same explorer once per local job).
            result.violations.extend(
                note.materialize() for note in self._subsumed_notes)
            self._subsumed_notes = []
        result.engine = self.engine.stats.snapshot()
        result.pruning = PruningStats(self.options.prune,
                                      classes_explored=result.paths_explored,
                                      schedules_skipped=self._skipped)
        seen = self._seen
        result.subsumption = (SubsumptionStats(False) if seen is None
                              else seen.stats(True))
        if self.options.budget_seconds is not None:
            result.anytime = AnytimeStats(
                budget_seconds=self.options.budget_seconds,
                budget_consumed=self._clock() - self._started,
                deadline_hit=self._deadline_hit,
                paths_explored=result.paths_explored,
                frontier_remaining=self._frontier_remaining,
                first_violation_time=result.engine.first_violation_wall)
        if self._telemetry is not None:
            # Cumulative per explorer, like the engine counters: a
            # sharded run's sequential local jobs share this
            # accumulator and the merge rebuilds the section once.
            result.telemetry = self._telemetry.to_section(
                self._clock() - self._started)
        return result

    @staticmethod
    def _materialize(path: MachineState) -> PathResult:
        return PathResult(
            path.schedule.materialize(), path.trace.materialize(),
            path.config.snapshot(),
            tuple(p.materialize() for p in path.notes),
            complete=not path.exhausted)

    def _run_path(self,
                  path: MachineState) -> Optional[List[MachineState]]:
        """Advance until the path terminates (None) or forks (list)."""
        arms = self.advance_to_fork(path)
        if arms is None:
            return None
        self.engine.count_fork(len(arms))
        return [clone for clone, _actions in self.expand(path, arms)]

    def _run_path_traced(self, path: MachineState,
                         frontier) -> Optional[List[MachineState]]:
        """:meth:`_run_path` under a span: one per frontier pop, its
        args the engine-counter *deltas* this segment caused — step
        batches, trial-cache hits, POR skips, subsumption probes —
        plus the frontier's scores for the pop when the strategy ranks
        (mcts prior/UCT).  Instrumenting here, at the pop seam, keeps
        the per-machine-step path untouched."""
        tracer = self._tracer
        stats = self.engine.stats
        ts = tracer.start()
        pc = path.config.pc
        steps0 = stats.steps
        hits0 = stats.cache_hits + stats.stuck_hits
        skips0 = self._skipped
        subsumed0 = stats.states_subsumed
        forks = self._run_path(path)
        args = {"pop": self._pops, "pc": pc, "depth": path.depth,
                "steps": stats.steps - steps0,
                "cache_hits": stats.cache_hits + stats.stuck_hits - hits0,
                "por_skips": self._skipped - skips0,
                "subsumed": stats.states_subsumed - subsumed0,
                "arms": 0 if forks is None else len(forks)}
        info = getattr(frontier, "last_pop_info", None)
        if info is not None:
            args.update(info)
        tracer.add("path", "explore", ts, args)
        return forks

    def expand(self, path: MachineState, arms: List[List[_Action]]
               ) -> List[Tuple[MachineState, Tuple[_Action, ...]]]:
        """Apply each fork arm to a fork of ``path``.

        Returns (clone, actions applied) pairs in arm order — the
        sharded splitter needs the actions to build job prefixes, and
        this is the single place both drivers collapse degenerate arms:
        under ``prune="full"``, an arm whose resulting configuration
        equals an earlier sibling's (with no observations of its own)
        heads an identical subtree — Theorem B.1 determinism — and is
        dropped as a duplicate representative.
        """
        base_trace = len(path.trace)
        expanded = []
        for arm in arms:
            clone = path.fork()
            clone.depth = path.depth + 1
            applied: List[_Action] = []
            for action in arm:
                if not self._apply(clone, action):
                    break
                applied.append(action)
            expanded.append((clone, tuple(applied)))
        if self.options.prune == "full" and len(expanded) >= 2:
            kept: List[Tuple[MachineState, Tuple[_Action, ...]]] = []
            for clone, applied in expanded:
                if len(clone.trace) == base_trace and any(
                        self._same_state(clone, other)
                        for other, _a in kept):
                    self._skipped += 1
                    continue
                kept.append((clone, applied))
            expanded = kept
        if self._seen is None:
            return expanded
        return self._subsume_arms(path, expanded)

    def _subsume_arms(self, path: MachineState,
                      expanded: List[Tuple[MachineState, Tuple[_Action, ...]]]
                      ) -> List[Tuple[MachineState, Tuple[_Action, ...]]]:
        """Consult the SeenStates table for each live fork arm.

        An arm whose post-fork state was already recorded with the same
        or weaker residual obligations is dropped — its subtree's
        observations are covered by the canonical state's subtree (see
        :mod:`repro.engine.subsume`).  Pending violations the arm's own
        actions produced are *not* covered (they are past, not future),
        so they are flushed to ``_subsumed_notes``; and when every arm
        of a fork is dropped, the shared prefix would never reach a
        completed path, so its pending violations are flushed too.
        Finished/exhausted arms pass through untouched: an exhausted
        state explored nothing and must never become (or be compared
        against) a canonical covering entry.
        """
        seen = self._seen
        base_notes = len(path.notes)
        kept: List[Tuple[MachineState, Tuple[_Action, ...]]] = []
        for clone, applied in expanded:
            if clone.finished or clone.exhausted:
                kept.append((clone, applied))
                continue
            if seen.subsumes(clone):
                self.engine.stats.states_subsumed += 1
                notes = list(clone.notes)
                self._subsumed_notes.extend(notes[base_notes:])
                continue
            seen.record(clone)
            kept.append((clone, applied))
        if not kept and expanded and base_notes:
            # Every arm subsumed: no descendant path will materialize
            # the shared prefix's pending violations — flush them here.
            self._subsumed_notes.extend(path.notes)
        return kept

    @staticmethod
    def _same_state(a: MachineState, b: MachineState) -> bool:
        """Do two sibling arms head identical subtrees?  Requires equal
        configurations, equal observation history, and equal driver
        flags; cheap discriminators first, structural equality last."""
        if a.finished != b.finished or a.exhausted != b.exhausted or \
                len(a.trace) != len(b.trace):
            return False
        ca, cb = a.config, b.config
        if ca is cb:
            return True
        if ca.pc != cb.pc or len(ca.buf) != len(cb.buf):
            return False
        return ca == cb

    def advance_to_fork(self, path: MachineState,
                        record: Optional[List[_Action]] = None
                        ) -> Optional[List[List[_Action]]]:
        """Apply forced moves until the next choice point.

        Returns the fork's arms, or None when the path terminated
        (finished, stuck, budget-exhausted, or nothing left to do).
        ``record`` collects every applied action — the sharded splitter
        uses it to build self-contained job prefixes, so this is the
        single copy of the scheduler drive loop both modes share.
        """
        while True:
            if path.exhausted or path.finished:
                return None
            if path.steps >= self.options.max_steps or \
                    path.fetches >= self.options.max_fetches:
                path.exhausted = True
                return None
            arms = self._next_actions(path)
            if arms is None:
                return None  # terminal: nothing to fetch, buffer empty
            if len(arms) != 1:
                return arms
            for action in arms[0]:
                if not self._apply(path, action):
                    return None
                if record is not None:
                    record.append(action)

    def _apply(self, path: MachineState, action: _Action) -> bool:
        """Apply one action; False if the path ended (stuck)."""
        if isinstance(action, _DelayJmpi):
            path.delayed.add(action.index)
            # The Execute-now sibling arm explores the redirect outcome,
            # so the eventual rollback of this delayed jump is covered.
            path.sleep.add(("redirect", action.index))
            return True
        if isinstance(action, _Defer):
            path.deferred.add(action.index)
            return True
        if isinstance(action, _Sleep):
            entry = action.entry
            if entry[0] == "redirect" and entry[1] is None:
                entry = ("redirect", path.config.buf.max_index())
            path.sleep.add(entry)
            return True
        try:
            config, leak = self.engine.step(path.config, action)
        except StuckError:
            # Only trial-checked directives reach here, so this is a
            # safety net; end the path.
            path.exhausted = True
            return False
        path.steps += 1
        self._applied += 1
        if isinstance(action, Fetch):
            path.fetches += 1
        schedule = path.schedule.append(action)
        if leak:
            trace = path.trace
            for obs in leak:
                trace = trace.append(obs)
                if is_secret_dependent(obs):
                    buffer_index = action.index \
                        if isinstance(action, Execute) else None
                    path.notes = path.notes.append(_PendingViolation(
                        obs, len(path.schedule), action, buffer_index,
                        schedule, trace))
            path.trace = trace
            if any(isinstance(o, Rollback) for o in leak):
                # Join *before* cleaning up: the squashed indices are
                # exactly what identifies the covered outcome.
                if self._rollback_join(path, action, config):
                    path.finished = True
                    self._skipped += 1
                path.delayed = {i for i in path.delayed
                                if i in config.buf}
                if path.deferred:
                    path.deferred = {i for i in path.deferred
                                     if i in config.buf}
                if path.sleep:
                    path.sleep = drop_dead_entries(path.sleep, config.buf)
        elif isinstance(action, Retire) and (path.sleep or path.deferred):
            # Retirement frees indices for reuse after a drain; stale
            # entries must not outlive their instructions.
            if path.deferred:
                path.deferred = {i for i in path.deferred
                                 if i in config.buf}
            path.sleep = drop_dead_entries(path.sleep, config.buf)
        path.schedule = schedule
        path.config = config
        return True

    def _rollback_join(self, path: MachineState, action: _Action,
                       config: Config) -> bool:
        """Does the sibling fork arm cover this rollback's continuation?

        The post-rollback configuration re-converges with the arm that
        predicted (or forwarded) correctly — modulo resolutions of
        *older* entries that commute past the squash (transient work
        never writes memory; only retirement does), so the sibling's
        subtree explores an equivalent continuation (Thm B.7 plus the
        commutation lemma, DESIGN.md).  The join fires only when that
        sibling was actually generated:

        * a delayed mispredicted branch — the correct-guess arm is
          always forked (``prune`` ≥ sleepset; this is the seed
          explorer's pruning, now named);
        * a mispredicted ``jmpi`` whose redirect is in the sleep set —
          the actual-target fetch arm or the Execute-now arm existed
          (``prune="full"``);
        * an aliasing-predicted load failing validation — the plain
          execution arm always exists alongside §3.5's guessed-forward
          arms (``prune="full"``);
        * a store-address hazard whose (store, load) pair is in the
          sleep set — the forwarding arm was generated at the load's
          fork (``prune="full"``).
        """
        prune = self.options.prune
        if prune == "none" or not isinstance(action, Execute):
            return False
        pre = path.config.buf.get(action.index)
        if isinstance(pre, TBr):
            return True
        if prune != "full":
            return False
        if isinstance(pre, TJmpi):
            return ("redirect", action.index) in path.sleep
        if isinstance(pre, TLoad) and pre.pred is not None:
            return True
        if isinstance(pre, TStore) and action.part == "addr":
            store = config.buf.get(action.index)
            if not isinstance(store, TStore) or store.addr is None:
                return False
            try:
                a = self.machine.evaluator.concretize(store.addr)
            except ReproError:
                return False
            k = hazard_load(path.config, action.index, a)
            if k is None:
                return False
            victim = path.config.buf[k]
            if victim.dep == action.index and victim.addr != a:
                # wrong-fwd hazard: the load had guessed-forwarded from
                # this store (§3.5) and the addresses now disagree; its
                # plain-execution sibling arm always exists.
                return True
            return ("fwd", action.index, k) in path.sleep
        return False

    # -- the scheduler: Definition B.18 ----------------------------------

    def _next_actions(self,
                      path: MachineState) -> Optional[List[List[_Action]]]:
        """The next action arm(s) DT(bound) performs from this state.

        Each arm is a *sequence* of actions; a single arm is a forced
        move, several arms are a choice point, None means the path has
        terminated.
        """
        config = path.config

        eager = self._eager_actions(path)
        if eager is not None:
            return eager

        if len(config.buf) < self.options.bound:
            fetches = self._fetch_choices(config)
            if fetches:
                return fetches

        if config.buf:
            return [[self._oldest_move(config)]]

        return None

    def _eager_actions(self,
                       path: MachineState) -> Optional[List[List[_Action]]]:
        """Definition B.18's "immediately after fetch" work, plus the
        choice points (per-load forwarding outcomes, aliasing
        prediction, mispredicted-jmpi timing)."""
        config = path.config
        for i, entry in config.buf.items():
            if isinstance(entry, TOp):
                if self._can(config, Execute(i)):
                    return [[Execute(i)]]
            elif isinstance(entry, TLoad) and entry.pred is None:
                arms = self._load_arms(config, i, entry)
                if arms is None:
                    continue
                if self.options.explore_aliasing:
                    arms += [[Execute(i, j)]
                             for j, other in config.buf.items()
                             if j < i and isinstance(other, TStore)
                             and other.value_resolved()
                             and self._can(config, Execute(i, j))]
                return arms
            elif isinstance(entry, TStore):
                if not entry.value_resolved():
                    if self._can(config, Execute(i, "value")):
                        return [[Execute(i, "value")]]
                elif not entry.addr_resolved():
                    # Without forwarding-hazard exploration, store
                    # addresses resolve in order, immediately; with it,
                    # they stay pending until a load's forwarding arm or
                    # the oldest-entry sweep resolves them (§4.1).
                    if not self.options.fwd_hazards and \
                            self._can(config, Execute(i, "addr")):
                        return [[Execute(i, "addr")]]
                    # prune="none": §4.1's deferral is the *letter* of
                    # the definition — "resolve the address now, or
                    # defer it" is a choice point for every store.  The
                    # reduced levels fork only where the address may
                    # alias an in-flight load (the load-site arms
                    # below), which is the independence argument.
                    if self.options.fwd_hazards and \
                            self.options.prune == "none" and \
                            i not in path.deferred and \
                            self._can(config, Execute(i, "addr")):
                        return [[Execute(i, "addr")], [_Defer(i)]]
                    # Reduced levels rest on an independence argument:
                    # deferring a store's address resolution commutes
                    # with every other action, so only the aliasing
                    # choice points (the load-site arms) need forks.
                    # That argument breaks when the address *reads an
                    # in-flight value*: the resolution observation then
                    # leaks a possibly-transient value, and deferring
                    # it past the producer's hazard squash silently
                    # drops the leak (surfaced by the repro.sps.diff
                    # differential sweep) — so the timing fork comes
                    # back for exactly those stores.
                    if self.options.fwd_hazards and \
                            self.options.prune != "none" and \
                            i not in path.deferred and \
                            self._addr_reads_inflight(config, i,
                                                      entry.args) and \
                            self._can(config, Execute(i, "addr")):
                        return [[Execute(i, "addr")], [_Defer(i)]]
            elif isinstance(entry, TBr):
                if self.options.assume_unknown_branches:
                    continue  # all branches delayed in symbolic mode
                # Resolve immediately only when the guess was correct
                # (mispredicted branches are delayed until oldest) and no
                # older fence blocks execution.
                arm = self._actual_br_target(config, i, entry)
                if arm is not None and arm == entry.guess and \
                        self._can(config, Execute(i)):
                    return [[Execute(i)]]
            elif isinstance(entry, TJmpi):
                if i in path.delayed:
                    continue
                target = self._actual_jmpi_target(config, i, entry)
                if target is None or not self._can(config, Execute(i)):
                    continue
                if target == entry.guess:
                    return [[Execute(i)]]
                # Mispredicted: both "speculatively return now" (Fig 10)
                # and "keep running the guessed path" (Fig 11) matter.
                return [[Execute(i)], [_DelayJmpi(i)]]
        return None

    def _load_arms(self, config: Config, i: int,
                   entry: TLoad) -> Optional[List[List[_Action]]]:
        """§4.1's per-load forwarding outcomes.

        For load l, find the prior in-flight stores that *would* resolve
        to l's address.  One arm per such store s_k: resolve addresses up
        to and including s_k (so s_k forwards to l), leaving younger
        matching stores pending; plus one arm where none resolve and l
        reads (possibly stale) memory — the Spectre v4 probe.  Already-
        resolved younger matching stores make earlier outcomes
        unreachable and are skipped.
        """
        if not self.options.fwd_hazards or self.options.prune == "none":
            # Raw B.18 mode: the forwarding outcomes arise from the
            # store-address deferral forks, not from load-site
            # lookahead — the load just executes when it can.
            if not self._can(config, Execute(i)):
                return None
            return [[Execute(i)]]
        addr = self._eventual_address(config, i, entry.args)
        if addr is None:
            return None  # operands pending; retry after more eager work
        matching: List[Tuple[int, bool]] = []   # (index, already_resolved)
        for j, other in config.buf.items():
            if j >= i:
                break
            if not isinstance(other, TStore):
                continue
            if other.addr_resolved():
                if self.machine.evaluator.concretize(other.addr) == addr:
                    matching.append((j, True))
            else:
                other_addr = self._eventual_address(config, j, other.args)
                if other_addr == addr:
                    matching.append((j, False))
        full = self.options.prune == "full"
        arms: List[List[_Action]] = []
        unresolved_suffix_ok = True  # no resolved store younger than s_k
        for pos in range(len(matching) - 1, -1, -1):
            j, resolved = matching[pos]
            if not unresolved_suffix_ok:
                break
            arm: List[_Action] = []
            if not resolved:
                store = config.buf[j]
                if not store.value_resolved():
                    arm.append(Execute(j, "value"))
                arm.append(Execute(j, "addr"))
            arm.append(Execute(i))
            if full:
                # A younger pending matching store resolving later will
                # hazard-squash this load into *its* forwarding outcome
                # — the sibling arm for that store explores it.
                arm += [_Sleep(("fwd", m, i)) for m, res in matching
                        if m > j and not res]
            arms.append(arm)
            if resolved:
                # Outcomes where an older store forwards (or memory is
                # read) are unreachable past an already-resolved store.
                unresolved_suffix_ok = False
        if unresolved_suffix_ok:
            arm = [Execute(i)]  # no store resolves: read memory
            if full:
                arm += [_Sleep(("fwd", m, i)) for m, res in matching
                        if not res]
            arms.append(arm)
        # An older fence (or an unresolved dependency) may block every
        # arm right now; report "not yet" so the sweep makes progress
        # elsewhere and retries after the blocker clears.
        arms = [arm for arm in arms if self._can_sequence(config, arm)]
        if not arms:
            return None
        return arms

    def _can_sequence(self, config: Config, arm: List[_Action]) -> bool:
        current = config
        for action in arm:
            if not isinstance(action, Execute):
                return True
            stepped = self.engine.try_step(current, action)
            if stepped is None:
                return False
            current = stepped[0]
        return True

    def _addr_reads_inflight(self, config: Config, i: int, args) -> bool:
        """Does entry ``i``'s address read a register whose youngest
        assignment is still in flight?  Such a value may be transient
        (a speculatively forwarded load, or computation on one), so the
        timing of the address resolution — and hence whether its
        ``fwd`` observation happens before a rollback squashes the
        entry — is not schedule-independent."""
        for rv in args:
            if isinstance(rv, Value):
                continue
            for j in reversed(config.buf.indices()):
                if j < i and assigns(config.buf[j], rv):
                    return True
        return False

    def _eventual_address(self, config: Config, i: int,
                          args) -> Optional[int]:
        """The address buffer entry ``i`` will resolve to, if its
        operands are available now."""
        try:
            vals = resolve_operands(config.buf, i, config.regs, args)
        except KeyError:
            return None
        if vals is None:
            return None
        try:
            return self.machine.evaluator.concretize(
                self.machine.evaluator.address(vals))
        except ReproError:
            return None

    def _can(self, config: Config, d: Execute) -> bool:
        return self.engine.can(config, d)

    # -- fetch choices -------------------------------------------------------

    def _fetch_choices(self, config: Config) -> List[List[_Action]]:
        """The fetch fork's arms.  Under ``prune="full"``, a mistrained
        (wrong-target) arm whose *actual*-target sibling is also forked
        carries a redirect sleep entry: its eventual
        jmpi-execute-incorrect rollback re-converges with that sibling,
        so the window is capped there (``("redirect", None)`` resolves
        to the just-fetched entry's index when applied)."""
        covered = ([_Sleep(("redirect", None))]
                   if self.options.prune == "full" else [])
        instr = self.machine.program.get(config.pc)
        if instr is None:
            return []
        if isinstance(instr, Br):
            if self.options.assume_unknown_branches:
                return [[Fetch(True)], [Fetch(False)]]
            correct = self._correct_arm(config, instr)
            if correct is None:
                return [[Fetch(True)], [Fetch(False)]]
            return [[Fetch(correct)], [Fetch(not correct)]]
        if isinstance(instr, Jmpi):
            target = self._static_jmpi_target(config, instr)
            choices: List[List[_Action]] = \
                [] if target is None else [[Fetch(target)]]
            choices += [[Fetch(t)] + (covered if target is not None else [])
                        for t in self.options.jmpi_targets if t != target]
            return choices
        if isinstance(instr, Ret):
            if config.rsb.top() is BOTTOM and \
                    self.machine.rsb_policy == "directive":
                # The original tool does not explore attacker-chosen RSB
                # targets; by default follow the architectural return
                # address, plus any configured mistrained targets.
                target = self._actual_return(config)
                choices = [] if target is None else [[Fetch(target)]]
                choices += [[Fetch(t)] + (covered if target is not None
                                          else [])
                            for t in self.options.rsb_targets
                            if t != target]
                return choices
            return [[Fetch(None)]]
        return [[Fetch(None)]]

    def _correct_arm(self, config: Config, instr: Br) -> Optional[bool]:
        i = config.buf.max_index() + 1
        try:
            vals = resolve_operands(config.buf, i, config.regs, instr.args)
        except KeyError:
            return None
        if vals is None:
            return None
        cond = self.machine.evaluator.evaluate(instr.opcode, vals)
        return self.machine.evaluator.truth(cond)

    def _static_jmpi_target(self, config: Config,
                            instr: Jmpi) -> Optional[int]:
        i = config.buf.max_index() + 1
        try:
            vals = resolve_operands(config.buf, i, config.regs, instr.args)
        except KeyError:
            return None
        if vals is None:
            return None
        addr = self.machine.evaluator.address(vals)
        return self.machine.evaluator.concretize(addr)

    def _actual_return(self, config: Config) -> Optional[int]:
        i = config.buf.max_index() + 1
        try:
            vals = resolve_operands(config.buf, i, config.regs, (RSP,))
        except KeyError:
            return None
        if vals is None:
            return None
        addr = self.machine.evaluator.concretize(vals[0])
        target = config.mem.read(addr)
        try:
            return self.machine.evaluator.concretize(target)
        except ReproError:
            return None

    # -- resolved targets of in-flight control flow ---------------------------

    def _actual_br_target(self, config: Config, i: int,
                          entry: TBr) -> Optional[int]:
        vals = resolve_operands(config.buf, i, config.regs, entry.args)
        if vals is None:
            return None
        cond = self.machine.evaluator.evaluate(entry.opcode, vals)
        taken = self.machine.evaluator.truth(cond)
        return entry.targets[0] if taken else entry.targets[1]

    def _actual_jmpi_target(self, config: Config, i: int,
                            entry: TJmpi) -> Optional[int]:
        vals = resolve_operands(config.buf, i, config.regs, entry.args)
        if vals is None:
            return None
        addr = self.machine.evaluator.address(vals)
        return self.machine.evaluator.concretize(addr)

    # -- the full-buffer move -------------------------------------------------

    def _oldest_move(self, config: Config) -> Directive:
        """Definition B.18's full-buffer step: resolve or retire the
        oldest instruction (or its call/ret group)."""
        i = config.buf.min_index()
        entry = config.buf[i]
        if isinstance(entry, TStore):
            if not entry.value_resolved():
                return Execute(i, "value")
            if not entry.addr_resolved():
                return Execute(i, "addr")
            return Retire()
        if isinstance(entry, (TBr, TJmpi)):
            # Before a delayed (mispredicted) branch resolves and rolls
            # the window back, resolve the window's pending store
            # addresses: Definition B.18 includes the execute-addr arm
            # for every store, and a store whose *address* depends on a
            # secret leaks exactly here (``fwd a_sec``).
            for j, other in config.buf.items():
                if (isinstance(other, TStore) and other.value_resolved()
                        and not other.addr_resolved()
                        and self._can(config, Execute(j, "addr"))):
                    return Execute(j, "addr")
            return Execute(i)
        if isinstance(entry, TOp):
            return Execute(i)
        if isinstance(entry, TLoad):
            return Execute(i)
        if isinstance(entry, (TValue, TJump, TFence)):
            return Retire()
        if isinstance(entry, (TCallMarker, TRetMarker)):
            span = 3 if isinstance(entry, TCallMarker) else 4
            for k in range(i + 1, i + span):
                member = config.buf.get(k)
                if isinstance(member, TStore):
                    if not member.value_resolved():
                        return Execute(k, "value")
                    if not member.addr_resolved():
                        return Execute(k, "addr")
                elif isinstance(member, (TOp, TJmpi, TLoad)):
                    return Execute(k)
            return Retire()
        raise StuckError(f"scheduler cannot progress past {entry!r}")
