"""Symbolic execution under attacker schedules (the angr half of §4.2).

The original Pitchfork "uses angr to symbolically execute a given
program according to each of its worst-case schedules".  This module is
that second half, self-contained:

* :class:`Sym` — a symbolic input over a finite domain (attacker-
  controlled indices, unknown lengths, …);
* symbolic expressions are opcode trees (:class:`App`) carried as value
  *payloads*; the machine is untouched — labels ride along exactly as in
  the concrete semantics;
* :class:`SymbolicEvaluator` plugs into :class:`repro.core.Machine`.
  Branch conditions over symbols raise :class:`Fork`; symbolic memory
  addresses are concretized against a model, mirroring angr's address
  concretization (§4.2: "angr concretizes addresses for memory
  operations instead of keeping them symbolic");
* :class:`SymbolicRunner` replays directive schedules, splitting into
  *worlds* (path constraints) at forks and pruning unsatisfiable ones;
* :func:`analyze_symbolic` combines both halves: enumerate the tool
  schedules DT(bound) on a concrete representative, then symbolically
  replay them, flag secret-labelled observations in any satisfiable
  world, and *solve* for an attacker input that triggers them.

Prefix-shared replay
--------------------

The schedule family DT(bound) is produced by a DFS whose fork points
give it a trie shape; the seed implementation nonetheless replayed
every schedule from step 0, re-executing each shared prefix once per
schedule.  The pipeline now walks the
:class:`repro.engine.ScheduleTree` from
:func:`~repro.pitchfork.schedules.enumerate_schedule_tree` instead
(:meth:`SymbolicRunner.run_tree`): worlds advance through every
distinct prefix exactly once and are *shared* by all schedules below
it, then snapshot/resume (worlds are immutable records over persistent
logs) lets each child arm continue from the deepest shared prefix.
For fully concrete inputs the replay collapses further: one machine
step is a function of (configuration, directive) — Theorem B.1 — so
the explorer's recorded traces *are* the replay, and the pipeline
harvests them without re-stepping anything (counted as ``reused`` in
:class:`ReplayStats`).

Satisfiability is decided by bounded enumeration over the (finite,
small) symbol domains — honest and exact for the gadget-sized programs
this reproduction targets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (Dict, Iterable, List, NamedTuple, Optional, Sequence,
                    Tuple, Union)

from ..core.config import Config
from ..core.directives import Schedule
from ..core.errors import ReproError, StuckError
from ..core.isa import Evaluator, OPCODES, sum_addr
from ..core.lattice import Label
from ..core.machine import Machine
from ..core.observations import Observation, Trace, secret_observations
from ..core.program import Program
from ..core.values import Value, join_labels
from ..engine import (EMPTY_LOG, EngineStats, Log, ScheduleTree, TreeNode,
                      make_frontier)
from .schedules import enumerate_schedule_tree


# ---------------------------------------------------------------------------
# Symbolic expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Sym:
    """A symbolic input variable over a finite domain."""

    name: str
    domain: Tuple[int, ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"${self.name}"


@dataclass(frozen=True)
class App:
    """An opcode applied to symbolic/concrete arguments."""

    op: str
    args: Tuple["SymExpr", ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.op}({', '.join(map(repr, self.args))})"


SymExpr = Union[int, Sym, App]


def symbols_of(expr: SymExpr) -> Tuple[Sym, ...]:
    """All symbols occurring in an expression."""
    if isinstance(expr, Sym):
        return (expr,)
    if isinstance(expr, App):
        out: List[Sym] = []
        for a in expr.args:
            for s in symbols_of(a):
                if s not in out:
                    out.append(s)
        return tuple(out)
    return ()


def eval_expr(expr: SymExpr, model: Dict[str, int]) -> int:
    """Evaluate an expression under a model (symbol assignment)."""
    if isinstance(expr, int):
        return expr
    if isinstance(expr, Sym):
        return model[expr.name]
    arity, fn = OPCODES[expr.op]
    args = [eval_expr(a, model) for a in expr.args]
    return fn(*args)


# ---------------------------------------------------------------------------
# Path constraints and bounded solving
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Constraint:
    """``expr != 0`` (when truthy) or ``expr == 0``."""

    expr: SymExpr
    truthy: bool

    def holds(self, model: Dict[str, int]) -> bool:
        value = eval_expr(self.expr, model)
        return bool(value) == self.truthy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rel = "!= 0" if self.truthy else "== 0"
        return f"{self.expr!r} {rel}"


MAX_MODELS = 65536


def solve(constraints: Sequence[Constraint],
          extra_symbols: Iterable[Sym] = ()) -> Optional[Dict[str, int]]:
    """A model satisfying all constraints, or None.

    Bounded exhaustive search over the product of the symbol domains;
    raises :class:`ReproError` if the space exceeds ``MAX_MODELS``.
    """
    symbols: List[Sym] = list(extra_symbols)
    for c in constraints:
        for s in symbols_of(c.expr):
            if s not in symbols:
                symbols.append(s)
    if not symbols:
        return {} if all(c.holds({}) for c in constraints) else None
    space = 1
    for s in symbols:
        space *= len(s.domain)
    if space > MAX_MODELS:
        raise ReproError(f"symbolic domain too large ({space} models)")
    for combo in itertools.product(*(s.domain for s in symbols)):
        model = {s.name: v for s, v in zip(symbols, combo)}
        if all(c.holds(model) for c in constraints):
            return model
    return None


def feasible_values(expr: SymExpr,
                    constraints: Sequence[Constraint]) -> List[int]:
    """All values ``expr`` can take under the constraints (bounded)."""
    symbols: List[Sym] = list(symbols_of(expr))
    for c in constraints:
        for s in symbols_of(c.expr):
            if s not in symbols:
                symbols.append(s)
    if not symbols:
        return [eval_expr(expr, {})]
    space = 1
    for s in symbols:
        space *= len(s.domain)
    if space > MAX_MODELS:
        raise ReproError(f"symbolic domain too large ({space} models)")
    values = set()
    for combo in itertools.product(*(s.domain for s in symbols)):
        model = {s.name: v for s, v in zip(symbols, combo)}
        if all(c.holds(model) for c in constraints):
            values.add(eval_expr(expr, model))
    return sorted(values)


# ---------------------------------------------------------------------------
# The pluggable evaluator
# ---------------------------------------------------------------------------

class Fork(ReproError):
    """A branch condition (or comparison) needs a decision."""

    def __init__(self, expr: SymExpr):
        super().__init__(f"fork on {expr!r}")
        self.expr = expr


class NeedConcretization(ReproError):
    """A symbolic value is used as a concrete address / jump target."""

    def __init__(self, expr: SymExpr):
        super().__init__(f"concretization needed for {expr!r}")
        self.expr = expr


def _is_concrete(value: Value) -> bool:
    return isinstance(value.val, int)


class SymbolicEvaluator(Evaluator):
    """Evaluator over int-or-:data:`SymExpr` payloads.

    Carries the *world state*: branch decisions already taken and
    address concretizations already committed.  The machine calls back
    in; undecided questions surface as :class:`Fork` /
    :class:`NeedConcretization`, which :class:`SymbolicRunner` resolves
    by splitting or solving, then retries the (pure) step.
    """

    #: Stateful (decisions accumulate), so machine steps under this
    #: evaluator are not a function of (configuration, directive) and
    #: must not be served from the execution engine's step cache.
    pure = False

    def __init__(self,
                 decisions: Optional[Dict[SymExpr, bool]] = None,
                 concretizations: Optional[Dict[SymExpr, int]] = None):
        self.decisions: Dict[SymExpr, bool] = dict(decisions or {})
        self.concretizations: Dict[SymExpr, int] = dict(concretizations or {})

    def clone(self) -> "SymbolicEvaluator":
        return SymbolicEvaluator(self.decisions, self.concretizations)

    # -- Evaluator interface -------------------------------------------------

    def evaluate(self, opcode: str, vals: Sequence[Value]) -> Value:
        if opcode not in OPCODES:
            raise ReproError(f"unknown opcode {opcode!r}")
        label = join_labels(vals)
        if all(_is_concrete(v) for v in vals):
            _arity, fn = OPCODES[opcode]
            return Value(fn(*(v.val for v in vals)), label)
        return Value(App(opcode, tuple(v.val for v in vals)), label)

    def address(self, vals: Sequence[Value]) -> Value:
        label = join_labels(vals)
        if all(_is_concrete(v) for v in vals):
            return Value(sum_addr([v.val for v in vals]), label)
        return Value(App("add", tuple(v.val for v in vals)), label)

    def truth(self, value: Value) -> bool:
        if _is_concrete(value):
            return bool(value.val)
        if value.val in self.decisions:
            return self.decisions[value.val]
        raise Fork(value.val)

    def concretize(self, value: Value) -> int:
        if _is_concrete(value):
            return value.val
        if value.val in self.concretizations:
            return self.concretizations[value.val]
        raise NeedConcretization(value.val)


# ---------------------------------------------------------------------------
# Symbolic replay of schedules
# ---------------------------------------------------------------------------

@dataclass
class ReplayStats:
    """Step accounting for one symbolic replay."""

    steps: int = 0          #: machine step rules attempted
    reused: int = 0         #: steps served by prefix sharing / harvesting
    solver_calls: int = 0   #: bounded-enumeration satisfiability queries
    worlds: int = 0         #: worlds spawned (splits and concretizations)
    truncated: bool = False  #: the max_worlds cap dropped coverage


@dataclass
class World:
    """One satisfiable path through a schedule."""

    config: Config
    evaluator: SymbolicEvaluator
    constraints: List[Constraint]
    trace: List[Observation]
    consumed: int = 0           #: directives executed so far
    stuck: bool = False         #: schedule became ill-formed here

    def model(self) -> Optional[Dict[str, int]]:
        return solve(self.constraints)


class _TreeWorld(NamedTuple):
    """An immutable world record for tree replay: forking a subtree is
    O(1) because constraints are tuples and the trace is a shared
    persistent log."""

    config: Config
    evaluator: SymbolicEvaluator
    constraints: Tuple[Constraint, ...]
    trace: Log
    consumed: int
    stuck: bool

    def to_world(self) -> World:
        return World(self.config, self.evaluator, list(self.constraints),
                     list(self.trace.materialize()), self.consumed,
                     self.stuck)


@dataclass(frozen=True)
class SymbolicFinding:
    """A secret observation plus an input model that reaches it."""

    observation: Observation
    schedule: Schedule
    constraints: Tuple[Constraint, ...]
    model: Dict[str, int]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SymbolicFinding({self.observation!r} with "
                f"{self.model})")


class SymbolicRunner:
    """Replays directive schedules with symbolic inputs.

    ``on_overflow`` selects what happens when the ``max_worlds`` cap
    bites: ``"raise"`` (the historical behaviour) aborts with
    :class:`ReproError`; ``"truncate"`` drops the excess worlds and
    records the fact in :attr:`stats` so callers can surface partial
    coverage instead of crashing.
    """

    def __init__(self, program: Program, max_worlds: int = 256,
                 on_overflow: str = "raise", strategy: str = "dfs",
                 seed: int = 0):
        if on_overflow not in ("raise", "truncate"):
            raise ValueError(f"unknown on_overflow {on_overflow!r}")
        self.program = program
        self.max_worlds = max_worlds
        self.on_overflow = on_overflow
        #: Tree-walk order for :meth:`run_tree` (the shared frontier
        #: core); results are keyed by enumeration index, so any
        #: strategy yields the same mapping unless the max_worlds cap
        #: bites (which worlds are dropped is visit-order dependent).
        self.strategy = strategy
        self.seed = seed
        self.stats = ReplayStats()

    # -- linear replay of one schedule --------------------------------------

    def run(self, config: Config, schedule: Schedule) -> List[World]:
        """All satisfiable worlds after replaying ``schedule``.

        Worlds where the schedule gets stuck early are kept (marked
        ``stuck``) — under Definition 3.1 those pairs are vacuous, but
        their partial traces matter for flagging.
        """
        worlds = [World(config, SymbolicEvaluator(), [], [])]
        done: List[World] = []
        while worlds:
            world = worlds.pop()
            if world.consumed >= len(schedule) or world.stuck:
                done.append(world)
                continue
            directive = schedule[world.consumed]
            machine = Machine(self.program, evaluator=world.evaluator)
            self.stats.steps += 1
            try:
                nxt, leak = machine.step(world.config, directive)
            except Fork as fork:
                for truthy in (True, False):
                    branch = self._decide(world, fork.expr, truthy)
                    if branch is not None:
                        worlds.append(branch)
                        if len(worlds) + len(done) > self.max_worlds and \
                                not self._overflow():
                            worlds.pop()
                continue
            except NeedConcretization as need:
                split = self._concretize(world, need.expr)
                for branch in split:
                    worlds.append(branch)
                    if len(worlds) + len(done) > self.max_worlds and \
                            not self._overflow():
                        worlds.pop()
                continue
            except StuckError:
                world.stuck = True
                done.append(world)
                continue
            world.config = nxt
            world.trace.extend(leak)
            world.consumed += 1
            worlds.append(world)
        return done

    def _overflow(self) -> bool:
        """Handle a max_worlds overflow; True keeps the new world."""
        if self.on_overflow == "raise":
            raise ReproError("too many symbolic worlds")
        self.stats.truncated = True
        return False

    def _decide(self, world: World, expr: SymExpr,
                truthy: bool) -> Optional[World]:
        for ev, constraints in self._decisions(world.evaluator,
                                               world.constraints, expr,
                                               (truthy,)):
            return World(world.config, ev, list(constraints),
                         list(world.trace), world.consumed, world.stuck)
        return None

    def _decisions(self, evaluator: SymbolicEvaluator,
                   constraints: Sequence[Constraint], expr: SymExpr,
                   arms: Sequence[bool] = (True, False)):
        """Shared branch-splitting arms: (evaluator', constraints') per
        satisfiable decision, used by both replay strategies."""
        for truthy in arms:
            extended = tuple(constraints) + (Constraint(expr, truthy),)
            self.stats.solver_calls += 1
            if solve(list(extended)) is None:
                continue
            ev = evaluator.clone()
            ev.decisions[expr] = truthy
            self.stats.worlds += 1
            yield ev, extended

    def _concretize(self, world: World, expr: SymExpr) -> List[World]:
        """angr-style address concretization.

        angr's default strategy commits a symbolic address to its
        *maximum* satisfiable value — which is what surfaces
        out-of-bounds accesses.  We fork one world per extreme value
        (max and, when different, min) and pin the address there.
        """
        out: List[World] = []
        for value, ev, constraints in self._concretizations(
                world.evaluator, world.constraints, world.config, expr):
            out.append(World(world.config, ev, list(constraints),
                             list(world.trace), world.consumed,
                             world.stuck))
        return out

    def _concretizations(self, evaluator: SymbolicEvaluator,
                         constraints: Sequence[Constraint], config: Config,
                         expr: SymExpr):
        """Shared concretization arms: (value, evaluator', constraints')."""
        self.stats.solver_calls += 1
        values = feasible_values(expr, list(constraints))
        picks: List[int] = []
        if values:
            picks = [min(values), max(values)]
            # Strategy refinement over plain angr min/max: if feasible
            # values land in memory the policy marks secret, try those
            # too — the tool knows the secrecy layout (§4.2.1: inputs
            # are annotated), so aiming reads at annotated ranges is the
            # natural concretization for leak-finding.
            mem = config.mem
            secret_hits = [v for v in values
                           if mem.is_mapped(v) and not mem.read(v).is_public()]
            picks += secret_hits[:4]
        picks = sorted(set(picks))
        for value in picks:
            ev = evaluator.clone()
            ev.concretizations[expr] = value
            eq = App("eq", (expr, value))
            self.stats.worlds += 1
            yield value, ev, tuple(constraints) + (Constraint(eq, True),)

    # -- prefix-shared replay of a whole schedule family ---------------------

    def run_tree(self, config: Config,
                 tree: ScheduleTree) -> List[Tuple[int, List[World]]]:
        """Replay every schedule in ``tree``, sharing prefixes.

        Returns ``(schedule_index, worlds)`` per enumerated schedule,
        in enumeration order — as long as the ``max_worlds`` cap never
        bites, the worlds are exactly what :meth:`run` would return
        for ``tree.schedules[index]``, but each distinct prefix is
        executed once and shared by all schedules below it instead of
        being re-run per schedule.  When the cap does bite, the walk
        keeps the earliest-created worlds at that node (the linear
        replay instead drops the newest per schedule), the loss is
        shared by every schedule beneath the node, and
        ``stats.truncated`` records it.
        """
        results: Dict[int, List[World]] = {}
        root = [_TreeWorld(config, SymbolicEvaluator(), (), EMPTY_LOG,
                           0, False)]
        # The shared search core: (node, parent worlds) items on the
        # configured frontier; advancing through the node's edge
        # happens at visit time so sibling subtrees share the parent's
        # (immutable) world list.  Results are keyed by enumeration
        # index, so every strategy returns the same mapping as long as
        # the max_worlds cap never bites.
        frontier = make_frontier(self.strategy, seed=self.seed)
        frontier.push((tree.root, root))
        while frontier:
            node, worlds = frontier.pop()
            if node.directive is not None:
                worlds = self._advance_all(worlds, node.directive,
                                           node.leaves)
            for index in node.leaf_indices:
                results[index] = [w.to_world() for w in worlds]
            frontier.extend((child, worlds) for child
                            in reversed(list(node.children.values())))
        return sorted(results.items())

    def _advance_all(self, worlds: List[_TreeWorld], directive,
                     leaves: int) -> List[_TreeWorld]:
        out: List[_TreeWorld] = []
        for world in worlds:
            out.extend(self._advance(world, directive, leaves))
            if len(out) > self.max_worlds:
                self._overflow()
                out = out[:self.max_worlds]
        return out

    def _advance(self, world: _TreeWorld, directive,
                 leaves: int) -> List[_TreeWorld]:
        """One directive for one world; may split, stick, or die.

        ``leaves`` is the number of schedules sharing this step — every
        execution here stands in for that many naive from-scratch
        replays, which is what the ``reused`` counter records.
        """
        if world.stuck:
            # A stuck world is carried to every schedule below at zero
            # cost (the naive replay re-ran it to the stuck point each
            # time).
            self.stats.reused += leaves - 1 if leaves > 1 else 0
            return [world]
        pending = [world]
        out: List[_TreeWorld] = []
        while pending:
            w = pending.pop()
            machine = Machine(self.program, evaluator=w.evaluator)
            self.stats.steps += 1
            self.stats.reused += leaves - 1
            try:
                nxt, leak = machine.step(w.config, directive)
            except Fork as fork:
                for ev, constraints in self._decisions(
                        w.evaluator, w.constraints, fork.expr):
                    pending.append(w._replace(evaluator=ev,
                                              constraints=constraints))
                continue
            except NeedConcretization as need:
                for _value, ev, constraints in self._concretizations(
                        w.evaluator, w.constraints, w.config, need.expr):
                    pending.append(w._replace(evaluator=ev,
                                              constraints=constraints))
                continue
            except StuckError:
                out.append(w._replace(stuck=True))
                continue
            out.append(_TreeWorld(nxt, w.evaluator, w.constraints,
                                  w.trace.extend(leak), w.consumed + 1,
                                  False))
        return out


# ---------------------------------------------------------------------------
# The combined pipeline
# ---------------------------------------------------------------------------

def representative_config(config: Config) -> Config:
    """Replace every symbolic payload by its first domain element (the
    concrete run used to enumerate schedules)."""
    regs = {}
    for r, v in config.regs.items():
        if isinstance(v.val, Sym):
            regs[r] = Value(v.val.domain[0], v.label)
        else:
            regs[r] = v
    mem = config.mem
    for addr in list(mem.addresses()):
        v = mem.read(addr)
        if isinstance(v.val, Sym):
            mem = mem.write(addr, Value(v.val.domain[0], v.label))
    return config.with_(regs=regs, mem=mem)


def _config_is_concrete(config: Config) -> bool:
    """No symbolic payload anywhere: replay degenerates to harvesting."""
    if any(not _is_concrete(v) for v in config.regs.values()):
        return False
    return all(isinstance(v.val, int) for v in config.mem.cells().values())


@dataclass
class SymbolicResult:
    """Everything :func:`analyze_symbolic_result` produced."""

    findings: List[SymbolicFinding]
    schedules: int                 #: tool schedules enumerated
    truncated: bool                #: any cap cut coverage
    replay: ReplayStats
    enumeration: Optional[EngineStats] = None

    @property
    def secure(self) -> bool:
        return not self.findings

    @property
    def states_stepped(self) -> int:
        """Machine steps the whole pipeline actually evaluated."""
        enum = self.enumeration.steps if self.enumeration else 0
        return enum + self.replay.steps

    @property
    def states_reused(self) -> int:
        """Steps avoided through prefix sharing, harvesting and the
        engine's trial-step cache."""
        enum = self.enumeration.avoided if self.enumeration else 0
        return enum + self.replay.reused


def analyze_symbolic_result(program: Program, config: Config,
                            bound: int = 16, fwd_hazards: bool = False,
                            max_schedules: int = 512,
                            max_worlds: int = 256,
                            strategy: str = "dfs",
                            seed: int = 0,
                            prune: str = "sleepset") -> SymbolicResult:
    """Pitchfork with its symbolic back end, with full accounting.

    Enumerates tool schedules on a concrete representative — keeping
    their DFS fork structure — then replays the schedule *tree*
    symbolically: every shared prefix executes once.  Fully concrete
    configurations skip the replay entirely and harvest the explorer's
    recorded traces (sound by determinism, Theorem B.1).  Returns every
    secret-labelled observation together with a solved attacker-input
    model, plus truncation flags and step/reuse counters.
    """
    rep = representative_config(config)
    machine = Machine(program)
    tree = enumerate_schedule_tree(machine, rep, bound=bound,
                                   fwd_hazards=fwd_hazards,
                                   max_paths=max_schedules,
                                   assume_unknown_branches=True,
                                   strategy=strategy, seed=seed,
                                   prune=prune)
    findings: List[SymbolicFinding] = []
    if _config_is_concrete(config):
        stats = ReplayStats()
        for path in tree.payloads:
            # The recorded path is the replay: same configuration, same
            # schedule, deterministic machine.
            stats.reused += len(path.schedule)
            for obs in secret_observations(path.trace):
                findings.append(SymbolicFinding(obs, path.schedule, (), {}))
        return SymbolicResult(findings, len(tree), tree.truncated, stats,
                              tree.engine_stats)
    runner = SymbolicRunner(program, max_worlds=max_worlds,
                            on_overflow="truncate",
                            strategy=strategy, seed=seed)
    for index, worlds in runner.run_tree(config, tree):
        schedule = tree.schedules[index]
        for world in worlds:
            leaks = secret_observations(tuple(world.trace))
            if not leaks:
                continue
            model = world.model()
            if model is None:
                continue
            for obs in leaks:
                findings.append(SymbolicFinding(
                    obs, schedule, tuple(world.constraints), model))
    return SymbolicResult(findings, len(tree),
                          tree.truncated or runner.stats.truncated,
                          runner.stats, tree.engine_stats)


def analyze_symbolic(program: Program, config: Config,
                     bound: int = 16, fwd_hazards: bool = False,
                     max_schedules: int = 512,
                     max_worlds: int = 256) -> List[SymbolicFinding]:
    """Pitchfork with its symbolic back end (findings only).

    See :func:`analyze_symbolic_result` for the full result with
    truncation flags and step/reuse accounting.  Because this
    back-compat shape cannot carry the ``truncated`` flag, capped
    coverage is reported as a :class:`RuntimeWarning` — an empty
    findings list from a truncated run must not read as "secure".
    """
    result = analyze_symbolic_result(
        program, config, bound=bound, fwd_hazards=fwd_hazards,
        max_schedules=max_schedules, max_worlds=max_worlds)
    if result.truncated:
        import warnings
        warnings.warn(
            "symbolic exploration truncated (max_schedules/max_worlds or "
            "a per-path budget); findings cover only part of the "
            "schedule space — use analyze_symbolic_result() for the "
            "truncation flag", RuntimeWarning, stacklevel=2)
    return result.findings
