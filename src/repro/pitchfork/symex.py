"""Symbolic execution under attacker schedules (the angr half of §4.2).

The original Pitchfork "uses angr to symbolically execute a given
program according to each of its worst-case schedules".  This module is
that second half, self-contained:

* :class:`Sym` — a symbolic input over a finite domain (attacker-
  controlled indices, unknown lengths, …);
* symbolic expressions are opcode trees (:class:`App`) carried as value
  *payloads*; the machine is untouched — labels ride along exactly as in
  the concrete semantics;
* :class:`SymbolicEvaluator` plugs into :class:`repro.core.Machine`.
  Branch conditions over symbols raise :class:`Fork`; symbolic memory
  addresses are concretized against a model, mirroring angr's address
  concretization (§4.2: "angr concretizes addresses for memory
  operations instead of keeping them symbolic");
* :class:`SymbolicRunner` replays one directive schedule, splitting into
  *worlds* (path constraints) at forks and pruning unsatisfiable ones;
* :func:`analyze_symbolic` combines both halves: enumerate the tool
  schedules DT(bound) on a concrete representative, then symbolically
  replay each schedule, flag secret-labelled observations in any
  satisfiable world, and *solve* for an attacker input that triggers
  them.

Satisfiability is decided by bounded enumeration over the (finite,
small) symbol domains — honest and exact for the gadget-sized programs
this reproduction targets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.config import Config
from ..core.directives import Schedule
from ..core.errors import ReproError, StuckError
from ..core.isa import Evaluator, OPCODES, sum_addr
from ..core.lattice import Label
from ..core.machine import Machine
from ..core.observations import Observation, Trace, secret_observations
from ..core.program import Program
from ..core.values import Value, join_labels
from .schedules import enumerate_schedules


# ---------------------------------------------------------------------------
# Symbolic expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Sym:
    """A symbolic input variable over a finite domain."""

    name: str
    domain: Tuple[int, ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"${self.name}"


@dataclass(frozen=True)
class App:
    """An opcode applied to symbolic/concrete arguments."""

    op: str
    args: Tuple["SymExpr", ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.op}({', '.join(map(repr, self.args))})"


SymExpr = Union[int, Sym, App]


def symbols_of(expr: SymExpr) -> Tuple[Sym, ...]:
    """All symbols occurring in an expression."""
    if isinstance(expr, Sym):
        return (expr,)
    if isinstance(expr, App):
        out: List[Sym] = []
        for a in expr.args:
            for s in symbols_of(a):
                if s not in out:
                    out.append(s)
        return tuple(out)
    return ()


def eval_expr(expr: SymExpr, model: Dict[str, int]) -> int:
    """Evaluate an expression under a model (symbol assignment)."""
    if isinstance(expr, int):
        return expr
    if isinstance(expr, Sym):
        return model[expr.name]
    arity, fn = OPCODES[expr.op]
    args = [eval_expr(a, model) for a in expr.args]
    return fn(*args)


# ---------------------------------------------------------------------------
# Path constraints and bounded solving
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Constraint:
    """``expr != 0`` (when truthy) or ``expr == 0``."""

    expr: SymExpr
    truthy: bool

    def holds(self, model: Dict[str, int]) -> bool:
        value = eval_expr(self.expr, model)
        return bool(value) == self.truthy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rel = "!= 0" if self.truthy else "== 0"
        return f"{self.expr!r} {rel}"


MAX_MODELS = 65536


def solve(constraints: Sequence[Constraint],
          extra_symbols: Iterable[Sym] = ()) -> Optional[Dict[str, int]]:
    """A model satisfying all constraints, or None.

    Bounded exhaustive search over the product of the symbol domains;
    raises :class:`ReproError` if the space exceeds ``MAX_MODELS``.
    """
    symbols: List[Sym] = list(extra_symbols)
    for c in constraints:
        for s in symbols_of(c.expr):
            if s not in symbols:
                symbols.append(s)
    if not symbols:
        return {} if all(c.holds({}) for c in constraints) else None
    space = 1
    for s in symbols:
        space *= len(s.domain)
    if space > MAX_MODELS:
        raise ReproError(f"symbolic domain too large ({space} models)")
    for combo in itertools.product(*(s.domain for s in symbols)):
        model = {s.name: v for s, v in zip(symbols, combo)}
        if all(c.holds(model) for c in constraints):
            return model
    return None


def feasible_values(expr: SymExpr,
                    constraints: Sequence[Constraint]) -> List[int]:
    """All values ``expr`` can take under the constraints (bounded)."""
    symbols: List[Sym] = list(symbols_of(expr))
    for c in constraints:
        for s in symbols_of(c.expr):
            if s not in symbols:
                symbols.append(s)
    if not symbols:
        return [eval_expr(expr, {})]
    space = 1
    for s in symbols:
        space *= len(s.domain)
    if space > MAX_MODELS:
        raise ReproError(f"symbolic domain too large ({space} models)")
    values = set()
    for combo in itertools.product(*(s.domain for s in symbols)):
        model = {s.name: v for s, v in zip(symbols, combo)}
        if all(c.holds(model) for c in constraints):
            values.add(eval_expr(expr, model))
    return sorted(values)


# ---------------------------------------------------------------------------
# The pluggable evaluator
# ---------------------------------------------------------------------------

class Fork(ReproError):
    """A branch condition (or comparison) needs a decision."""

    def __init__(self, expr: SymExpr):
        super().__init__(f"fork on {expr!r}")
        self.expr = expr


class NeedConcretization(ReproError):
    """A symbolic value is used as a concrete address / jump target."""

    def __init__(self, expr: SymExpr):
        super().__init__(f"concretization needed for {expr!r}")
        self.expr = expr


def _is_concrete(value: Value) -> bool:
    return isinstance(value.val, int)


class SymbolicEvaluator(Evaluator):
    """Evaluator over int-or-:data:`SymExpr` payloads.

    Carries the *world state*: branch decisions already taken and
    address concretizations already committed.  The machine calls back
    in; undecided questions surface as :class:`Fork` /
    :class:`NeedConcretization`, which :class:`SymbolicRunner` resolves
    by splitting or solving, then retries the (pure) step.
    """

    def __init__(self,
                 decisions: Optional[Dict[SymExpr, bool]] = None,
                 concretizations: Optional[Dict[SymExpr, int]] = None):
        self.decisions: Dict[SymExpr, bool] = dict(decisions or {})
        self.concretizations: Dict[SymExpr, int] = dict(concretizations or {})

    def clone(self) -> "SymbolicEvaluator":
        return SymbolicEvaluator(self.decisions, self.concretizations)

    # -- Evaluator interface -------------------------------------------------

    def evaluate(self, opcode: str, vals: Sequence[Value]) -> Value:
        if opcode not in OPCODES:
            raise ReproError(f"unknown opcode {opcode!r}")
        label = join_labels(vals)
        if all(_is_concrete(v) for v in vals):
            _arity, fn = OPCODES[opcode]
            return Value(fn(*(v.val for v in vals)), label)
        return Value(App(opcode, tuple(v.val for v in vals)), label)

    def address(self, vals: Sequence[Value]) -> Value:
        label = join_labels(vals)
        if all(_is_concrete(v) for v in vals):
            return Value(sum_addr([v.val for v in vals]), label)
        return Value(App("add", tuple(v.val for v in vals)), label)

    def truth(self, value: Value) -> bool:
        if _is_concrete(value):
            return bool(value.val)
        if value.val in self.decisions:
            return self.decisions[value.val]
        raise Fork(value.val)

    def concretize(self, value: Value) -> int:
        if _is_concrete(value):
            return value.val
        if value.val in self.concretizations:
            return self.concretizations[value.val]
        raise NeedConcretization(value.val)


# ---------------------------------------------------------------------------
# Symbolic replay of one schedule
# ---------------------------------------------------------------------------

@dataclass
class World:
    """One satisfiable path through a schedule."""

    config: Config
    evaluator: SymbolicEvaluator
    constraints: List[Constraint]
    trace: List[Observation]
    consumed: int = 0           #: directives executed so far
    stuck: bool = False         #: schedule became ill-formed here

    def model(self) -> Optional[Dict[str, int]]:
        return solve(self.constraints)


@dataclass(frozen=True)
class SymbolicFinding:
    """A secret observation plus an input model that reaches it."""

    observation: Observation
    schedule: Schedule
    constraints: Tuple[Constraint, ...]
    model: Dict[str, int]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SymbolicFinding({self.observation!r} with "
                f"{self.model})")


class SymbolicRunner:
    """Replays directive schedules with symbolic inputs."""

    def __init__(self, program: Program, max_worlds: int = 256):
        self.program = program
        self.max_worlds = max_worlds

    def run(self, config: Config, schedule: Schedule) -> List[World]:
        """All satisfiable worlds after replaying ``schedule``.

        Worlds where the schedule gets stuck early are kept (marked
        ``stuck``) — under Definition 3.1 those pairs are vacuous, but
        their partial traces matter for flagging.
        """
        worlds = [World(config, SymbolicEvaluator(), [], [])]
        done: List[World] = []
        while worlds:
            world = worlds.pop()
            if world.consumed >= len(schedule) or world.stuck:
                done.append(world)
                continue
            directive = schedule[world.consumed]
            machine = Machine(self.program, evaluator=world.evaluator)
            try:
                nxt, leak = machine.step(world.config, directive)
            except Fork as fork:
                for truthy in (True, False):
                    branch = self._decide(world, fork.expr, truthy)
                    if branch is not None:
                        worlds.append(branch)
                        if len(worlds) + len(done) > self.max_worlds:
                            raise ReproError("too many symbolic worlds")
                continue
            except NeedConcretization as need:
                worlds.extend(self._concretize(world, need.expr))
                if len(worlds) + len(done) > self.max_worlds:
                    raise ReproError("too many symbolic worlds")
                continue
            except StuckError:
                world.stuck = True
                done.append(world)
                continue
            world.config = nxt
            world.trace.extend(leak)
            world.consumed += 1
            worlds.append(world)
        return done

    def _decide(self, world: World, expr: SymExpr,
                truthy: bool) -> Optional[World]:
        constraints = world.constraints + [Constraint(expr, truthy)]
        if solve(constraints) is None:
            return None
        ev = world.evaluator.clone()
        ev.decisions[expr] = truthy
        return World(world.config, ev, constraints, list(world.trace),
                     world.consumed, world.stuck)

    def _concretize(self, world: World, expr: SymExpr) -> List[World]:
        """angr-style address concretization.

        angr's default strategy commits a symbolic address to its
        *maximum* satisfiable value — which is what surfaces
        out-of-bounds accesses.  We fork one world per extreme value
        (max and, when different, min) and pin the address there.
        """
        values = feasible_values(expr, world.constraints)
        picks: List[int] = []
        if values:
            picks = [min(values), max(values)]
            # Strategy refinement over plain angr min/max: if feasible
            # values land in memory the policy marks secret, try those
            # too — the tool knows the secrecy layout (§4.2.1: inputs
            # are annotated), so aiming reads at annotated ranges is the
            # natural concretization for leak-finding.
            mem = world.config.mem
            secret_hits = [v for v in values
                           if mem.is_mapped(v) and not mem.read(v).is_public()]
            picks += secret_hits[:4]
        picks = sorted(set(picks))
        out: List[World] = []
        for value in picks:
            ev = world.evaluator.clone()
            ev.concretizations[expr] = value
            eq = App("eq", (expr, value))
            out.append(World(world.config, ev,
                             world.constraints + [Constraint(eq, True)],
                             list(world.trace), world.consumed,
                             world.stuck))
        return out


# ---------------------------------------------------------------------------
# The combined pipeline
# ---------------------------------------------------------------------------

def representative_config(config: Config) -> Config:
    """Replace every symbolic payload by its first domain element (the
    concrete run used to enumerate schedules)."""
    regs = {}
    for r, v in config.regs.items():
        if isinstance(v.val, Sym):
            regs[r] = Value(v.val.domain[0], v.label)
        else:
            regs[r] = v
    mem = config.mem
    for addr in list(mem.addresses()):
        v = mem.read(addr)
        if isinstance(v.val, Sym):
            mem = mem.write(addr, Value(v.val.domain[0], v.label))
    return config.with_(regs=regs, mem=mem)


def analyze_symbolic(program: Program, config: Config,
                     bound: int = 16, fwd_hazards: bool = False,
                     max_schedules: int = 512,
                     max_worlds: int = 256) -> List[SymbolicFinding]:
    """Pitchfork with its symbolic back end.

    Enumerates tool schedules on a concrete representative, then replays
    each schedule symbolically, returning every secret-labelled
    observation together with a solved attacker-input model.
    """
    rep = representative_config(config)
    machine = Machine(program)
    schedules = enumerate_schedules(machine, rep, bound=bound,
                                    fwd_hazards=fwd_hazards,
                                    max_paths=max_schedules,
                                    assume_unknown_branches=True)
    runner = SymbolicRunner(program, max_worlds=max_worlds)
    findings: List[SymbolicFinding] = []
    for schedule in schedules:
        for world in runner.run(config, schedule):
            leaks = secret_observations(tuple(world.trace))
            if not leaks:
                continue
            model = world.model()
            if model is None:
                continue
            for obs in leaks:
                findings.append(SymbolicFinding(
                    obs, schedule, tuple(world.constraints), model))
    return findings
