"""Pitchfork — the SCT violation detector of Section 4.

The tool generates worst-case attacker schedules (Definition B.18,
proved sound by Theorem B.20) and executes the program under each,
flagging secret-labelled observations.
"""

from .detector import (AnalysisReport, PAPER_BOUND_FWD, PAPER_BOUND_NO_FWD,
                       analyze, analyze_two_phase)
from .explorer import (ExplorationOptions, ExplorationResult, Explorer,
                       PathResult, ShardStats, Violation)
from .reports import (format_report, format_violation, observation_set,
                      violation_key, violation_set)
from .schedules import (ScheduleStats, enumerate_schedule_tree,
                        enumerate_schedules, schedule_stats)
from .sharding import ShardedExplorer
from .symex import (App, Constraint, ReplayStats, Sym, SymbolicEvaluator,
                    SymbolicFinding, SymbolicResult, SymbolicRunner,
                    analyze_symbolic, analyze_symbolic_result, eval_expr,
                    feasible_values, solve, symbols_of)

__all__ = [
    "AnalysisReport", "PAPER_BOUND_FWD", "PAPER_BOUND_NO_FWD", "analyze",
    "analyze_two_phase", "ExplorationOptions", "ExplorationResult",
    "Explorer", "PathResult", "ShardStats", "ShardedExplorer", "Violation",
    "format_report", "format_violation", "ScheduleStats",
    "enumerate_schedule_tree",
    "enumerate_schedules", "schedule_stats", "App", "Constraint",
    "ReplayStats", "Sym", "SymbolicEvaluator", "SymbolicFinding",
    "SymbolicResult", "SymbolicRunner", "analyze_symbolic",
    "analyze_symbolic_result", "eval_expr", "feasible_values",
    "observation_set", "solve", "symbols_of", "violation_key",
    "violation_set",
]
