"""The Pitchfork detector front end (Section 4.2).

``analyze`` runs one exploration; ``analyze_two_phase`` reproduces the
paper's evaluation procedure exactly (§4.2.1):

1. run *without* forwarding-hazard detection (Spectre v1/v1.1 only) at a
   large speculation bound (paper: 250);
2. only if that is clean, re-run *with* forwarding-hazard detection
   (Spectre v4) at a reduced bound (paper: 20) to keep the analysis
   tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Tuple

from ..core.config import Config
from ..core.isa import Evaluator
from ..core.machine import Machine
from ..core.program import Program
from ..engine import PruningStats, SubsumptionStats
from ..engine.mcts import DEFAULT_EXPLORATION, DEFAULT_PLAYOUT_DEPTH
from .explorer import (AnytimeStats, ExplorationOptions, ExplorationResult,
                       Explorer, ShardStats, Violation)

#: The speculation bounds used in the paper's evaluation.
PAPER_BOUND_NO_FWD = 250
PAPER_BOUND_FWD = 20


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of a Pitchfork analysis of one binary/configuration."""

    name: str
    secure: bool
    violations: Tuple[Violation, ...]
    paths_explored: int
    #: Schedule steps actually executed (each shared DFS prefix counts
    #: once).  Disjoint from ``states_reused``; their sum is what
    #: fork-by-copy re-execution would have cost.  Every analysis
    #: reports this pair with the same meaning.
    states_stepped: int
    truncated: bool
    phase: str                  #: "v1/v1.1", "v4", or "combined"
    bound: int
    #: Steps served from shared prefixes / the engine's step cache
    #: instead of being re-executed (0 for legacy producers).
    states_reused: int = 0
    #: Per-shard accounting for sharded explorations (empty otherwise).
    shards: Tuple[ShardStats, ...] = ()
    #: Partial-order-reduction accounting (None for legacy producers):
    #: the pruning level, Mazurkiewicz-class representatives explored,
    #: and pruned subtree roots.  See :mod:`repro.engine.por`.
    pruning: Optional[PruningStats] = None
    #: Redundant-state-subsumption accounting (None for legacy
    #: producers): whether the SeenStates table was on, states recorded,
    #: fork arms pruned.  See :mod:`repro.engine.subsume`.
    subsumption: Optional[SubsumptionStats] = None
    #: Anytime coverage accounting; present iff a wall-clock budget was
    #: set.  A budget-truncated run reports ``truncated=True`` (never
    #: clean coverage).  See :class:`~repro.pitchfork.explorer.AnytimeStats`.
    anytime: Optional[AnytimeStats] = None
    #: Deterministic time-to-first-violation: ``{"pops", "steps",
    #: "wall_time"}`` when the run found a violation (pops and machine
    #: steps are strategy-comparable without external timing), None on
    #: clean runs and for legacy producers.
    first_violation: Optional[Mapping] = None
    #: Search telemetry (``{"heatmap", "fork_levels", "pops",
    #: "wall_time"}``, see :mod:`repro.obs.telemetry`); present iff the
    #: run was asked for it (``telemetry=True``), None otherwise.
    telemetry: Optional[Mapping] = None

    def __bool__(self) -> bool:
        return self.secure


def analyze(program: Program, config: Config,
            bound: int = PAPER_BOUND_FWD,
            fwd_hazards: bool = True,
            name: str = "<program>",
            stop_at_first: bool = True,
            evaluator: Optional[Evaluator] = None,
            explore_aliasing: bool = False,
            jmpi_targets: Sequence[int] = (),
            rsb_targets: Sequence[int] = (),
            max_paths: int = 20_000,
            max_steps: int = 40_000,
            rsb_policy: str = "directive",
            strategy: str = "dfs",
            shards: int = 1,
            seed: int = 0,
            prune: str = "sleepset",
            subsume: bool = False,
            budget_seconds: Optional[float] = None,
            mcts_c: float = DEFAULT_EXPLORATION,
            mcts_playout: int = DEFAULT_PLAYOUT_DEPTH,
            telemetry: bool = False,
            clock: Optional[Callable[[], float]] = None) -> AnalysisReport:
    """One Pitchfork run: explore DT(bound), flag secret observations.

    ``strategy`` selects the frontier's search order (see
    :mod:`repro.engine.frontier`); ``shards > 1`` partitions DT(bound)
    into subtree jobs executed on a process pool (see
    :mod:`repro.pitchfork.sharding`) — both leave the flagged violation
    set unchanged (Theorem B.20 quantifies over the schedule set, which
    neither reordering nor partitioning alters).  Sharding needs to
    rebuild the machine in worker processes, so a custom ``evaluator``
    forces the single-process path.  ``prune`` selects the
    partial-order-reduction level (:mod:`repro.engine.por`):
    ``none``/``sleepset``/``full``, all flagging the same violation
    observations.  ``subsume`` prunes fork arms whose state was already
    explored with the same or weaker residual obligations
    (:mod:`repro.engine.subsume`) — same observation set, far fewer
    machine steps on re-convergent (loop-heavy) programs; under
    sharding each shard keeps its own table and the counters merge.
    ``budget_seconds`` runs in anytime mode: exploration stops at the
    wall-clock deadline, the report is marked truncated (never clean),
    and ``report.anytime`` carries honest coverage stats.  ``mcts_c``
    and ``mcts_playout`` tune ``strategy="mcts"``
    (:mod:`repro.engine.mcts`).  ``telemetry`` records the search's
    per-fetch-PC heatmap and fork-level schedule histogram onto the
    report (:mod:`repro.obs.telemetry`) — pure observation, the
    explored schedule set is unchanged.  ``clock`` injects a monotonic
    clock for deterministic anytime tests (parent process only; shard
    workers keep the real clock).
    """
    machine = Machine(program, evaluator=evaluator, rsb_policy=rsb_policy)
    options = ExplorationOptions(bound=bound, fwd_hazards=fwd_hazards,
                                 explore_aliasing=explore_aliasing,
                                 jmpi_targets=tuple(jmpi_targets),
                                 rsb_targets=tuple(rsb_targets),
                                 max_paths=max_paths,
                                 max_steps=max_steps,
                                 strategy=strategy,
                                 seed=seed,
                                 prune=prune,
                                 subsume=subsume,
                                 budget_seconds=budget_seconds,
                                 mcts_c=mcts_c,
                                 mcts_playout=mcts_playout,
                                 telemetry=telemetry)
    if shards > 1 and evaluator is None:
        from .sharding import ShardedExplorer
        result = ShardedExplorer(machine, options, shards=shards,
                                 keep_paths=False, clock=clock).explore(
                                     config, stop_at_first=stop_at_first)
    else:
        result = Explorer(machine, options, clock=clock).explore(
            config, stop_at_first=stop_at_first)
    phase = "v4" if fwd_hazards else "v1/v1.1"
    truncated = result.truncated or result.exhausted_paths > 0
    engine = result.engine
    first_violation = None
    if engine is not None and engine.first_violation_steps is not None:
        first_violation = {"pops": engine.first_violation_pops,
                           "steps": engine.first_violation_steps,
                           "wall_time": engine.first_violation_wall}
    return AnalysisReport(name, result.secure, tuple(result.violations),
                          result.paths_explored, result.applied_steps,
                          truncated, phase, bound,
                          states_reused=result.states_reused,
                          shards=result.shards,
                          pruning=result.pruning,
                          subsumption=result.subsumption,
                          anytime=result.anytime,
                          first_violation=first_violation,
                          telemetry=result.telemetry)


def analyze_two_phase(program: Program, config: Config,
                      name: str = "<program>",
                      bound_no_fwd: int = PAPER_BOUND_NO_FWD,
                      bound_fwd: int = PAPER_BOUND_FWD,
                      max_paths: int = 20_000) -> AnalysisReport:
    """The paper's two-phase procedure (§4.2.1).

    Phase 1 looks for v1/v1.1 violations without forwarding hazards at
    ``bound_no_fwd``; if (and only if) it is clean, phase 2 re-enables
    forwarding-hazard detection at the reduced ``bound_fwd``.
    """
    first = analyze(program, config, bound=bound_no_fwd, fwd_hazards=False,
                    name=name, max_paths=max_paths)
    if not first.secure:
        return first
    second = analyze(program, config, bound=bound_fwd, fwd_hazards=True,
                     name=name, max_paths=max_paths)
    return second
