"""Explicit access to the tool-schedule family DT(n) (Definition B.18).

The explorer enumerates DT(n) implicitly.  This module materialises the
schedules — useful for the path-explosion measurements of §4.2 ("we were
able to support speculation bounds of up to 20 instructions … 250 when we
disabled checking for store-forwarding hazards") and for feeding the SCT
checker (Definition 3.1 quantifies over schedules; Theorem B.20 says
DT(n) suffices).

Two shapes are offered: :func:`enumerate_schedules` flattens DT(bound)
into a list, while :func:`enumerate_schedule_tree` preserves the DFS
fork structure as a :class:`repro.engine.ScheduleTree` — each node is a
shared schedule prefix, each leaf carries the explorer's recorded
:class:`~repro.pitchfork.explorer.PathResult`.  Consumers that replay
schedules (the symbolic back end) walk the tree and resume from the
deepest shared prefix instead of re-running every schedule from step 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..core.config import Config
from ..core.directives import Schedule
from ..core.machine import Machine
from ..engine import ScheduleTree
from ..engine.mcts import DEFAULT_EXPLORATION, DEFAULT_PLAYOUT_DEPTH
from .explorer import ExplorationOptions, Explorer


@dataclass(frozen=True)
class ScheduleStats:
    """Counts from materialising DT(bound) for one program."""

    bound: int
    fwd_hazards: bool
    schedules: int
    total_steps: int
    truncated: bool


def enumerate_schedules(machine: Machine, config: Config,
                        bound: int, fwd_hazards: bool = True,
                        max_paths: int = 20_000,
                        assume_unknown_branches: bool = False,
                        strategy: str = "dfs", seed: int = 0,
                        prune: str = "sleepset",
                        subsume: bool = False,
                        mcts_c: float = DEFAULT_EXPLORATION,
                        mcts_playout: int = DEFAULT_PLAYOUT_DEPTH) -> List[Schedule]:
    """All complete tool schedules for ``config`` at this bound.

    ``strategy``/``seed`` select the frontier's enumeration order (the
    schedule *set* is order-invariant); ``prune`` the partial-order-
    reduction level (one representative per Mazurkiewicz class at
    ``"full"`` — see :mod:`repro.engine.por`).  ``subsume`` additionally
    drops schedules continuing from already-covered states
    (:mod:`repro.engine.subsume`) — the *materialised* set shrinks, so
    leave it off when the schedules themselves are the product (e.g.
    feeding symbolic replay, where concrete-state identity is not
    state identity).  ``mcts_c``/``mcts_playout`` tune
    ``strategy="mcts"`` and are ignored otherwise.  Anytime budgets are
    deliberately not offered here: a materialised schedule set cut at a
    wall-clock deadline is not DT(bound)."""
    options = ExplorationOptions(bound=bound, fwd_hazards=fwd_hazards,
                                 max_paths=max_paths,
                                 assume_unknown_branches=assume_unknown_branches,
                                 strategy=strategy, seed=seed, prune=prune,
                                 subsume=subsume,
                                 mcts_c=mcts_c, mcts_playout=mcts_playout)
    result = Explorer(machine, options).explore(config)
    return [p.schedule for p in result.paths if p.complete]


def enumerate_schedule_tree(machine: Machine, config: Config,
                            bound: int, fwd_hazards: bool = True,
                            max_paths: int = 20_000,
                            assume_unknown_branches: bool = False,
                            strategy: str = "dfs", seed: int = 0,
                            prune: str = "sleepset",
                            subsume: bool = False,
                            mcts_c: float = DEFAULT_EXPLORATION,
                            mcts_playout: int = DEFAULT_PLAYOUT_DEPTH) -> ScheduleTree:
    """DT(bound) with its DFS fork structure preserved.

    The returned tree's ``payloads`` are the explorer's complete
    :class:`~repro.pitchfork.explorer.PathResult` records in enumeration
    order (so ``tree.schedules`` equals :func:`enumerate_schedules` on
    the same arguments), ``truncated`` reports whether any cap
    (``max_paths`` or a per-path budget) cut coverage, and
    ``engine_stats`` carries the enumeration's step accounting.
    ``subsume`` consults the SeenStates table at every fork the walk
    expands (same caveats as :func:`enumerate_schedules`).
    """
    options = ExplorationOptions(bound=bound, fwd_hazards=fwd_hazards,
                                 max_paths=max_paths,
                                 assume_unknown_branches=assume_unknown_branches,
                                 strategy=strategy, seed=seed, prune=prune,
                                 subsume=subsume,
                                 mcts_c=mcts_c, mcts_playout=mcts_playout)
    explorer = Explorer(machine, options)
    result = explorer.explore(config)
    complete = [p for p in result.paths if p.complete]
    truncated = result.truncated or result.exhausted_paths > 0
    return ScheduleTree.from_paths(
        ((p.schedule, p) for p in complete),
        truncated=truncated, engine_stats=result.engine)


def schedule_stats(machine: Machine, config: Config, bound: int,
                   fwd_hazards: bool = True,
                   max_paths: int = 20_000) -> ScheduleStats:
    """Count the tool schedules without keeping them (explosion sweeps)."""
    options = ExplorationOptions(bound=bound, fwd_hazards=fwd_hazards,
                                 max_paths=max_paths)
    result = Explorer(machine, options).explore(config)
    return ScheduleStats(bound, fwd_hazards, result.paths_explored,
                         result.states_stepped, result.truncated)
