"""In-program multiprocess exploration: shard DT(n) into subtree jobs.

The tool-schedule tree is embarrassingly partitionable: after a fork,
sibling subtrees share no state (each arm carries its whole history in
persistent logs), so any frontier cut is a valid work partition.
:class:`ShardedExplorer` exploits that:

1. **split** — run the scheduler in-process through the first few fork
   levels, keeping the pending subtree roots *in DFS visitation order*.
   Each root is described self-containedly by its root schedule prefix
   (the exact action sequence from the initial configuration, including
   the explorer's delay pseudo-actions).  Paths that terminate before
   the cut are completed in the parent.  Splitting deepens level by
   level until there are at least ``shards × OVERPARTITION`` jobs (or
   the tree runs out of forks) — overpartitioning is what load-balances
   lopsided subtrees across the pool;
2. **execute** — ship ``(program, initial config, options, prefix)``
   jobs to a ``ProcessPoolExecutor``.  A worker replays the prefix
   through a fresh :class:`~repro.pitchfork.explorer.Explorer` (cheap:
   at most a few × bound steps, and sound by determinism, Theorem B.1 —
   the replayed root is *the* subtree root, violations recorded inside
   the prefix included) and explores the subtree with the configured
   search strategy;
3. **merge** — deterministically, in slot order: parent-completed
   leaves and shard results concatenate into one
   :class:`~repro.pitchfork.explorer.ExplorationResult` with stable
   path ordering, summed :class:`~repro.engine.EngineStats`, per-shard
   :class:`~repro.pitchfork.explorer.ShardStats`, and OR-ed truncation
   flags.  Under ``stop_at_first`` the merge stops at the first slot
   reporting a violation and cancels the outstanding shards.

Soundness is shard-invariant: Theorem B.20's guarantee quantifies over
the schedule *set* DT(n), and the partition neither adds nor removes
schedules — every root-to-leaf action sequence appears in exactly one
shard (prefix ∘ subtree path).  With the default DFS strategy the
merged path list is the seed explorer's enumeration order exactly;
counters differ only in that each shard re-applies its prefix once
(reported via ``ShardStats.prefix_len``).

Workers rebuild the machine from ``(program, rsb_policy)``, so sharding
requires the default concrete evaluator — callers with a custom
evaluator fall back to the single-process explorer
(:func:`repro.pitchfork.detector.analyze` gates this).

Anytime budgets
---------------

``options.budget_seconds`` composes with sharding through per-worker
deadlines: the parent arms one deadline at ``explore()`` entry (the
split counts against the budget), every job submitted to the pool
carries the budget *remaining at submission* as its own
``budget_seconds``, and the deterministic merge (a) skips — and counts
as unexplored frontier — any job it can still cancel once the deadline
has passed, and (b) sums each shard's honest
:class:`~repro.pitchfork.explorer.AnytimeStats` into one merged record.
A job already running at the deadline is awaited, not killed: it
self-limits by its own remaining budget, so the worst-case overshoot is
bounded by one worker budget (grace ≤ ~2× the configured budget, in
exchange for never discarding a shard whose results already exist).
Deadline expiry marks the merged result truncated — budgeted coverage
is never reported as complete.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.config import Config
from ..core.machine import Machine
from ..engine import MachineState, PruningStats, SubsumptionStats
from ..obs import SearchTelemetry, Tracer, tracing_context
from .explorer import (AnytimeStats, ExplorationOptions, ExplorationResult,
                       Explorer, PathResult, ShardStats, _Action)

__all__ = ["ShardedExplorer", "OVERPARTITION", "MAX_SPLIT_LEVELS",
           "shard_context", "ambient_pool", "ambient_progress"]

#: Jobs per worker the splitter aims for.  DT(n) subtrees are lopsided
#: (a mispredicted-branch arm is pruned at rollback, the architectural
#: arm carries the whole program suffix), so handing each worker one
#: subtree would serialise on the biggest; several jobs per worker let
#: the pool rebalance (on the donna case study at bound 28 this cuts
#: the largest job from 24% of the tree to 12%).
OVERPARTITION = 8

#: Fork levels the splitter will descend looking for enough jobs.
MAX_SPLIT_LEVELS = 8

# NOTE on pool lifetime: a module-level executor cached across explore()
# calls was tried and reverted.  A live ProcessPoolExecutor poisons
# every process forked afterwards — concurrent.futures registers an
# atexit hook that joins the executor's manager thread, and a forked
# child (e.g. an AnalysisManager worker under the default Linux start
# method) inherits that registration for a thread which does not run in
# the child, so the child hangs at exit and the manager's own pool
# shutdown deadlocks behind it.  Per-call pools shut down before any
# later fork can observe them; callers that want amortised workers
# (benchmarks, sweeps driving many explorations from one place) pass an
# explicit ``pool=`` whose lifetime they control.
#
# The serve daemon (repro.serve) is exactly such a caller, but its pool
# has to reach a ShardedExplorer constructed several layers down
# (detector.analyze → RepairAnalysis → repeated re-verifications …)
# without threading an unpicklable executor through every options
# object.  ``shard_context`` scopes an *ambient* pool (and an optional
# progress sink) to the current thread: everything the enclosed call
# tree explores shards onto the provided executor instead of a per-call
# pool.  Thread-local on purpose — the context names an owner, it never
# re-creates the cached-global landmine above, and concurrent daemon
# jobs in different threads can share one resident pool without seeing
# each other's progress sinks.


class _ShardContext(threading.local):
    """Per-thread ambient (pool, progress sink) for nested explorations."""

    pool: Optional[Executor] = None
    progress: Optional[Callable[[Dict[str, Any]], None]] = None


_CONTEXT = _ShardContext()


@contextmanager
def shard_context(pool: Optional[Executor] = None,
                  progress: Optional[Callable[[Dict[str, Any]], None]]
                  = None):
    """Scope an owned executor (and progress sink) over a call tree.

    Every :class:`ShardedExplorer` created in this thread while the
    context is active uses ``pool`` instead of a per-call
    ``ProcessPoolExecutor`` and reports merge progress to ``progress``.
    The caller owns the pool's lifetime (see the note above).
    """
    previous = (_CONTEXT.pool, _CONTEXT.progress)
    _CONTEXT.pool, _CONTEXT.progress = pool, progress
    try:
        yield
    finally:
        _CONTEXT.pool, _CONTEXT.progress = previous


def ambient_pool() -> Optional[Executor]:
    """The executor scoped by the innermost :func:`shard_context`."""
    return _CONTEXT.pool


def ambient_progress() -> Optional[Callable[[Dict[str, Any]], None]]:
    """The progress sink scoped by the innermost :func:`shard_context`."""
    return _CONTEXT.progress


@dataclass(frozen=True)
class _Leaf:
    """A path that completed in the parent during splitting."""

    path: PathResult
    steps: int


@dataclass
class _Pending:
    """A live subtree root: the state plus its root action prefix."""

    state: MachineState
    actions: Tuple[_Action, ...]


_Slot = Union[_Leaf, _Pending]


def _run_shard(program, config: Config, options: ExplorationOptions,
               rsb_policy: str, actions: Tuple[_Action, ...],
               stop_at_first: bool, keep_paths: bool, trace: bool = False
               ) -> Tuple[ExplorationResult, Optional[Tuple], int, float,
                          Optional[List[Dict[str, Any]]]]:
    """Worker entry point: replay the prefix, explore the subtree.

    Module-level (not a closure) so it pickles under every
    multiprocessing start method.  Returns (result, path metadata,
    prefix steps actually replayed, wall seconds, exported spans).
    ``keep_paths=False`` strips the per-path records before the result
    crosses the process boundary — a clean-at-bound-28 donna
    exploration ships ~20 MiB of paths otherwise, and detector callers
    only consume violations + counters — replacing them with compact
    per-path (steps, violations, complete) triples so the merge's
    global-budget trim stays exact.  ``trace`` (the parent's ambient
    tracer does not cross the process boundary) records the subtree
    exploration into a worker-local tracer whose spans ride home in
    the return value for the parent to adopt under this job's merge
    slot.
    """
    t0 = time.perf_counter()
    tracer = Tracer() if trace else None
    with tracing_context(tracer):
        machine = Machine(program, rsb_policy=rsb_policy)
        explorer = Explorer(machine, options)
        state = MachineState(config)
        for action in actions:
            if not explorer._apply(state, action):  # pragma: no cover
                raise RuntimeError(
                    f"shard prefix failed to replay at {action!r}: the "
                    f"machine is not deterministic for this evaluator")
        # Joins fired *inside* the prefix were already counted by the
        # parent when the splitter applied these actions — without this
        # reset a job whose root is a join-finished state would report
        # the same pruned schedule twice after the merge sums shard
        # counters.
        explorer._skipped = 0
        result = explorer.explore_from([state], stop_at_first=stop_at_first)
    meta = None
    if not keep_paths:
        meta = tuple((len(p.schedule), len(p.violations), p.complete)
                     for p in result.paths)
        result.paths = []
    spans = tracer.export() if tracer is not None else None
    return result, meta, len(actions), time.perf_counter() - t0, spans


def _trim_to_quota(result: ExplorationResult, quota: int,
                   meta: Optional[Tuple] = None) -> ExplorationResult:
    """Cut a shard result down to the remaining global path budget.

    The cut is exact either way: from the per-path records when they
    were kept, or from the worker's compact (steps, violations,
    complete) metadata when ``keep_paths=False`` stripped them
    (violations are concatenated in path-completion order, so a prefix
    of the metadata identifies the prefix of the violation list).  The
    kept paths, violations and step counts are precisely what the
    single-process explorer would have produced before hitting the
    cap; the result is flagged truncated so capped coverage is never
    reported as complete.
    """
    if len(result.paths) == result.paths_explored:
        kept = result.paths[:quota]
        result.paths = kept
        result.violations = [v for p in kept for v in p.violations]
        result.paths_explored = quota
        result.states_stepped = sum(len(p.schedule) for p in kept)
        result.exhausted_paths = sum(1 for p in kept if not p.complete)
    elif meta is not None:
        kept_meta = meta[:quota]
        result.violations = result.violations[
            :sum(v for _s, v, _c in kept_meta)]
        result.paths_explored = quota
        result.states_stepped = sum(s for s, _v, _c in kept_meta)
        result.exhausted_paths = sum(1 for _s, _v, c in kept_meta if not c)
    result.truncated = True
    return result


class ShardedExplorer:
    """Split DT(bound) at its first fork levels and explore the
    subtrees on a process pool.

        result = ShardedExplorer(machine, options, shards=4).explore(cfg)

    ``pool`` may supply a long-lived executor (benchmarks and sweeps
    reuse one across targets to amortise worker start-up); otherwise a
    pool of ``shards`` workers is created and torn down per call — see
    the fork-safety note above for why the default is not cached.
    ``keep_paths=False`` drops the per-path records from shard results
    (violations and counters survive) — what the detector wants, and
    much cheaper to ship back from the workers.
    """

    def __init__(self, machine: Machine, options: ExplorationOptions,
                 shards: int = 2, pool: Optional[Executor] = None,
                 keep_paths: bool = True,
                 progress: Optional[Callable[[Dict[str, Any]], None]]
                 = None, clock: Optional[Callable[[], float]] = None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        from ..core.isa import ConcreteEvaluator
        if type(machine.evaluator) is not ConcreteEvaluator:
            # Workers rebuild the machine from (program, rsb_policy)
            # with the default evaluator; silently exploring subtrees
            # under a different evaluator than the split would be
            # unsound.  Callers with custom evaluators use Explorer
            # (detector.analyze falls back automatically).
            raise ValueError(
                f"sharded exploration requires the default concrete "
                f"evaluator, got {type(machine.evaluator).__name__}; "
                f"use Explorer for custom evaluators")
        self.machine = machine
        self.options = options
        self.shards = shards
        # An explicit pool wins; otherwise a shard_context's ambient
        # pool (the daemon's resident workers); otherwise per-call.
        self.pool = pool if pool is not None else ambient_pool()
        self.keep_paths = keep_paths
        self.progress = progress if progress is not None \
            else ambient_progress()
        #: Parent-side monotonic clock (injectable for deterministic
        #: anytime tests); workers always use the real clock — a fake
        #: clock does not cross the process boundary.
        self._clock = clock if clock is not None else time.monotonic
        self._t0: Optional[float] = None
        self._deadline: Optional[float] = None

    # -- the three phases ----------------------------------------------------

    def explore(self, initial: Config,
                stop_at_first: bool = False) -> ExplorationResult:
        explorer = Explorer(self.machine, self.options, clock=self._clock)
        # The explorer captured the ambient tracer at construction;
        # the split/merge phases record onto the same stream, and the
        # submit path forwards its enabled flag to the workers (the
        # ambient itself cannot cross the process boundary).
        tracer = explorer._tracer
        # One deadline for the whole sharded run, armed before the split
        # (splitting counts against the budget) and pinned onto the
        # parent explorer so sequential local jobs share it instead of
        # each restarting the budget in explore_from.
        self._t0 = self._clock()
        self._deadline = None
        explorer._started = self._t0
        if self.options.budget_seconds is not None:
            self._deadline = self._t0 + self.options.budget_seconds
            explorer._deadline = self._deadline
        split_ts = tracer.start() if tracer.enabled else 0.0
        slots = self._split(explorer, MachineState(initial))
        jobs = [slot for slot in slots if isinstance(slot, _Pending)]
        if tracer.enabled:
            tracer.add("split", "shard", split_ts, {
                "jobs": len(jobs), "leaves": len(slots) - len(jobs),
                "shards": self.shards})
        self._emit({"kind": "split", "jobs": len(jobs),
                    "leaves": len(slots) - len(jobs),
                    "shards": self.shards})
        if len(jobs) <= 1 or self.shards == 1 or (
                self._deadline is not None
                and self._clock() >= self._deadline):
            # Nothing worth forking a pool for — or the budget is
            # already gone, in which case the local merge charges each
            # skipped job to the unexplored frontier instead of paying
            # pool start-up for workers that would break immediately.
            return self._merge(explorer, slots, [], stop_at_first,
                               run_local=True)
        if self.pool is not None:
            return self._merge(
                explorer, slots,
                self._submit(self.pool, initial, slots, stop_at_first,
                             trace=tracer.enabled),
                stop_at_first)
        with ProcessPoolExecutor(max_workers=self.shards) as pool:
            return self._merge(
                explorer, slots,
                self._submit(pool, initial, slots, stop_at_first,
                             trace=tracer.enabled),
                stop_at_first)

    def _emit(self, event: Dict[str, Any]) -> None:
        """Publish a progress event; sink errors never sink the run."""
        if self.progress is None:
            return
        try:
            self.progress(event)
        except Exception:  # pragma: no cover - defensive
            pass

    def _split(self, explorer: Explorer, root: MachineState) -> List[_Slot]:
        """Expand the scheduler level-synchronously until there are
        enough pending subtree roots, preserving DFS slot order."""
        fanout = max(self.shards * OVERPARTITION, self.shards)
        slots: List[_Slot] = [_Pending(root, ())]
        for _level in range(MAX_SPLIT_LEVELS):
            live = sum(isinstance(s, _Pending) for s in slots)
            if live >= fanout or live == 0:
                break
            new_slots: List[_Slot] = []
            progressed = False
            for slot in slots:
                if isinstance(slot, _Leaf):
                    new_slots.append(slot)
                    continue
                record: List[_Action] = []
                arms = explorer.advance_to_fork(slot.state, record)
                actions = slot.actions + tuple(record)
                if arms is None:
                    if explorer._telemetry is not None:
                        # Split-phase leaves never pass through
                        # explore_from, so their completed schedules are
                        # latched here — every schedule counts exactly
                        # once, whichever phase finishes it.
                        explorer._telemetry.record_schedule(
                            slot.state.depth)
                    new_slots.append(_Leaf(explorer._materialize(slot.state),
                                           slot.state.steps))
                    continue
                progressed = True
                explorer.engine.count_fork(len(arms))
                # expand() is the explorer's own arm-application (and,
                # under prune="full", degenerate-arm collapse), so the
                # split sees exactly the fork structure a single-process
                # run would: pruning composes with sharding because the
                # cut only ever lands on surviving, non-redundant arms.
                children = [_Pending(clone, actions + applied)
                            for clone, applied
                            in explorer.expand(slot.state, arms)]
                # The DFS explorer pushes arms in order and pops the
                # last first, so DFS visits them reversed — keep the
                # merged path order identical to the seed's.
                new_slots.extend(reversed(children))
            slots = new_slots
            if not progressed:
                break
        return slots

    def _submit(self, pool: Executor, initial: Config, slots: List[_Slot],
                stop_at_first: bool, trace: bool = False) -> List:
        futures = []
        for slot in slots:
            if not isinstance(slot, _Pending):
                continue
            options = self.options
            if self._deadline is not None:
                # Ship the budget *remaining at submission* as the
                # worker's own deadline (a clock reading can't cross the
                # process boundary; a duration can).  Clamped positive:
                # a worker handed an expired budget arms an immediate
                # deadline and reports one honest unexplored-frontier
                # slot instead of exploring.
                remaining = max(self._deadline - self._clock(), 1e-9)
                options = replace(options, budget_seconds=remaining)
            futures.append(pool.submit(
                _run_shard, self.machine.program, initial, options,
                self.machine.rsb_policy, slot.actions, stop_at_first,
                self.keep_paths, trace))
        return futures

    # -- deterministic merge -------------------------------------------------

    def _merge(self, explorer: Explorer, slots: List[_Slot], futures: List,
               stop_at_first: bool, run_local: bool = False
               ) -> ExplorationResult:
        merged = ExplorationResult()
        tracer = explorer._tracer
        merge_ts = tracer.start() if tracer.enabled else 0.0
        shard_stats: List[ShardStats] = []
        #: Remote shards' serialised telemetry sections, merged (with
        #: the parent explorer's own accumulator, which local jobs
        #: share) into one section at the end.
        telemetry_parts: List[Dict[str, Any]] = []
        job_index = 0
        stopped = False
        deadline = self._deadline
        #: Pending jobs never run: cancelled past the deadline, or cut
        #: off by the local-mode deadline check.  Each is at least one
        #: unexplored frontier item in the merged anytime accounting.
        skipped_jobs = 0
        anytime_parts: List[AnytimeStats] = []
        # States recorded across all per-shard SeenStates tables (each
        # worker owns its own; only the counters cross the boundary).
        # Local jobs share the parent explorer's table, counted once at
        # the end.
        remote_states_seen = 0
        for slot in slots:
            if stopped:
                break
            # Enforce the *global* path budget at merge time: shards run
            # with their own max_paths, so without this the merged run
            # could explore up to jobs × max_paths paths.  Every pending
            # slot holds at least one path, so quota exhaustion with
            # slots left is exactly the single-process "cap hit with a
            # non-empty frontier" condition.
            remaining = self.options.max_paths - merged.paths_explored
            if remaining <= 0:
                merged.truncated = True
                stopped = True
                break
            if isinstance(slot, _Leaf):
                merged.paths_explored += 1
                merged.states_stepped += slot.steps
                merged.paths.append(slot.path)
                merged.violations.extend(slot.path.violations)
                if not slot.path.complete:
                    merged.exhausted_paths += 1
                if slot.path.violations:
                    # Paths that completed *during the split* never pass
                    # through explore_from, so latch their first-violation
                    # stats here (attributed to the whole split's applied
                    # steps — the work that existed when the leaf was
                    # found).  merge() below still adopts any shard's
                    # earlier (fewer-steps) hit.
                    explorer.engine.stats.record_first_violation(
                        merged.paths_explored, explorer._applied,
                        self._clock() - self._t0)
                if stop_at_first and slot.path.violations:
                    stopped = True
                continue
            if run_local:
                if deadline is not None and self._clock() >= deadline:
                    # Budget gone: this subtree root stays unexplored
                    # (counted as remaining frontier), deterministically
                    # — no partial job output to merge.
                    skipped_jobs += 1
                    merged.truncated = True
                    continue
                # Explorer._finalize reports *cumulative* counters per
                # explorer, so sequential local jobs are accounted via
                # deltas of the shared parent explorer instead.
                applied_before = explorer._applied
                t0 = time.perf_counter()
                result = explorer.explore_from([slot.state],
                                               stop_at_first=stop_at_first)
                wall = time.perf_counter() - t0
                meta = None
                prefix_len = len(slot.actions)
                shard_applied = explorer._applied - applied_before
            else:
                future = futures[job_index]
                if deadline is not None and self._clock() >= deadline \
                        and future.cancel():
                    # Deadline passed and the job never started: skip it
                    # (an already-running job is awaited instead — its
                    # own remaining budget bounds the overshoot, and
                    # results that exist are never discarded).
                    job_index += 1
                    skipped_jobs += 1
                    merged.truncated = True
                    continue
                result, meta, prefix_len, wall, spans = future.result()
                if spans:
                    # Worker span streams land under this job's merge
                    # slot; (shard, seq) keys make the combined export
                    # deterministic even though worker clocks are
                    # unrelated monotonic bases.
                    tracer.adopt(spans, shard=len(shard_stats))
                if result.telemetry is not None:
                    telemetry_parts.append(result.telemetry)
                shard_applied = result.applied_steps
                merged.applied_steps += result.applied_steps
                merged.states_reused += result.states_reused
                explorer.engine.stats.merge(result.engine)
                if result.pruning is not None:
                    explorer._skipped += result.pruning.schedules_skipped
                if result.subsumption is not None:
                    remote_states_seen += result.subsumption.states_seen
            job_index += 1
            if result.anytime is not None:
                anytime_parts.append(result.anytime)
            if result.paths_explored > remaining:
                result = _trim_to_quota(result, remaining, meta)
            merged.paths.extend(result.paths)
            merged.violations.extend(result.violations)
            merged.paths_explored += result.paths_explored
            merged.states_stepped += result.states_stepped
            merged.exhausted_paths += result.exhausted_paths
            merged.truncated = merged.truncated or result.truncated
            shard_stats.append(ShardStats(
                index=len(shard_stats), prefix_len=prefix_len,
                paths_explored=result.paths_explored,
                violations=len(result.violations),
                states_stepped=shard_applied,
                truncated=result.truncated, wall_time=wall))
            # Streaming results: each merged shard publishes its
            # ShardStats plus the *new* findings it contributed, so a
            # daemon's status poll can report partial findings while
            # later shards are still running.
            self._emit({"kind": "shard", "index": len(shard_stats) - 1,
                        "prefix_len": prefix_len,
                        "paths_explored": result.paths_explored,
                        "violations": len(result.violations),
                        "states_stepped": shard_applied,
                        "truncated": result.truncated,
                        "wall_time": wall,
                        "cumulative_paths": merged.paths_explored,
                        "cumulative_violations": len(merged.violations),
                        "new_findings": [repr(v.observation)
                                         for v in result.violations]})
            if stop_at_first and result.violations:
                stopped = True
        if stopped:
            # Early-cancel outstanding shards; already-running ones
            # finish but their results are discarded, keeping the
            # merged output deterministic.
            for future in futures[job_index:]:
                future.cancel()
        # The split work itself (forced moves up to the cut, counted in
        # the parent explorer) joins the totals; in local mode this
        # term is the whole single-process count.
        merged.applied_steps += explorer._applied
        if run_local:
            merged.states_reused = max(
                0, merged.states_stepped - merged.applied_steps)
        if explorer._subsumed_notes:
            # Arms the *parent* subsumed while splitting (local jobs
            # drain theirs through _finalize): their prefix violations
            # must survive the prune.
            merged.violations.extend(
                note.materialize() for note in explorer._subsumed_notes)
            explorer._subsumed_notes = []
        merged.engine = explorer.engine.stats.snapshot()
        merged.shards = tuple(shard_stats)
        merged.pruning = PruningStats(
            self.options.prune, classes_explored=merged.paths_explored,
            schedules_skipped=explorer._skipped)
        parent_seen = explorer._seen
        merged.subsumption = SubsumptionStats(
            self.options.subsume,
            remote_states_seen + (parent_seen.states_seen
                                  if parent_seen is not None else 0),
            merged.engine.states_subsumed)
        if self.options.budget_seconds is not None:
            deadline_hit = (skipped_jobs > 0 or explorer._deadline_hit
                            or any(a.deadline_hit for a in anytime_parts))
            merged.anytime = AnytimeStats(
                budget_seconds=self.options.budget_seconds,
                budget_consumed=self._clock() - self._t0,
                deadline_hit=deadline_hit,
                paths_explored=merged.paths_explored,
                frontier_remaining=(
                    skipped_jobs
                    + sum(a.frontier_remaining for a in anytime_parts)),
                first_violation_time=merged.engine.first_violation_wall)
            merged.truncated = merged.truncated or deadline_hit
        if self.options.telemetry:
            # One merged section: the parent explorer's accumulator
            # (split-time leaves plus every local job, which share it)
            # plus each remote shard's serialised part.  Rebuilt from
            # scratch so remote sections are summed once regardless of
            # how many cumulative snapshots the workers reported.
            telemetry = SearchTelemetry()
            if explorer._telemetry is not None:
                telemetry.merge(explorer._telemetry)
            for part in telemetry_parts:
                telemetry.merge_section(part)
            merged.telemetry = telemetry.to_section(
                self._clock() - self._t0)
        if tracer.enabled:
            tracer.add("merge", "shard", merge_ts, {
                "jobs_merged": len(shard_stats),
                "paths": merged.paths_explored,
                "violations": len(merged.violations),
                "truncated": merged.truncated})
        self._emit({"kind": "merged",
                    "paths_explored": merged.paths_explored,
                    "violations": len(merged.violations),
                    "truncated": merged.truncated,
                    "engine_steps": merged.engine.steps,
                    "engine_forks": merged.engine.forks,
                    "engine_reused": merged.engine.reused})
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedExplorer(shards={self.shards}, "
                f"strategy={self.options.strategy!r})")
