"""Human-readable violation reports.

Formats an :class:`AnalysisReport` the way the original tool prints its
findings: the flagged observation, the witnessing directive schedule, and
a disassembly window around the offending instruction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..asm.disasm import disassemble
from ..core.program import Program
from .detector import AnalysisReport
from .explorer import Violation


def violation_key(violation: Violation) -> Tuple:
    """The canonical identity of a violation for set comparison.

    Observation + directive + the full witnessing schedule pins the
    exact leak on the exact path, independent of enumeration order —
    the key the strategy/shard equivalence suite and the CI
    findings-identity gate both compare on.
    """
    return (repr(violation.observation), repr(violation.directive),
            tuple(map(repr, violation.schedule)))


def violation_set(violations) -> List[Tuple]:
    """Sorted canonical keys of a violation collection."""
    return sorted(violation_key(v) for v in violations)


def observation_set(violations) -> List[str]:
    """Sorted set of flagged observations, schedule-independent.

    Mazurkiewicz-equivalent schedules produce the same observations in
    permuted order, so partial-order reduction preserves *this* set
    while (deliberately) changing witnessing schedules and dropping
    duplicate witnesses — it is the comparison key of the POR
    differential suite and the ``BENCH_por.json`` findings gate.
    :func:`violation_set`, which pins the exact witnessing schedules,
    remains the key for order-preserving transformations (strategies,
    sharding) at a fixed pruning level.
    """
    return sorted({repr(v.observation) for v in violations})


def format_violation(violation: Violation,
                     program: Optional[Program] = None) -> str:
    lines: List[str] = [
        f"SCT violation: {violation.observation!r}",
        f"  flagged at schedule step {violation.step_index} "
        f"({violation.directive!r})",
    ]
    tail = ", ".join(repr(d) for d in violation.schedule[-8:])
    lines.append(f"  witnessing schedule (…last 8): {tail}")
    leaked = ", ".join(repr(o) for o in violation.trace[-6:])
    lines.append(f"  trace tail: {leaked}")
    return "\n".join(lines)


def format_report(report: AnalysisReport,
                  program: Optional[Program] = None,
                  max_violations: int = 5) -> str:
    head = (f"Pitchfork [{report.phase}, bound={report.bound}] "
            f"{report.name}: "
            f"{'SECURE' if report.secure else 'VIOLATIONS FOUND'} "
            f"({report.paths_explored} schedules, "
            f"{report.states_stepped} steps"
            f"{', truncated' if report.truncated else ''})")
    if report.secure:
        return head
    body = [head]
    for v in report.violations[:max_violations]:
        body.append(format_violation(v, program))
    extra = len(report.violations) - max_violations
    if extra > 0:
        body.append(f"  … and {extra} more")
    return "\n".join(body)
