"""Assembly front end for the paper's instruction language.

``assemble`` turns source text into a :class:`repro.core.Program`;
:class:`ProgramBuilder` constructs programs fluently from Python;
``disassemble`` goes the other way for reports.
"""

from .assembler import assemble, assemble_parsed
from .builder import ProgramBuilder
from .disasm import disassemble, format_instruction, to_source
from .parser import ParsedInstr, ParsedProgram, parse

__all__ = [
    "assemble", "assemble_parsed", "ProgramBuilder", "disassemble",
    "format_instruction", "ParsedInstr", "ParsedProgram", "parse",
    "to_source",
]
