"""Assembler: parsed source → :class:`repro.core.program.Program`.

Program points are assigned sequentially starting from ``base`` (default
1, matching the paper's figures).  ``halt`` reserves a point with no
instruction — fetching it is stuck, which is this machine's notion of
termination.  Labels resolve to the point of the instruction they prefix.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.errors import AssemblerError
from ..core.isa import Br, Call, Fence, Instruction, Jmpi, Load, Op, Ret, Store
from ..core.program import Program
from .parser import ParsedInstr, ParsedProgram, Target, parse


def _resolve(target: Target, labels: Dict[str, int], line: int) -> int:
    if isinstance(target, int):
        return target
    if target not in labels:
        raise AssemblerError(f"line {line}: undefined label {target!r}")
    return labels[target]


def assemble_parsed(parsed: ParsedProgram, base: int = 1) -> Program:
    """Lay out a parsed program from program point ``base``."""
    points = {idx: base + idx for idx in range(len(parsed.instrs))}
    labels = {name: points[idx] if idx < len(parsed.instrs) else base + idx
              for name, idx in parsed.labels.items()}
    end = base + len(parsed.instrs)

    instrs: Dict[int, Instruction] = {}
    for idx, p in enumerate(parsed.instrs):
        n = points[idx]
        # Sequential instructions fall through to the next line unless an
        # explicit `-> target` successor was written (mitigation passes
        # splice fences and relocated instructions, whose successors are
        # not the following point).
        nxt = (_resolve(p.targets[0], labels, p.line)
               if p.kind in ("op", "load", "store") and p.targets
               else n + 1)
        if p.kind == "op":
            instrs[n] = Op(p.dest, p.opcode, p.args, nxt)
        elif p.kind == "load":
            instrs[n] = Load(p.dest, p.args, nxt)
        elif p.kind == "store":
            instrs[n] = Store(p.src, p.args, nxt)
        elif p.kind == "br":
            instrs[n] = Br(p.opcode, p.args,
                           _resolve(p.targets[0], labels, p.line),
                           _resolve(p.targets[1], labels, p.line))
        elif p.kind == "jmpi":
            instrs[n] = Jmpi(p.args)
        elif p.kind == "call":
            ret_to = (_resolve(p.targets[1], labels, p.line)
                      if len(p.targets) == 2 else nxt)
            instrs[n] = Call(_resolve(p.targets[0], labels, p.line), ret_to)
        elif p.kind == "ret":
            instrs[n] = Ret()
        elif p.kind == "fence":
            if p.targets == ("@self",):
                instrs[n] = Fence(n)
            elif p.targets:
                instrs[n] = Fence(_resolve(p.targets[0], labels, p.line))
            else:
                instrs[n] = Fence(nxt)
        elif p.kind == "halt":
            pass  # reserve the point, map no instruction
        else:  # pragma: no cover - parser guarantees kinds
            raise AssemblerError(f"unknown kind {p.kind!r}")

    entry = base
    if parsed.entry:
        if parsed.entry in labels:
            entry = labels[parsed.entry]
        else:
            try:
                entry = int(parsed.entry, 0)
            except ValueError:
                entry = base
    if not instrs:
        raise AssemblerError("program assembles to no instructions")
    return Program(instrs, entry=entry, labels=labels)


def assemble(source: str, base: int = 1) -> Program:
    """Parse and assemble assembly source text."""
    return assemble_parsed(parse(source), base)
