"""Disassembler: programs back to readable assembly text.

Round-trips with the assembler (modulo label names for unlabeled
points); used by Pitchfork's violation reports to show the code around a
flagged instruction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.isa import (Br, Call, Fence, Instruction, Jmpi, Load, Op, Ret,
                        Store)
from ..core.program import Program
from ..core.values import Reg, Value


def _operand(o) -> str:
    if isinstance(o, Reg):
        return f"%{o.name}"
    if isinstance(o, Value):
        if o.is_public():
            return str(o.val)
        return f"secret({o.val})"
    return repr(o)


def _args(args: Iterable) -> str:
    return ", ".join(_operand(a) for a in args)


def _target(program: Program, n: int) -> str:
    name = program.name_of(n)
    return name if name is not None else str(n)


def format_instruction(program: Program, n: int) -> str:
    """One instruction, paper-style, with symbolic targets."""
    instr = program[n]
    if isinstance(instr, Op):
        return f"%{instr.dest.name} = op {instr.opcode}, {_args(instr.args)}"
    if isinstance(instr, Load):
        return f"%{instr.dest.name} = load [{_args(instr.args)}]"
    if isinstance(instr, Store):
        return f"store {_operand(instr.src)}, [{_args(instr.args)}]"
    if isinstance(instr, Br):
        return (f"br {instr.opcode}, {_args(instr.args)} -> "
                f"{_target(program, instr.n_true)}, "
                f"{_target(program, instr.n_false)}")
    if isinstance(instr, Jmpi):
        return f"jmpi [{_args(instr.args)}]"
    if isinstance(instr, Call):
        return (f"call {_target(program, instr.target)}, "
                f"{_target(program, instr.ret)}")
    if isinstance(instr, Ret):
        return "ret"
    if isinstance(instr, Fence):
        return "fence self" if instr.next == n else "fence"
    return repr(instr)


def disassemble(program: Program,
                around: Optional[int] = None,
                context: int = 3) -> str:
    """The whole program (or a window around a point) as text."""
    lines: List[str] = []
    points = list(program.points())
    if around is not None:
        points = [n for n in points if abs(n - around) <= context]
    for n in points:
        label = program.name_of(n)
        prefix = f"{label}:" if label else ""
        marker = " -->" if n == around else "    "
        lines.append(f"{marker}{n:>5}  {prefix:<12} "
                     f"{format_instruction(program, n)}")
    return "\n".join(lines)
