"""Disassembler: programs back to readable assembly text.

Two printers:

* :func:`disassemble` — the human-readable window view used by
  Pitchfork's violation reports (point numbers, ``-->`` markers);
* :func:`to_source` — exact source text: ``assemble(to_source(p),
  base=min(p.points())) == p`` for every program the assembler, the
  blanket :mod:`repro.ctcomp.passes` and the per-site
  :mod:`repro.mitigate` passes can produce.  Non-sequential successors
  (fence trampolines, relocated instructions) print with the explicit
  ``-> target`` suffix; unmapped-but-referenced points print as
  ``halt`` lines so the layout reproduces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.errors import AssemblerError
from ..core.isa import (Br, Call, Fence, Instruction, Jmpi, Load, Op, Ret,
                        Store)
from ..core.program import Program
from ..core.values import Reg, Value


def _operand(o) -> str:
    if isinstance(o, Reg):
        return f"%{o.name}"
    if isinstance(o, Value):
        if o.is_public():
            return str(o.val)
        return f"secret({o.val})"
    return repr(o)


def _args(args: Iterable) -> str:
    return ", ".join(_operand(a) for a in args)


def _target(program: Program, n: int) -> str:
    name = program.name_of(n)
    return name if name is not None else str(n)


def format_instruction(program: Program, n: int) -> str:
    """One instruction, paper-style, with symbolic targets."""
    instr = program[n]
    if isinstance(instr, Op):
        return f"%{instr.dest.name} = op {instr.opcode}, {_args(instr.args)}"
    if isinstance(instr, Load):
        return f"%{instr.dest.name} = load [{_args(instr.args)}]"
    if isinstance(instr, Store):
        return f"store {_operand(instr.src)}, [{_args(instr.args)}]"
    if isinstance(instr, Br):
        return (f"br {instr.opcode}, {_args(instr.args)} -> "
                f"{_target(program, instr.n_true)}, "
                f"{_target(program, instr.n_false)}")
    if isinstance(instr, Jmpi):
        return f"jmpi [{_args(instr.args)}]"
    if isinstance(instr, Call):
        return (f"call {_target(program, instr.target)}, "
                f"{_target(program, instr.ret)}")
    if isinstance(instr, Ret):
        return "ret"
    if isinstance(instr, Fence):
        return "fence self" if instr.next == n else "fence"
    return repr(instr)


def _referenced_points(program: Program) -> List[int]:
    """Every point the program mentions: mapped, targeted, or labelled."""
    out = set()
    for n, instr in program.items():
        out.add(n)
        if isinstance(instr, (Op, Load, Store, Fence)):
            out.add(instr.next)
        elif isinstance(instr, Br):
            out.update((instr.n_true, instr.n_false))
        elif isinstance(instr, Call):
            out.update((instr.target, instr.ret))
    out.update(program.labels().values())
    out.add(program.entry)
    return sorted(out)


def _source_target(program: Program, n: int) -> str:
    """A target as source text: its label when one exists, else the
    literal program point (the assembler resolves ints as-is)."""
    name = program.name_of(n)
    return name if name is not None else str(n)


def _source_line(program: Program, n: int, instr: Instruction) -> str:
    succ = ""
    if isinstance(instr, (Op, Load, Store)) and instr.next != n + 1:
        succ = f" -> {_source_target(program, instr.next)}"
    if isinstance(instr, Op):
        return f"%{instr.dest.name} = op {instr.opcode}, " \
               f"{_args(instr.args)}{succ}"
    if isinstance(instr, Load):
        return f"%{instr.dest.name} = load [{_args(instr.args)}]{succ}"
    if isinstance(instr, Store):
        return f"store {_operand(instr.src)}, [{_args(instr.args)}]{succ}"
    if isinstance(instr, Br):
        return (f"br {instr.opcode}, {_args(instr.args)} -> "
                f"{_source_target(program, instr.n_true)}, "
                f"{_source_target(program, instr.n_false)}")
    if isinstance(instr, Jmpi):
        return f"jmpi [{_args(instr.args)}]"
    if isinstance(instr, Call):
        target = _source_target(program, instr.target)
        if instr.ret == n + 1:
            return f"call {target}"
        return f"call {target}, {_source_target(program, instr.ret)}"
    if isinstance(instr, Ret):
        return "ret"
    if isinstance(instr, Fence):
        if instr.next == n:
            return "fence self"
        if instr.next == n + 1:
            return "fence"
        return f"fence -> {_source_target(program, instr.next)}"
    raise AssemblerError(f"cannot print {instr!r}")


def to_source(program: Program) -> str:
    """The program as re-assembleable source text.

    The inverse of :func:`repro.asm.assemble` up to structural program
    equality: one line per program point from the lowest mapped point
    to the highest referenced one, ``halt`` for reserved (unmapped)
    points, explicit ``-> target`` successors wherever control flow is
    non-sequential, and a ``.entry`` directive when the entry is not
    the first point.
    """
    points = _referenced_points(program)
    base = points[0]
    names: Dict[int, List[str]] = {}
    for name, point in program.labels().items():
        names.setdefault(point, []).append(name)
    lines: List[str] = []
    if program.entry != base:
        lines.append(f".entry {_source_target(program, program.entry)}")
    for n in range(base, points[-1] + 1):
        prefix = "".join(f"{name}: " for name in names.get(n, ()))
        instr = program.get(n)
        body = "halt" if instr is None else _source_line(program, n, instr)
        lines.append(f"{prefix}{body}")
    return "\n".join(lines) + "\n"


def disassemble(program: Program,
                around: Optional[int] = None,
                context: int = 3) -> str:
    """The whole program (or a window around a point) as text."""
    lines: List[str] = []
    points = list(program.points())
    if around is not None:
        points = [n for n in points if abs(n - around) <= context]
    for n in points:
        label = program.name_of(n)
        prefix = f"{label}:" if label else ""
        marker = " -->" if n == around else "    "
        lines.append(f"{marker}{n:>5}  {prefix:<12} "
                     f"{format_instruction(program, n)}")
    return "\n".join(lines)
