"""Parser for the paper's instruction language.

The surface syntax mirrors Table 1 closely; one instruction per line::

    ; Spectre v1 (Fig 1)
    check:  br gt, 4, %ra -> in_bounds, done
    in_bounds:
            %rb = load [0x40, %ra]
            %rc = load [0x44, %rb]
    done:   halt

Grammar (informal)::

    line      ::= [label ':']* [instr] [';' comment]
    instr     ::= reg '=' 'op' opcode ',' args [succ]
                | reg '=' 'load' '[' args ']' [succ]
                | 'store' operand ',' '[' args ']' [succ]
                | 'br' opcode ',' args '->' target ',' target
                | 'jmpi' '[' args ']'
                | 'call' target [',' target]
                | 'ret' | 'fence' [succ | 'self'] | 'halt'
    succ      ::= '->' target
    operand   ::= reg | int | 'secret(' int ')'
    reg       ::= '%' ident
    target    ::= ident | int

``halt`` is a pseudo-instruction: it reserves a program point with no
instruction, so fetching it is stuck — the program has terminated.
Targets may be labels or literal program points.

Sequential instructions (op/load/store/fence) fall through to the next
line by default; an explicit ``-> target`` successor overrides that.
The mitigation passes need this: a fence spliced in front of a program
point keeps the original instruction at a relocated point, so repaired
programs print with non-sequential successors and still re-assemble to
the exact same :class:`~repro.core.program.Program`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..core.errors import AssemblerError
from ..core.isa import OPCODES
from ..core.lattice import SECRET
from ..core.values import Reg, Value

#: An unresolved jump target: a label name or a literal program point.
Target = Union[str, int]


@dataclass(frozen=True)
class ParsedInstr:
    """One parsed source line (targets still symbolic)."""

    kind: str                        # op|load|store|br|jmpi|call|ret|fence|halt
    dest: Optional[Reg] = None
    opcode: Optional[str] = None
    args: Tuple[object, ...] = ()    # Reg | Value mixed
    src: Optional[object] = None     # store data operand
    targets: Tuple[Target, ...] = ()
    line: int = 0
    source: str = ""


@dataclass
class ParsedProgram:
    """The outcome of parsing: instructions plus symbolic label table."""

    instrs: List[ParsedInstr] = field(default_factory=list)
    labels: dict = field(default_factory=dict)  # name -> instr index
    entry: Optional[str] = None


_REG_RE = re.compile(r"%([A-Za-z_][A-Za-z0-9_]*)")
_INT_RE = re.compile(r"-?(0[xX][0-9a-fA-F]+|\d+)")
_SECRET_RE = re.compile(r"secret\(\s*(-?(?:0[xX][0-9a-fA-F]+|\d+))\s*\)")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*")
_IDENT_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


def _parse_int(text: str) -> int:
    return int(text, 0)


def _parse_operand(tok: str, line: int) -> object:
    tok = tok.strip()
    m = _SECRET_RE.fullmatch(tok)
    if m:
        return Value(_parse_int(m.group(1)), SECRET)
    m = _REG_RE.fullmatch(tok)
    if m:
        return Reg(m.group(1))
    m = _INT_RE.fullmatch(tok)
    if m:
        return Value(_parse_int(tok))
    raise AssemblerError(f"line {line}: bad operand {tok!r}")


def _parse_target(tok: str, line: int) -> Target:
    tok = tok.strip()
    if _INT_RE.fullmatch(tok):
        return _parse_int(tok)
    if _IDENT_RE.fullmatch(tok):
        return tok
    raise AssemblerError(f"line {line}: bad target {tok!r}")


def _split_args(text: str, line: int) -> List[object]:
    text = text.strip()
    if not text:
        return []
    return [_parse_operand(tok, line) for tok in text.split(",")]


def _parse_bracketed(text: str, line: int) -> Tuple[str, str]:
    """Split ``'[a, b] trailing'`` into (inside, trailing)."""
    text = text.strip()
    if not text.startswith("["):
        raise AssemblerError(f"line {line}: expected '[' in {text!r}")
    depth = 0
    for k, ch in enumerate(text):
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth == 0:
                return text[1:k], text[k + 1:].strip()
    raise AssemblerError(f"line {line}: unbalanced brackets in {text!r}")


def _parse_succ(trailing: str, line: int) -> Tuple[Target, ...]:
    """Parse an optional ``-> target`` explicit-successor suffix."""
    trailing = trailing.strip()
    if not trailing:
        return ()
    if not trailing.startswith("->"):
        raise AssemblerError(
            f"line {line}: expected '-> target', got {trailing!r}")
    return (_parse_target(trailing[2:], line),)


def _parse_instr(text: str, line: int) -> ParsedInstr:
    text = text.strip()
    src_text = text

    # reg = op/load
    m = re.match(r"^%([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(op|load)\b(.*)$", text)
    if m:
        dest = Reg(m.group(1))
        kind = m.group(2)
        rest = m.group(3).strip()
        if kind == "op":
            head, arrow, tail = rest.partition("->")
            succ = _parse_succ(arrow + tail, line) if arrow else ()
            parts = head.split(",", 1)
            opcode = parts[0].strip()
            if opcode not in OPCODES:
                raise AssemblerError(f"line {line}: unknown opcode {opcode!r}")
            args = _split_args(parts[1] if len(parts) > 1 else "", line)
            return ParsedInstr("op", dest=dest, opcode=opcode,
                               args=tuple(args), targets=succ,
                               line=line, source=src_text)
        inside, trailing = _parse_bracketed(rest, line)
        return ParsedInstr("load", dest=dest,
                           args=tuple(_split_args(inside, line)),
                           targets=_parse_succ(trailing, line),
                           line=line, source=src_text)

    if text.startswith("store"):
        rest = text[len("store"):].strip()
        src_tok, _, addr_part = rest.partition(",")
        src = _parse_operand(src_tok, line)
        inside, trailing = _parse_bracketed(addr_part, line)
        return ParsedInstr("store", src=src,
                           args=tuple(_split_args(inside, line)),
                           targets=_parse_succ(trailing, line),
                           line=line, source=src_text)

    if text.startswith("br"):
        rest = text[len("br"):].strip()
        if "->" not in rest:
            raise AssemblerError(f"line {line}: br needs '-> t, f'")
        cond_part, _, target_part = rest.partition("->")
        opcode, _, args_part = cond_part.partition(",")
        opcode = opcode.strip()
        if opcode not in OPCODES:
            raise AssemblerError(f"line {line}: unknown opcode {opcode!r}")
        targets = [t for t in target_part.split(",")]
        if len(targets) != 2:
            raise AssemblerError(f"line {line}: br needs two targets")
        return ParsedInstr("br", opcode=opcode,
                           args=tuple(_split_args(args_part, line)),
                           targets=(_parse_target(targets[0], line),
                                    _parse_target(targets[1], line)),
                           line=line, source=src_text)

    if text.startswith("jmpi"):
        rest = text[len("jmpi"):].strip()
        inside, trailing = _parse_bracketed(rest, line)
        if trailing:
            raise AssemblerError(f"line {line}: junk after jmpi: {trailing!r}")
        return ParsedInstr("jmpi", args=tuple(_split_args(inside, line)),
                           line=line, source=src_text)

    if text.startswith("call"):
        rest = text[len("call"):].strip()
        parts = [p.strip() for p in rest.split(",")]
        if len(parts) == 1:
            return ParsedInstr("call", targets=(_parse_target(parts[0], line),),
                               line=line, source=src_text)
        if len(parts) == 2:
            return ParsedInstr("call",
                               targets=(_parse_target(parts[0], line),
                                        _parse_target(parts[1], line)),
                               line=line, source=src_text)
        raise AssemblerError(f"line {line}: call takes 1 or 2 targets")

    if text == "ret":
        return ParsedInstr("ret", line=line, source=src_text)
    if text == "fence":
        return ParsedInstr("fence", line=line, source=src_text)
    if text == "fence self":
        # A fence whose successor is itself: speculation can never
        # proceed past it (the retpoline landing pad of Fig 13).
        return ParsedInstr("fence", targets=("@self",), line=line,
                           source=src_text)
    if text.startswith("fence"):
        return ParsedInstr("fence",
                           targets=_parse_succ(text[len("fence"):], line),
                           line=line, source=src_text)
    if text == "halt":
        return ParsedInstr("halt", line=line, source=src_text)

    raise AssemblerError(f"line {line}: cannot parse {text!r}")


def parse(source: str) -> ParsedProgram:
    """Parse assembly source into a :class:`ParsedProgram`."""
    out = ParsedProgram()
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not text:
            continue
        if text.startswith(".entry"):
            out.entry = text[len(".entry"):].strip()
            continue
        while True:
            m = _LABEL_RE.match(text)
            if not m:
                break
            name = m.group(1)
            if name in out.labels:
                raise AssemblerError(f"line {lineno}: duplicate label {name!r}")
            out.labels[name] = len(out.instrs)
            text = text[m.end():].strip()
        if not text:
            continue
        out.instrs.append(_parse_instr(text, lineno))
    if not out.instrs:
        raise AssemblerError("empty program")
    return out
