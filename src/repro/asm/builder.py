"""Fluent programmatic program construction.

The builder mirrors the assembler but stays in Python, which the litmus
suites and the compiler back end use::

    b = ProgramBuilder()
    b.br("gt", [4, "ra"], "body", "done")
    b.label("body")
    b.load("rb", [0x40, "ra"])
    b.load("rc", [0x44, "rb"])
    b.label("done")
    b.halt()
    program = b.build()

Targets are label names or literal program points; forward references
are resolved at :meth:`ProgramBuilder.build`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..core.errors import AssemblerError
from ..core.isa import (Br, Call, Fence, Instruction, Jmpi, Load, Op, Ret,
                        Store)
from ..core.program import Program
from ..core.values import Operand, Reg, Value, operands

Target = Union[str, int]


class ProgramBuilder:
    """Accumulates instructions and resolves labels on build."""

    def __init__(self, base: int = 1):
        self._base = base
        self._pending: List[Tuple[str, tuple]] = []
        self._labels: Dict[str, int] = {}  # label -> pending index

    # -- layout ------------------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        """Attach a label to the next emitted instruction."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = len(self._pending)
        return self

    def here(self) -> int:
        """The program point the next instruction will get."""
        return self._base + len(self._pending)

    # -- instructions --------------------------------------------------------

    def op(self, dest, opcode: str, args) -> "ProgramBuilder":
        self._pending.append(("op", (self._reg(dest), opcode,
                                     operands(*args))))
        return self

    def mov(self, dest, src) -> "ProgramBuilder":
        """``dest = mov(src)`` convenience."""
        return self.op(dest, "mov", [src])

    def load(self, dest, addr_args) -> "ProgramBuilder":
        self._pending.append(("load", (self._reg(dest),
                                       operands(*addr_args))))
        return self

    def store(self, src, addr_args) -> "ProgramBuilder":
        src_op = operands(src)[0]
        self._pending.append(("store", (src_op, operands(*addr_args))))
        return self

    def br(self, opcode: str, args, if_true: Target,
           if_false: Target) -> "ProgramBuilder":
        self._pending.append(("br", (opcode, operands(*args),
                                     if_true, if_false)))
        return self

    def jmpi(self, addr_args) -> "ProgramBuilder":
        self._pending.append(("jmpi", (operands(*addr_args),)))
        return self

    def call(self, target: Target,
             ret_to: Optional[Target] = None) -> "ProgramBuilder":
        self._pending.append(("call", (target, ret_to)))
        return self

    def ret(self) -> "ProgramBuilder":
        self._pending.append(("ret", ()))
        return self

    def fence(self, self_loop: bool = False) -> "ProgramBuilder":
        """A speculation barrier; with ``self_loop`` its successor is
        itself, so speculative fetch can never proceed past it (the
        retpoline landing pad of Fig 13)."""
        self._pending.append(("fence", (self_loop,)))
        return self

    def halt(self) -> "ProgramBuilder":
        """Reserve an unmapped point: fetching it terminates execution."""
        self._pending.append(("halt", ()))
        return self

    # -- build ----------------------------------------------------------------

    def build(self, entry: Optional[Target] = None) -> Program:
        points = {idx: self._base + idx for idx in range(len(self._pending))}
        labels = {name: self._base + idx for name, idx in self._labels.items()}

        def resolve(t: Target) -> int:
            if isinstance(t, int):
                return t
            if t not in labels:
                raise AssemblerError(f"undefined label {t!r}")
            return labels[t]

        instrs: Dict[int, Instruction] = {}
        for idx, (kind, payload) in enumerate(self._pending):
            n = points[idx]
            nxt = n + 1
            if kind == "op":
                dest, opcode, args = payload
                instrs[n] = Op(dest, opcode, args, nxt)
            elif kind == "load":
                dest, args = payload
                instrs[n] = Load(dest, args, nxt)
            elif kind == "store":
                src, args = payload
                instrs[n] = Store(src, args, nxt)
            elif kind == "br":
                opcode, args, t, f = payload
                instrs[n] = Br(opcode, args, resolve(t), resolve(f))
            elif kind == "jmpi":
                (args,) = payload
                instrs[n] = Jmpi(args)
            elif kind == "call":
                target, ret_to = payload
                instrs[n] = Call(resolve(target),
                                 resolve(ret_to) if ret_to is not None else nxt)
            elif kind == "ret":
                instrs[n] = Ret()
            elif kind == "fence":
                (self_loop,) = payload
                instrs[n] = Fence(n if self_loop else nxt)
            elif kind == "halt":
                pass
            else:  # pragma: no cover
                raise AssemblerError(f"unknown kind {kind!r}")
        if not instrs:
            raise AssemblerError("program has no instructions")
        entry_point = resolve(entry) if entry is not None else self._base
        return Program(instrs, entry=entry_point, labels=labels)

    @staticmethod
    def _reg(name) -> Reg:
        return name if isinstance(name, Reg) else Reg(name)
