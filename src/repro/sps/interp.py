"""Sequential interpreter for the speculation-passing product program.

The second opinion.  Where :mod:`repro.pitchfork.explorer` drives an
out-of-order machine through worst-case directive schedules, this
interpreter runs the *transformed* program — the original instructions
plus the speculative arms the transformation materialised
(:mod:`repro.sps.transform`) — strictly **in order**, and checks plain
sequential constant time on every resolved arm.

The product semantics, in full:

* Execution is in-order over labelled values; each instruction consumes
  one *fetch index* (``call`` three, ``ret`` four — the reorder-buffer
  footprint of their expanded groups), and the speculation window is
  measured in fetch indices.
* Stores execute into a **sliding store buffer**: a store becomes
  architectural (``write`` observation, memory update) only once it is
  ``bound`` fetch indices old — until then younger loads may forward
  from it, which is exactly the window in which Spectre v4 choices
  exist.  Resolving a store's address emits ``fwd`` immediately, as the
  machine does.
* A wrong speculative choice — wrong branch side, mistrained indirect
  target, stale-memory load under a pending matching store, forward
  from the wrong store — opens an **excursion**: execution simply
  continues in-order down the wrong arm, but the path is doomed to end
  once the fetch index reaches the excursion's window end (the point at
  which the machine would detect the misprediction or hazard and roll
  back).  Rollback needs no modelling beyond that: the architectural
  continuation after rollback is, observation-for-observation, the
  sibling arm that made the correct choice.  Speculative stores die
  with the excursion; architectural (pre-excursion) stores still age
  out and commit during it, exactly as the machine retires entries
  older than an unresolved branch.
* ``fence`` drains the store buffer on the architectural path and
  terminates any excursion (nothing younger than a fence executes
  speculatively).
* ``call``/``ret`` maintain a shadow RSB; a return whose predicted
  target disagrees with the loaded return address forks the mistrained
  continuation as an excursion, with the usual RSB-underflow policies
  ("directive" explores attacker targets, "circular" replays the last
  popped prediction, "refuse" stops).

Every observation a step produces — ``read``/``fwd``/``write``/``jump``
with the label join of its address operands — is checked on the spot;
secret-dependent ones become :class:`repro.pitchfork.explorer.Violation`
records (one witness per distinct observation), so downstream report
plumbing is shared with the first opinion verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.config import Config
from ..core.directives import Directive, Execute, Fetch
from ..core.errors import ReproError
from ..core.isa import (Br, Call, ConcreteEvaluator, Evaluator, Fence, Jmpi,
                        Load, Op, Ret, Store)
from ..core.machine import RSP
from ..core.memory import Memory
from ..core.observations import (Fwd, Jump, Observation, Read, Write,
                                 is_secret_dependent)
from ..core.program import Program
from ..core.values import Reg, Value
from ..pitchfork.explorer import Violation
from .transform import site_counts, speculation_sites

#: Cap on the per-path schedule/trace tails kept for violation reports
#: (summaries only ever show the last 8); the step *counter* is exact.
_TAIL = 64


class _Stuck(ReproError):
    """A path read an undefined register / non-integer address: the
    machine's StuckError analogue — the path ends, prior observations
    stand."""


@dataclass(frozen=True)
class _Frame:
    """One open excursion: wrong-choice kind and its window end
    (exclusive fetch index at which the machine would roll back)."""

    kind: str
    end: int


class _BufStore:
    """A store executed but not yet architectural."""

    __slots__ = ("index", "addr", "value", "label")

    def __init__(self, index: int, addr: int, value: Value, label) -> None:
        self.index = index
        self.addr = addr
        self.value = value
        self.label = label


class _State:
    """One in-order path of the product program (mutable; cloned at
    forks)."""

    __slots__ = ("regs", "mem", "pc", "buf", "frames", "rsb", "last_popped",
                 "idx", "schedule", "trace", "nsteps")

    def __init__(self, regs: Dict[Reg, Value], mem: Memory,
                 pc: Optional[int]) -> None:
        self.regs = regs
        self.mem = mem
        self.pc = pc
        self.buf: List[_BufStore] = []
        self.frames: List[_Frame] = []
        self.rsb: List[int] = []
        self.last_popped = 0
        self.idx = 0
        self.schedule: List[Directive] = []
        self.trace: List[Observation] = []
        self.nsteps = 0

    def clone(self) -> "_State":
        other = _State.__new__(_State)
        other.regs = dict(self.regs)
        other.mem = self.mem
        other.pc = self.pc
        other.buf = list(self.buf)
        other.frames = list(self.frames)
        other.rsb = list(self.rsb)
        other.last_popped = self.last_popped
        other.idx = self.idx
        other.schedule = list(self.schedule)
        other.trace = list(self.trace)
        other.nsteps = self.nsteps
        return other

    @property
    def window_end(self) -> Optional[int]:
        if not self.frames:
            return None
        return min(frame.end for frame in self.frames)

    def capped_end(self, end: int) -> int:
        cur = self.window_end
        return end if cur is None else min(cur, end)


@dataclass
class SpsResult:
    """Everything the speculation-passing check found."""

    violations: List[Violation] = field(default_factory=list)
    paths_explored: int = 0
    states_stepped: int = 0
    truncated: bool = False     #: max_paths was hit
    #: Paths cut short by a per-path budget (max_steps / max_fetches) —
    #: non-terminating product programs (a ``ret`` looping through a
    #: just-written return address) end up here, exactly as the
    #: explorer's per-path ``max_fetches`` cuts the machine's loops.
    exhausted_paths: int = 0
    #: Per-kind counts from the transformation's site table.
    sites: Mapping[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """No budget interfered: the flagged set is the full set."""
        return not self.truncated and not self.exhausted_paths

    @property
    def secure(self) -> bool:
        return not self.violations


class _Interp:
    def __init__(self, program: Program, *, bound: int, fwd_hazards: bool,
                 explore_aliasing: bool, jmpi_targets: Tuple[int, ...],
                 rsb_targets: Tuple[int, ...], rsb_policy: str,
                 max_paths: int, max_fetches: int, max_steps: int,
                 stop_at_first: bool, evaluator: Evaluator) -> None:
        self.program = program
        self.bound = bound
        self.fwd_hazards = fwd_hazards
        self.explore_aliasing = explore_aliasing
        self.jmpi_targets = jmpi_targets
        self.rsb_targets = rsb_targets
        self.rsb_policy = rsb_policy
        self.max_paths = max_paths
        self.max_fetches = max_fetches
        self.max_steps = max_steps
        self.stop_at_first = stop_at_first
        self.ev = evaluator
        self.result = SpsResult()
        self.seen: set = set()
        self.stack: List[_State] = []
        self.done = False

    # -- bookkeeping --------------------------------------------------------

    def _record(self, st: _State, directive: Directive,
                obs: Observation) -> None:
        st.schedule.append(directive)
        st.trace.append(obs)
        st.nsteps += 1
        if len(st.schedule) > _TAIL:
            del st.schedule[:-_TAIL]
            del st.trace[:-_TAIL]
        if is_secret_dependent(obs) and repr(obs) not in self.seen:
            self.seen.add(repr(obs))
            self.result.violations.append(Violation(
                observation=obs, step_index=st.nsteps - 1,
                directive=directive, buffer_index=st.idx,
                schedule=tuple(st.schedule), trace=tuple(st.trace)))
            if self.stop_at_first:
                self.done = True

    def _silent(self, st: _State, directive: Directive) -> None:
        st.schedule.append(directive)
        st.nsteps += 1
        if len(st.schedule) > _TAIL:
            del st.schedule[:-_TAIL]

    def _end_path(self, st: _State) -> None:
        if not st.frames:
            self._drain(st)
        self.result.paths_explored += 1

    def _drain(self, st: _State) -> None:
        """Commit every buffered store (program end / fence)."""
        for entry in st.buf:
            st.mem = st.mem.write(entry.addr, entry.value)
            self._record(st, Execute(entry.index),
                         Write(entry.addr, entry.label))
        del st.buf[:]

    def _commit_aged(self, st: _State) -> None:
        """Slide the window: stores ``bound`` indices old retire."""
        while st.buf and st.buf[0].index <= st.idx - self.bound:
            entry = st.buf.pop(0)
            st.mem = st.mem.write(entry.addr, entry.value)
            self._record(st, Execute(entry.index),
                         Write(entry.addr, entry.label))

    def _operand(self, st: _State, rv) -> Value:
        if isinstance(rv, Value):
            return rv
        got = st.regs.get(rv)
        if got is None:
            raise _Stuck(f"undefined register {rv!r}")
        return got

    def _operands(self, st: _State, rvs) -> Tuple[Value, ...]:
        return tuple(self._operand(st, rv) for rv in rvs)

    def _address(self, st: _State, args) -> Tuple[int, Value]:
        addr_v = self.ev.address(self._operands(st, args))
        try:
            return self.ev.concretize(addr_v), addr_v
        except ReproError as exc:
            raise _Stuck(str(exc))

    # -- load forwarding arms ----------------------------------------------

    def _load_arms(self, st: _State, addr: int, addr_v: Value,
                   load_idx: int):
        """The correct resolution plus every materialised wrong arm.

        Returns ``(value, obs, anchor, kind, directive)`` tuples; the
        first entry is the architecturally correct arm (``anchor`` is
        None), the rest open excursions ending at ``anchor + bound`` —
        the index at which the invalidating store's address resolution
        raises the hazard.
        """
        label = addr_v.label
        matching = [entry for entry in st.buf if entry.addr == addr]
        arms = []
        if matching:
            newest = matching[-1]
            arms.append((newest.value, Fwd(addr, label), None, None,
                         Execute(load_idx)))
        else:
            arms.append((st.mem.read(addr), Read(addr, label), None, None,
                         Execute(load_idx)))
        if self.fwd_hazards and matching:
            oldest = matching[0]
            arms.append((st.mem.read(addr), Read(addr, label), oldest.index,
                         "bypass", Execute(oldest.index, "addr")))
            for pos, entry in enumerate(matching[:-1]):
                invalidating = matching[pos + 1]
                arms.append((entry.value, Fwd(addr, label),
                             invalidating.index, "fwd",
                             Execute(load_idx, entry.index)))
        if self.explore_aliasing:
            # The aliasing guess (§3.5) validates only when the *load*
            # resolves its own address — by which time the originating
            # store has retired, so the machine validates against
            # memory and the observation is a ``read`` at the load's
            # true address, not a ``fwd``.  The wrong value lives until
            # that validation: the window is anchored at the load.
            for entry in st.buf:
                if entry.addr != addr:
                    arms.append((entry.value, Read(addr, label), load_idx,
                                 "alias", Execute(load_idx, entry.index)))
        return arms

    # -- instruction steps --------------------------------------------------

    def _step_op(self, st: _State, instr: Op) -> None:
        value = self.ev.evaluate(instr.opcode, self._operands(st, instr.args))
        st.regs[instr.dest] = value
        self._silent(st, Execute(st.idx))
        st.pc = instr.next
        st.idx += 1

    def _step_load(self, st: _State, instr: Load) -> None:
        addr, addr_v = self._address(st, instr.args)
        arms = self._load_arms(st, addr, addr_v, st.idx)
        for value, obs, anchor, kind, directive in arms[1:]:
            wrong = st.clone()
            wrong.frames.append(_Frame(kind,
                                       wrong.capped_end(anchor + self.bound)))
            if kind == "alias" and st.frames:
                # An aliasing guess emits its fwd only at validation
                # (when the load's address resolves); nested inside an
                # excursion the enclosing rollback squashes the guess
                # first, so the machine never observes it.
                self._silent(wrong, directive)
            else:
                self._record(wrong, directive, obs)
            wrong.regs[instr.dest] = value
            wrong.pc = instr.next
            wrong.idx += 1
            self.stack.append(wrong)
        value, obs, _, _, directive = arms[0]
        self._record(st, directive, obs)
        st.regs[instr.dest] = value
        st.pc = instr.next
        st.idx += 1

    def _step_store(self, st: _State, instr: Store) -> None:
        value = self._operand(st, instr.src)
        addr, addr_v = self._address(st, instr.args)
        self._record(st, Execute(st.idx, "addr"), Fwd(addr, addr_v.label))
        st.buf.append(_BufStore(st.idx, addr, value, addr_v.label))
        st.pc = instr.next
        st.idx += 1

    def _step_br(self, st: _State, instr: Br) -> None:
        cond = self.ev.evaluate(instr.opcode, self._operands(st, instr.args))
        taken = self.ev.truth(cond)
        correct = instr.n_true if taken else instr.n_false
        mispredicted = instr.n_false if taken else instr.n_true
        branch_idx = st.idx
        wrong = st.clone()
        wrong.frames.append(_Frame(
            "mispredict", wrong.capped_end(branch_idx + self.bound)))
        self._silent(wrong, Fetch(not taken))
        wrong.pc = mispredicted
        wrong.idx = branch_idx + 1
        self.stack.append(wrong)
        self._record(st, Execute(branch_idx), Jump(correct, cond.label))
        st.pc = correct
        st.idx = branch_idx + 1

    def _step_jmpi(self, st: _State, instr: Jmpi) -> None:
        target, addr_v = self._address(st, instr.args)
        jmpi_idx = st.idx
        for trained in self.jmpi_targets:
            if trained == target:
                continue
            wrong = st.clone()
            wrong.frames.append(_Frame(
                "mispredict", wrong.capped_end(jmpi_idx + self.bound)))
            self._silent(wrong, Fetch(trained))
            wrong.pc = trained
            wrong.idx = jmpi_idx + 1
            self.stack.append(wrong)
        self._record(st, Execute(jmpi_idx), Jump(target, addr_v.label))
        st.pc = target
        st.idx = jmpi_idx + 1

    def _step_fence(self, st: _State, instr: Fence) -> None:
        if st.frames:
            # Nothing younger than a fence executes speculatively: the
            # excursion is over.
            st.pc = None
            return
        self._drain(st)
        self._silent(st, Execute(st.idx))
        st.pc = instr.next
        st.idx += 1

    def _step_call(self, st: _State, instr: Call) -> None:
        rsp = self._operand(st, RSP)
        new_rsp = self.ev.evaluate("succ", (rsp,))
        st.regs[RSP] = new_rsp
        try:
            addr = self.ev.concretize(new_rsp)
        except ReproError as exc:
            raise _Stuck(str(exc))
        # The expanded group is marker/op/store: three buffer slots,
        # the return-address store in the third.
        store_idx = st.idx + 2
        self._record(st, Execute(store_idx, "addr"),
                     Fwd(addr, new_rsp.label))
        st.buf.append(_BufStore(store_idx, addr, Value(instr.ret),
                                new_rsp.label))
        st.rsb.append(instr.ret)
        st.pc = instr.target
        st.idx += 3

    def _step_ret(self, st: _State, instr: Ret) -> None:
        # Prediction first: it is a property of the shadow RSB, shared
        # by every forwarding arm of the return-address load.
        if st.rsb:
            predicted: Optional[int] = st.rsb.pop()
            st.last_popped = predicted
        elif self.rsb_policy == "refuse":
            raise _Stuck("ret with an empty RSB (policy: refuse)")
        elif self.rsb_policy == "circular":
            predicted = st.last_popped
        else:  # "directive": attacker supplies the fetch target
            predicted = None
        rsp = self._operand(st, RSP)
        addr_v = self.ev.address((rsp,))
        try:
            addr = self.ev.concretize(addr_v)
        except ReproError as exc:
            raise _Stuck(str(exc))
        # Group footprint marker/load/op/jmpi: four slots, load second,
        # jmpi fourth.
        load_idx = st.idx + 1
        jmpi_idx = st.idx + 3
        st.regs[RSP] = self.ev.evaluate("pred", (rsp,))
        arms = self._load_arms(st, addr, addr_v, load_idx)
        correct_value, correct_obs, _, _, correct_dir = arms[0]
        for value, obs, anchor, kind, directive in arms[1:]:
            wrong = st.clone()
            wrong.frames.append(_Frame(kind,
                                       wrong.capped_end(anchor + self.bound)))
            if kind == "alias" and st.frames:
                self._silent(wrong, directive)  # see _step_load
            else:
                self._record(wrong, directive, obs)
            self._finish_ret(wrong, value, predicted, jmpi_idx,
                             speculative_load=True)
        self._record(st, correct_dir, correct_obs)
        self._finish_ret(st, correct_value, predicted, jmpi_idx,
                         speculative_load=False)

    def _finish_ret(self, st: _State, value: Value,
                    predicted: Optional[int], jmpi_idx: int,
                    *, speculative_load: bool) -> None:
        """Resolve the return's indirect jump against the prediction.

        Every continuation (the architectural one included) is pushed
        onto the DFS stack: the main loop hands control back after a
        ``ret`` and re-pops them.
        """
        end = st.idx + 4
        try:
            actual = self.ev.concretize(value)
        except ReproError:
            st.pc = None
            self.stack.append(st)
            return
        if predicted is None:
            # RSB underflow, "directive" policy: the attacker may fetch
            # any trained target; the correct continuation resolves with
            # a rollback either way.
            for trained in self.rsb_targets:
                if trained == actual:
                    continue
                wrong = st.clone()
                wrong.frames.append(_Frame(
                    "mispredict", wrong.capped_end(jmpi_idx + self.bound)))
                self._silent(wrong, Fetch(trained))
                wrong.pc = trained
                wrong.idx = end
                self.stack.append(wrong)
        elif predicted != actual:
            # Mispredicted return: the wrong path runs at the predicted
            # target until the jump resolves.
            wrong = st.clone()
            wrong.frames.append(_Frame(
                "mispredict", wrong.capped_end(jmpi_idx + self.bound)))
            self._silent(wrong, Fetch(predicted))
            wrong.pc = predicted
            wrong.idx = end
            self.stack.append(wrong)
        if speculative_load and predicted is not None and predicted == actual:
            # A wrong forwarded value that happens to match the
            # prediction never resolves before the forwarding hazard
            # squashes the group: no transient jump observation.
            self._silent(st, Execute(jmpi_idx))
            st.pc = predicted
        else:
            self._record(st, Execute(jmpi_idx), Jump(actual, value.label))
            st.pc = actual
        st.idx = end
        self.stack.append(st)

    # -- driver -------------------------------------------------------------

    def run(self, config: Config) -> SpsResult:
        root = _State(dict(config.regs), config.mem, config.pc)
        self.stack.append(root)
        while self.stack and not self.done:
            if self.result.paths_explored >= self.max_paths:
                self.result.truncated = True
                break
            st = self.stack.pop()
            self._run_path(st)
        return self.result

    def _run_path(self, st: _State) -> None:
        while not self.done:
            if st.nsteps >= self.max_steps or st.idx >= self.max_fetches:
                # Per-path budgets, mirroring the explorer's
                # max_steps/max_fetches: this path is cut, but every
                # queued sibling arm still runs — a non-terminating
                # architectural loop cannot starve the search.
                self.result.exhausted_paths += 1
                self.result.paths_explored += 1
                return
            end = st.window_end
            if end is not None and st.idx >= end:
                break  # rollback point: the excursion's window is spent
            if st.pc is None:
                break
            instr = self.program.get(st.pc)
            if instr is None:
                st.pc = None
                break
            self._commit_aged(st)
            self.result.states_stepped += 1
            try:
                if isinstance(instr, Op):
                    self._step_op(st, instr)
                elif isinstance(instr, Load):
                    self._step_load(st, instr)
                elif isinstance(instr, Store):
                    self._step_store(st, instr)
                elif isinstance(instr, Br):
                    self._step_br(st, instr)
                elif isinstance(instr, Jmpi):
                    self._step_jmpi(st, instr)
                elif isinstance(instr, Fence):
                    self._step_fence(st, instr)
                elif isinstance(instr, Call):
                    self._step_call(st, instr)
                elif isinstance(instr, Ret):
                    self._step_ret(st, instr)
                    return  # _step_ret queued every continuation
                else:  # pragma: no cover - exhaustive over the ISA
                    raise _Stuck(f"unknown instruction {instr!r}")
            except _Stuck:
                break
        self._end_path(st)


def explore_sps(program: Program, config: Config, *,
                bound: int = 20,
                fwd_hazards: bool = True,
                explore_aliasing: bool = False,
                jmpi_targets: Sequence[int] = (),
                rsb_targets: Sequence[int] = (),
                rsb_policy: str = "directive",
                max_paths: int = 20_000,
                max_fetches: int = 2_000,
                max_steps: int = 40_000,
                stop_at_first: bool = True,
                evaluator: Optional[Evaluator] = None) -> SpsResult:
    """Decide speculative constant time by sequential check of the
    speculation-passing product program.

    Knobs mirror :func:`repro.pitchfork.analyze` — same speculation
    bound, same Spectre-variant toggles, same per-path
    ``max_fetches``/``max_steps`` budgets — so the two backends are run
    on identical questions and their flagged observation sets are
    directly comparable.
    """
    if rsb_policy not in ("directive", "refuse", "circular"):
        raise ValueError(f"unknown rsb_policy {rsb_policy!r}")
    if bound < 1:
        raise ValueError(f"speculation bound must be >= 1, got {bound}")
    interp = _Interp(program,
                     bound=bound,
                     fwd_hazards=fwd_hazards,
                     explore_aliasing=explore_aliasing,
                     jmpi_targets=tuple(jmpi_targets),
                     rsb_targets=tuple(rsb_targets),
                     rsb_policy=rsb_policy,
                     max_paths=max_paths,
                     max_fetches=max_fetches,
                     max_steps=max_steps,
                     stop_at_first=stop_at_first,
                     evaluator=evaluator or ConcreteEvaluator())
    result = interp.run(config)
    result.sites = site_counts(speculation_sites(
        program, fwd_hazards=fwd_hazards, explore_aliasing=explore_aliasing,
        jmpi_targets=jmpi_targets, rsb_targets=rsb_targets))
    return result
