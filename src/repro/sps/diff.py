"""Differential harness: the SPS backend vs the explorer oracle.

Two independent decision procedures for speculative constant time exist
in this tree — the out-of-order :mod:`repro.pitchfork` explorer and the
sequential speculation-passing check (:mod:`repro.sps`).  They share no
semantics code, so their *agreement artifact* — the set of flagged
secret-dependent observations, ``sorted({repr(v.observation)})`` over a
``stop_at_first=False`` run with identical knobs — is a strong
correctness signal, and every divergence is a bug in one of them.

This module hunts for divergences:

* :func:`sweep_registry` runs both backends over every registered
  litmus case, at that case's ground-truth options;
* :func:`sweep_random` adds seeded random programs in three flavours —
  the plain loop-free generator, the same with the §3.5
  aliasing-prediction extension, and an extended ``call``/``ret``
  generator (:func:`random_callret_program`) with stack-smashing stores
  and random RSB policies, which the plain generator never emits;
* :func:`minimize` delta-debugs a disagreeing program down to a minimal
  instruction sequence that still disagrees, for landing as a
  :mod:`repro.litmus.diffregress` regression case.

Classification protocol: backends may legitimately differ when either
run was cut by a search budget (``max_paths`` truncation or per-path
``max_fetches``/``max_steps`` exhaustion — non-terminating product
programs built from ``ret``-through-just-written-return-address loops
are the common cause).  Such records are ``explained-budget``, reported
but not failures.  A divergence between two *complete* runs is a real
``disagree`` — the harness minimises it and exits nonzero.

Run it directly::

    python -m repro.sps.diff --random 50 --seed 0 --check
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..api.project import AnalysisOptions
from ..core.config import Config
from ..core.isa import (Br, Call, Fence, Instruction, Load, Op, Ret, Store)
from ..core.lattice import PUBLIC, SECRET
from ..core.machine import Machine
from ..core.memory import Memory, Region
from ..core.program import Program
from ..core.values import Reg, Value, operands
from ..litmus import all_cases
from ..pitchfork.explorer import ExplorationOptions, Explorer
from ..verify.generators import (ARENA, ARENA_SIZE, REGS, random_config,
                                 random_program)
from .interp import explore_sps

#: Stack region for the call/ret generator (below the arena, like the
#: spec_rsb litmus cases).
STACK = 0x20
STACK_SIZE = 8
#: Initial stack pointer: the top slot of the stack region.
RSP_INIT = STACK + STACK_SIZE - 1


@dataclass
class DiffRecord:
    """One backend-vs-backend comparison and its verdict."""

    name: str
    program: Program
    config: Config
    options: AnalysisOptions
    pf_obs: Tuple[str, ...]
    sps_obs: Tuple[str, ...]
    pf_complete: bool
    sps_complete: bool
    pf_wall: float
    sps_wall: float
    #: Filled by the sweep when a real disagreement is minimised.
    minimized: Optional[Program] = None

    @property
    def agree(self) -> bool:
        return self.pf_obs == self.sps_obs

    @property
    def explained(self) -> bool:
        """Divergent, but a search budget interfered with either run."""
        return not self.agree and not (self.pf_complete and self.sps_complete)

    @property
    def disagree(self) -> bool:
        """Divergent with both runs complete: a real bug somewhere."""
        return not self.agree and self.pf_complete and self.sps_complete

    @property
    def status(self) -> str:
        if self.agree:
            return "agree"
        return "explained-budget" if self.explained else "DISAGREE"

    def section(self) -> dict:
        """The report's ``cross_check`` mapping (schema 8).

        Everything is deterministic except the two wall times, which
        the store's ``strip_volatile`` zeroes by their ``_wall_time``
        suffix.
        """
        return {
            "backends": ["pitchfork", "sps"],
            "pitchfork_observations": list(self.pf_obs),
            "sps_observations": list(self.sps_obs),
            "pitchfork_complete": self.pf_complete,
            "sps_complete": self.sps_complete,
            "agree": self.agree,
            "classification": self.status.lower(),
            "pitchfork_wall_time": self.pf_wall,
            "sps_wall_time": self.sps_wall,
        }


def _pf_observations(program: Program, config: Config,
                     options: AnalysisOptions) -> Tuple[Tuple[str, ...], bool]:
    """The explorer's flagged observation set, plus completeness."""
    opts = ExplorationOptions(
        bound=options.bound,
        fwd_hazards=options.fwd_hazards,
        explore_aliasing=options.explore_aliasing,
        jmpi_targets=options.jmpi_targets,
        rsb_targets=options.rsb_targets,
        max_paths=options.max_paths,
        max_steps=options.max_steps)
    explorer = Explorer(Machine(program, rsb_policy=options.rsb_policy), opts)
    result = explorer.explore(config, stop_at_first=False)
    obs = tuple(sorted({repr(v.observation) for v in result.violations}))
    complete = not result.truncated and result.exhausted_paths == 0
    return obs, complete


def _sps_observations(program: Program, config: Config,
                      options: AnalysisOptions) -> Tuple[Tuple[str, ...], bool]:
    """The SPS backend's flagged observation set, plus completeness."""
    result = explore_sps(
        program, config,
        bound=options.bound,
        fwd_hazards=options.fwd_hazards,
        explore_aliasing=options.explore_aliasing,
        jmpi_targets=options.jmpi_targets,
        rsb_targets=options.rsb_targets,
        rsb_policy=options.rsb_policy,
        max_paths=options.max_paths,
        max_steps=options.max_steps,
        stop_at_first=False)
    obs = tuple(sorted({repr(v.observation) for v in result.violations}))
    return obs, result.complete


def compare(program: Program, config: Config,
            options: Optional[AnalysisOptions] = None,
            name: str = "<program>") -> DiffRecord:
    """Run both backends on identical questions and compare the
    agreement artifact."""
    if options is None:
        options = AnalysisOptions()
    t0 = time.perf_counter()
    pf_obs, pf_complete = _pf_observations(program, config, options)
    t1 = time.perf_counter()
    sps_obs, sps_complete = _sps_observations(program, config, options)
    t2 = time.perf_counter()
    return DiffRecord(name=name, program=program, config=config,
                      options=options, pf_obs=pf_obs, sps_obs=sps_obs,
                      pf_complete=pf_complete, sps_complete=sps_complete,
                      pf_wall=t1 - t0, sps_wall=t2 - t1)


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------

def sweep_registry() -> List[DiffRecord]:
    """Both backends over every registered litmus case, at the case's
    ground-truth options."""
    records = []
    for case in all_cases():
        options = AnalysisOptions.for_case(case)
        records.append(compare(case.program, case.config(), options,
                               name=case.name))
    return records


def random_callret_program(rng: random.Random,
                           body_length: int = 5,
                           fn_length: int = 3) -> Program:
    """A random program exercising ``call``/``ret``: a straight-line
    main body with one call into a small function whose body may smash
    the just-pushed return address (``store .. [%rsp]``) — the shapes
    the loop-free generator never emits, and exactly where the RSB,
    return-address forwarding, and rollback models of the two backends
    can drift apart."""
    instrs: Dict[int, Instruction] = {}
    fn_entry = body_length + 2
    call_at = rng.randrange(1, body_length + 1)
    for n in range(1, body_length + 1):
        if n == call_at:
            instrs[n] = Call(fn_entry, n + 1)
        else:
            instrs[n] = _body_instr(rng, n, n + 1, allow_rsp=False)
    # Main falls off at body_length + 1 (missing point: halt).
    pp = fn_entry
    for _ in range(fn_length):
        instrs[pp] = _body_instr(rng, pp, pp + 1, allow_rsp=True)
        pp += 1
    instrs[pp] = Ret()
    return Program(instrs, entry=1)


def _body_instr(rng: random.Random, n: int, nxt: int,
                allow_rsp: bool) -> Instruction:
    """One straight-line instruction for the call/ret generator."""
    kind = rng.choices(("op", "load", "store", "rsp_store"),
                       weights=(30, 30, 25, 15 if allow_rsp else 0))[0]
    if kind == "op":
        return Op(Reg(rng.choice(REGS)), rng.choice(("add", "and", "ltu")),
                  operands(rng.choice(REGS), rng.randrange(8)), nxt)
    if kind == "load":
        if rng.random() < 0.5:
            args = operands(ARENA + rng.randrange(ARENA_SIZE))
        else:
            args = operands(ARENA, rng.choice(REGS))
        return Load(Reg(rng.choice(REGS)), args, nxt)
    if kind == "rsp_store":
        # Smash the return-address slot: value forwards into the ret.
        src = (Value(rng.randrange(1, 10)) if rng.random() < 0.5
               else Reg(rng.choice(REGS)))
        return Store(src, operands("rsp"), nxt)
    src = (Value(rng.randrange(8)) if rng.random() < 0.5
           else Reg(rng.choice(REGS)))
    return Store(src, operands(ARENA + rng.randrange(ARENA_SIZE)), nxt)


def random_callret_config(rng: random.Random,
                          p_secret_data: float = 0.3) -> Config:
    """An initial configuration with a stack region and ``%rsp``."""
    regs = {}
    for r in REGS:
        label = SECRET if rng.random() < p_secret_data else PUBLIC
        regs[r] = Value(rng.randrange(ARENA_SIZE), label)
    regs["rsp"] = Value(RSP_INIT)
    mem = Memory()
    mem = mem.with_region(Region("stack", STACK, STACK_SIZE, PUBLIC), None)
    mem = mem.with_region(Region("arena", ARENA, ARENA_SIZE, PUBLIC), None)
    cells = []
    for off in range(ARENA_SIZE):
        label = SECRET if rng.random() < p_secret_data else PUBLIC
        cells.append((ARENA + off, Value(rng.randrange(16), label)))
    mem = mem.write_all(cells)
    return Config.initial(regs, mem, pc=1)


def sweep_random(n: int = 50, seed: int = 0) -> List[DiffRecord]:
    """``n`` seeded random comparisons cycling through three flavours:
    plain loop-free programs, the same under the aliasing-prediction
    extension, and call/ret programs with random RSB policies."""
    records = []
    for i in range(n):
        rng = random.Random(seed * 1_000_003 + i)
        flavour = ("plain", "aliasing", "callret")[i % 3]
        if flavour == "plain":
            program = random_program(rng, length=10)
            config = random_config(rng)
            options = AnalysisOptions(bound=12, fwd_hazards=True,
                                      stop_at_first=False)
        elif flavour == "aliasing":
            program = random_program(rng, length=8)
            config = random_config(rng)
            options = AnalysisOptions(bound=12, fwd_hazards=True,
                                      explore_aliasing=True,
                                      stop_at_first=False)
        else:
            program = random_callret_program(rng)
            config = random_callret_config(rng)
            policy = rng.choice(("directive", "circular", "refuse"))
            targets = tuple(sorted(rng.sample(
                sorted(program.points()), k=min(2, len(program))))) \
                if policy == "directive" and rng.random() < 0.5 else ()
            options = AnalysisOptions(bound=8, fwd_hazards=True,
                                      rsb_policy=policy, rsb_targets=targets,
                                      stop_at_first=False)
        record = compare(program, config, options,
                         name=f"random-{flavour}-{seed}-{i}")
        if record.disagree:
            record.minimized = minimize(program, config, options)
        records.append(record)
    return records


# ---------------------------------------------------------------------------
# Delta-debugging minimiser
# ---------------------------------------------------------------------------

def _still_disagrees(program: Program, config: Config,
                     options: AnalysisOptions) -> bool:
    try:
        record = compare(program, config, options)
    except Exception:  # a shrink step may produce a degenerate program
        return False
    return record.disagree


def _drop_instruction(program: Program, pp: int) -> Optional[Program]:
    """``program`` without point ``pp``, references rewired to its
    fall-through successor.  Only sequential instructions (those with a
    static ``next``) and calls (rewired to their return point) can be
    dropped; None when ``pp`` has no unambiguous successor."""
    victim = program.get(pp)
    if victim is None:
        return None
    if isinstance(victim, (Op, Load, Store, Fence)):
        successor = victim.next
    elif isinstance(victim, Call):
        successor = victim.ret
    else:
        return None

    def rewire(target: int) -> int:
        return successor if target == pp else target

    instrs: Dict[int, Instruction] = {}
    for point, instr in program.items():
        if point == pp:
            continue
        if isinstance(instr, (Op, Load, Store, Fence)):
            instr = replace(instr, next=rewire(instr.next))
        elif isinstance(instr, Br):
            instr = replace(instr, n_true=rewire(instr.n_true),
                            n_false=rewire(instr.n_false))
        elif isinstance(instr, Call):
            instr = replace(instr, target=rewire(instr.target),
                            ret=rewire(instr.ret))
        instrs[point] = instr
    entry = rewire(program.entry)
    if entry not in instrs:
        return None
    return Program(instrs, entry=entry)


def minimize(program: Program, config: Config,
             options: Optional[AnalysisOptions] = None,
             still_fails: Optional[Callable[[Program], bool]] = None
             ) -> Program:
    """Greedy delta-debug: repeatedly drop single instructions while the
    disagreement (or the caller's ``still_fails`` predicate) persists."""
    if options is None:
        options = AnalysisOptions()
    if still_fails is None:
        def still_fails(candidate: Program) -> bool:
            return _still_disagrees(candidate, config, options)
    current = program
    shrunk = True
    while shrunk:
        shrunk = False
        for pp in sorted(current.points()):
            candidate = _drop_instruction(current, pp)
            if candidate is not None and still_fails(candidate):
                current = candidate
                shrunk = True
                break
    return current


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _print_record(record: DiffRecord, verbose: bool) -> None:
    line = (f"  {record.name:<28} {record.status:<16} "
            f"pf={record.pf_wall:.3f}s sps={record.sps_wall:.3f}s")
    print(line)
    if verbose or not record.agree:
        print(f"    pf : {list(record.pf_obs)} "
              f"(complete={record.pf_complete})")
        print(f"    sps: {list(record.sps_obs)} "
              f"(complete={record.sps_complete})")
    if record.minimized is not None:
        print("    minimised repro:")
        for pp, instr in sorted(record.minimized.items()):
            print(f"      {pp}: {instr!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.sps.diff",
        description="Differential sweep: SPS backend vs the explorer.")
    parser.add_argument("--random", type=int, default=50, metavar="N",
                        help="seeded random programs to sweep (default 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (default 0)")
    parser.add_argument("--skip-registry", action="store_true",
                        help="random sweep only")
    parser.add_argument("--verbose", action="store_true",
                        help="print observation sets for agreeing cases too")
    args = parser.parse_args(argv)

    records: List[DiffRecord] = []
    if not args.skip_registry:
        print("== litmus registry ==")
        for record in sweep_registry():
            records.append(record)
            _print_record(record, args.verbose)
    if args.random > 0:
        print(f"== {args.random} random programs (seed {args.seed}) ==")
        for record in sweep_random(args.random, args.seed):
            records.append(record)
            _print_record(record, args.verbose)

    agree = sum(1 for r in records if r.agree)
    explained = sum(1 for r in records if r.explained)
    disagree = [r for r in records if r.disagree]
    print(f"== {len(records)} comparisons: {agree} agree, "
          f"{explained} explained-budget, {len(disagree)} disagree ==")
    return 1 if disagree else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
