"""Speculation-passing second-opinion backend (``repro.sps``).

An independent decision procedure for speculative constant time: the
speculation-passing transformation materialises the paper's speculative
directives — branch misprediction, store-to-load forwarding hazards,
speculation-window rollback — as *explicit program-level nondeterminism*
(:mod:`repro.sps.transform`), and a plain **sequential** labelled
interpreter (:mod:`repro.sps.interp`) then checks ordinary constant time
over every resolved arm of the product program.  No reorder buffer, no
schedules: a wrong speculative choice becomes a bounded in-order
*excursion* whose length is the speculation window, and rollback is the
end of the excursion path (the architectural continuation is the sibling
arm that made the correct choice).

Because it shares no code with the :mod:`repro.pitchfork` explorer —
different state representation, different search, different rollback
model — agreement between the two backends on the flagged
secret-dependent observation set is strong evidence that neither is
wrong, and every disagreement is a bug in one of them.
:mod:`repro.sps.diff` is the differential harness that hunts for those
disagreements over the litmus registry and seeded random programs, and
delta-debugs each one into a minimal deterministic repro.
"""

from .interp import SpsResult, explore_sps
from .transform import SpecSite, site_counts, speculation_sites

__all__ = [
    "SpecSite",
    "SpsResult",
    "explore_sps",
    "site_counts",
    "speculation_sites",
]
