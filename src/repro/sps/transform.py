"""The speculation-passing transformation: directives → program sites.

The paper's attacker resolves speculation by *directives* supplied to an
out-of-order machine.  Speculation-passing style compiles that
nondeterminism into the program itself: every program point that can
misspeculate becomes an explicit nondeterministic choice — a
:class:`SpecSite` — whose arms are the speculative continuations the
machine could be steered into.  A plain sequential constant-time check
over every arm of the transformed program then decides speculative
constant time for the original.

The table below is the whole transformation.  For each instruction of
the source program it records which speculative arms exist; the
sequential interpreter (:mod:`repro.sps.interp`) consults the table and
forks exactly there, nowhere else:

=========  =============  ====================================================
kind       instruction    arms materialised
=========  =============  ====================================================
mispredict ``br``         fetch the wrong side of the branch for up to
                          ``bound`` instructions, then roll back
mistrain   ``jmpi``       fetch any attacker-trained target (Spectre v2)
bypass     ``load``       read stale memory under a pending matching store,
                          or forward from a *non-youngest* matching store
                          (Spectre v4 / forwarding hazards)
alias      ``load``       forward from a non-matching in-flight store
                          (§3.5 aliasing prediction)
rsb        ``ret``        return-address load takes the ``bypass`` arms, and
                          an underflowing RSB fetches attacker targets
                          (ret2spec)
=========  =============  ====================================================

``fence`` has no site: it is the speculation barrier, so the transformed
program simply ends every excursion there.  ``call`` has no site of its
own but contributes a forwarding source (the return-address store) to
younger ``bypass``/``rsb`` sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from ..core.isa import Br, Call, Fence, Jmpi, Load, Ret, Store
from ..core.program import Program

#: The speculative-arm kinds, in the order tables report them.
SITE_KINDS = ("mispredict", "mistrain", "bypass", "alias", "rsb")


@dataclass(frozen=True)
class SpecSite:
    """One materialised speculative choice point of the product program.

    ``arms`` are the statically known alternative continuations (wrong
    branch side, mistrained targets, attacker return targets); arm kinds
    whose continuations depend on dynamic state (``bypass``, ``alias`` —
    the set of in-flight matching stores) have an empty ``arms`` tuple
    and are resolved by the interpreter against the live store buffer.
    """

    pp: int
    kind: str
    arms: Tuple[int, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        arms = f" -> {list(self.arms)}" if self.arms else ""
        return f"SpecSite({self.kind} @ {self.pp}{arms})"


def speculation_sites(program: Program, *,
                      fwd_hazards: bool = True,
                      explore_aliasing: bool = False,
                      jmpi_targets: Sequence[int] = (),
                      rsb_targets: Sequence[int] = ()
                      ) -> Dict[int, Tuple[SpecSite, ...]]:
    """The site table of the speculation-passing transformation.

    Maps each program point to the speculative choice points
    materialised there.  Program points without speculation (``op``,
    ``fence``, plain ``call``) are absent: the transformed program is
    deterministic there and the sequential check just steps through.
    """
    table: Dict[int, Tuple[SpecSite, ...]] = {}
    for pp, instr in program.items():
        sites = []
        if isinstance(instr, Br):
            sites.append(SpecSite(pp, "mispredict",
                                  (instr.n_true, instr.n_false)))
        elif isinstance(instr, Jmpi):
            sites.append(SpecSite(pp, "mistrain", tuple(jmpi_targets)))
        elif isinstance(instr, Load):
            if fwd_hazards:
                sites.append(SpecSite(pp, "bypass"))
            if explore_aliasing:
                sites.append(SpecSite(pp, "alias"))
        elif isinstance(instr, Ret):
            sites.append(SpecSite(pp, "rsb", tuple(rsb_targets)))
            if fwd_hazards:
                sites.append(SpecSite(pp, "bypass"))
            if explore_aliasing:
                sites.append(SpecSite(pp, "alias"))
        elif isinstance(instr, (Store, Call, Fence)):
            pass  # forwarding sources / barriers, not choice points
        if sites:
            table[pp] = tuple(sites)
    return table


def site_counts(table: Mapping[int, Tuple[SpecSite, ...]]) -> Dict[str, int]:
    """Per-kind site counts — the report's transformation summary."""
    counts = {kind: 0 for kind in SITE_KINDS}
    for sites in table.values():
        for site in sites:
            counts[site.kind] += 1
    return {kind: n for kind, n in counts.items() if n}
