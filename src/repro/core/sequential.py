"""Sequential (in-order) execution — Definitions B.3/B.4.

A *sequential schedule* executes and retires every instruction
immediately upon fetching it, so the reorder buffer never holds more than
one in-flight instruction (or one call/ret group).  Each program has a
*canonical* sequential schedule; ``run_sequential`` constructs it on the
fly by always predicting correctly:

* conditional branches are fetched with the arm the condition actually
  takes (evaluated against committed state — the buffer is empty);
* indirect jumps are fetched with their computed target;
* returns use the RSB when it is usable, and otherwise the actual return
  address in memory.

Theorem 3.2 (sequential equivalence) says any well-formed schedule's
final configuration is ``≈``-equivalent to the canonical sequential one
after the same number of retires; :mod:`repro.verify.theorems` checks
this empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .config import Config
from .directives import Directive, Execute, Fetch, Retire
from .errors import StuckError
from .executor import RunResult, StepRecord
from .isa import Br, Call, Fence, Instruction, Jmpi, Load, Op, Ret, Store
from .machine import Machine, RSP
from .observations import Observation
from .rob import resolve_operands
from .transient import TStore
from .values import BOTTOM, Value


def _predict(machine: Machine, config: Config) -> Fetch:
    """The correct prediction for the instruction at the current pc,
    evaluated against committed state (the canonical schedule never
    misspeculates on purpose)."""
    instr = machine.program[config.pc]
    if isinstance(instr, Br):
        vals = resolve_operands(config.buf, config.buf.max_index() + 1,
                                config.regs, instr.args)
        if vals is None:
            raise StuckError("sequential fetch with unresolved condition")
        cond = machine.evaluator.evaluate(instr.opcode, vals)
        return Fetch(machine.evaluator.truth(cond))
    if isinstance(instr, Jmpi):
        vals = resolve_operands(config.buf, config.buf.max_index() + 1,
                                config.regs, instr.args)
        if vals is None:
            raise StuckError("sequential fetch with unresolved jump target")
        addr = machine.evaluator.address(vals)
        return Fetch(machine.evaluator.concretize(addr))
    if isinstance(instr, Ret):
        if config.rsb.top() is BOTTOM and machine.rsb_policy == "directive":
            # Predict the actual return address: the top of the stack.
            rsp = config.regs[RSP]
            addr = machine.evaluator.concretize(rsp)
            target = config.mem.read(addr)
            return Fetch(machine.evaluator.concretize(target))
        return Fetch(None)
    return Fetch(None)


def _instruction_steps(machine: Machine, config: Config,
                       instr: Instruction) -> List[Directive]:
    """The execute/retire directives that complete the instruction just
    fetched at the buffer's maximum index(es)."""
    buf = config.buf
    if isinstance(instr, (Op, Load, Br, Jmpi)):
        return [Execute(buf.max_index()), Retire()]
    if isinstance(instr, Store):
        i = buf.max_index()
        entry = buf[i]
        assert isinstance(entry, TStore)
        steps: List[Directive] = []
        if not entry.value_resolved():
            steps.append(Execute(i, "value"))
        if not entry.addr_resolved():
            steps.append(Execute(i, "addr"))
        return steps + [Retire()]
    if isinstance(instr, Fence):
        return [Retire()]
    if isinstance(instr, Call):
        g = buf.max_index() - 2  # marker index
        return [Execute(g + 1), Execute(g + 2, "addr"), Retire()]
    if isinstance(instr, Ret):
        g = buf.max_index() - 3
        return [Execute(g + 1), Execute(g + 2), Execute(g + 3), Retire()]
    raise StuckError(f"unknown instruction {instr!r}")


def run_sequential(machine: Machine, config: Config,
                   max_retires: int = 100_000,
                   stop_at: Optional[int] = None) -> RunResult:
    """Run the canonical sequential schedule from an initial config.

    Stops when the program halts (pc leaves the program and the buffer
    is empty), after ``max_retires`` retire directives, or — if
    ``stop_at`` is given — after exactly ``stop_at`` retires (Theorem 3.2
    compares runs at equal retire counts N).
    """
    if not config.is_initial():
        raise StuckError("sequential execution starts from |buf| = 0")
    current = config
    schedule: List[Directive] = []
    trace: List[Observation] = []
    steps: List[StepRecord] = []
    retired = 0
    budget = stop_at if stop_at is not None else max_retires
    while retired < budget:
        if machine.program.get(current.pc) is None:
            break  # halted
        instr = machine.program[current.pc]
        fetch = _predict(machine, current)
        current, leak = machine.step(current, fetch)
        schedule.append(fetch)
        trace.extend(leak)
        steps.append(StepRecord(fetch, leak, current))
        for d in _instruction_steps(machine, current, instr):
            current, leak = machine.step(current, d)
            schedule.append(d)
            trace.extend(leak)
            steps.append(StepRecord(d, leak, current))
            if isinstance(d, Retire):
                retired += 1
    return RunResult(config, current, tuple(schedule), tuple(trace),
                     tuple(steps), retired)


@dataclass(frozen=True)
class SequentialCT:
    """Result of a sequential constant-time check (the classical notion)."""

    ok: bool
    trace_a: Tuple[Observation, ...]
    trace_b: Tuple[Observation, ...]
    divergence: Optional[int] = None  #: index of the first differing obs

    def __bool__(self) -> bool:
        return self.ok


def check_sequential_ct(machine: Machine, config_a: Config,
                        config_b: Config,
                        max_retires: int = 100_000) -> SequentialCT:
    """Classical constant-time: equal observation traces for the two
    low-equivalent configurations under sequential execution."""
    ra = run_sequential(machine, config_a, max_retires)
    rb = run_sequential(machine, config_b, max_retires)
    if ra.trace == rb.trace:
        return SequentialCT(True, ra.trace, rb.trace)
    div = next((k for k, (x, y) in enumerate(zip(ra.trace, rb.trace))
                if x != y), min(len(ra.trace), len(rb.trace)))
    return SequentialCT(False, ra.trace, rb.trace, div)
