"""Errors raised by the speculative machine.

The paper's semantics is a partial relation: a directive may simply not
apply to a configuration (the schedule is then not *well-formed*, in the
sense of Section 3.1).  We signal that with :class:`StuckError` so drivers
can distinguish "schedule does not apply here" from genuine bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StuckError(ReproError):
    """The given directive does not apply to the current configuration.

    Raised by :meth:`repro.core.machine.Machine.step` when no inference
    rule of the semantics matches the (configuration, directive) pair.
    A schedule that never gets stuck is *well-formed* for its initial
    configuration.
    """

    def __init__(self, message: str, directive: object = None) -> None:
        super().__init__(message)
        self.directive = directive


class IllFormedProgramError(ReproError):
    """A program is structurally invalid (e.g. missing program point)."""


class AssemblerError(ReproError):
    """Raised by the assembly front end for syntax or layout errors."""


class CompileError(ReproError):
    """Raised by the mini constant-time compiler (``repro.ctcomp``)."""
