"""Big-step execution: running schedules and collecting traces.

``run`` implements the paper's ``C ⇓_D^N,O C'`` — the reflexive-transitive
closure of the small-step relation under a schedule D, collecting the
observation trace O and counting retire directives N.  A schedule is
*well-formed* for a configuration iff no step gets stuck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from .config import Config
from .directives import Directive, Retire, Schedule
from .errors import StuckError
from .machine import Machine
from .observations import Observation, StepLeakage, Trace


@dataclass(frozen=True)
class StepRecord:
    """One executed step: the directive, its leakage, and the successor."""

    directive: Directive
    leakage: StepLeakage
    after: Config


@dataclass(frozen=True)
class RunResult:
    """The result of a big step ``C ⇓_D^N,O C'``."""

    initial: Config
    final: Config
    schedule: Schedule
    trace: Trace
    steps: Tuple[StepRecord, ...]
    retired: int  #: N — the number of retire directives executed

    def leakage_by_step(self) -> Tuple[StepLeakage, ...]:
        return tuple(s.leakage for s in self.steps)


def run(machine: Machine, config: Config,
        schedule: Iterable[Directive],
        record_steps: bool = True) -> RunResult:
    """Execute ``schedule`` from ``config``; raise StuckError (annotated
    with the failing step index) if the schedule is not well-formed.

    ``machine`` may be a plain :class:`Machine` or a counting
    :class:`repro.engine.ExecutionEngine` — both expose the same
    ``step`` relation, so every big-step driver (this one, the SCT
    product, the metatheory checks) runs on the engine when given one.
    """
    trace: List[Observation] = []
    steps: List[StepRecord] = []
    retired = 0
    current = config
    directives = tuple(schedule)
    for idx, d in enumerate(directives):
        try:
            current, leak = machine.step(current, d)
        except StuckError as e:
            raise StuckError(
                f"schedule stuck at step {idx} ({d!r}): {e}", d) from e
        trace.extend(leak)
        if record_steps:
            steps.append(StepRecord(d, leak, current))
        if isinstance(d, Retire):
            retired += 1
    return RunResult(config, current, directives, tuple(trace),
                     tuple(steps), retired)


def is_well_formed(machine: Machine, config: Config,
                   schedule: Iterable[Directive]) -> bool:
    """Does the schedule run to completion without getting stuck?"""
    try:
        run(machine, config, schedule, record_steps=False)
    except StuckError:
        return False
    return True


def drain(machine: Machine, config: Config,
          max_steps: int = 10_000) -> RunResult:
    """Resolve and retire everything currently in flight, preferring the
    oldest instruction, without fetching anything new.

    Useful to bring a mid-speculation configuration back to a terminal
    one (|buf| = 0).  Raises StuckError if the buffer cannot drain (e.g.
    a store whose operands will never resolve).
    """
    from .directives import Execute, Fetch  # local to avoid cycle noise
    schedule: List[Directive] = []
    current = config
    trace: List[Observation] = []
    steps: List[StepRecord] = []
    retired = 0
    for _ in range(max_steps):
        if not current.buf:
            break
        progressed = False
        for d in machine.enabled_directives(current):
            if isinstance(d, Fetch):
                continue
            # Prefer retiring; otherwise execute the oldest executable.
            try:
                nxt, leak = machine.step(current, d)
            except StuckError:
                continue
            current = nxt
            trace.extend(leak)
            schedule.append(d)
            steps.append(StepRecord(d, leak, current))
            if isinstance(d, Retire):
                retired += 1
            progressed = True
            break
        if not progressed:
            raise StuckError("buffer cannot drain from this configuration")
    return RunResult(config, current, tuple(schedule), tuple(trace),
                     tuple(steps), retired)
