"""Speculative constant-time — Definition 3.1, executable.

A configuration C with schedule D satisfies SCT iff for every C' with
``C ≃pub C'``::

    C ⇓_D^O C1   iff   C' ⇓_D^O' C1'   and   C1 ≃pub C1'   and   O = O'.

This module provides the two-trace check directly (``check_pair``), a
quantifier over secret variations (``check_sct``), and helpers to
construct low-equivalent partner configurations by re-drawing secret
payloads.

For programs that are *sequentially* constant-time (all crypto code the
paper audits), Corollary B.10 lets a single-trace criterion stand in:
some observation carries a non-public label iff SCT fails under some
partner.  ``single_trace_violations`` exposes that criterion — it is what
Pitchfork flags.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .config import Config
from .directives import Schedule
from .errors import StuckError
from .executor import run
from .machine import Machine
from .observations import (Observation, Trace, is_secret_dependent,
                           secret_observations)
from .values import Value


@dataclass(frozen=True)
class SCTCounterExample:
    """Witness of an SCT violation: two low-equivalent runs that differ."""

    schedule: Schedule
    config_a: Config
    config_b: Config
    trace_a: Trace
    trace_b: Trace
    reason: str

    def first_divergence(self) -> Optional[int]:
        for k, (x, y) in enumerate(zip(self.trace_a, self.trace_b)):
            if x != y:
                return k
        if len(self.trace_a) != len(self.trace_b):
            return min(len(self.trace_a), len(self.trace_b))
        return None


@dataclass(frozen=True)
class SCTResult:
    """Outcome of an SCT check over a family of configuration pairs.

    ``ok=True`` with ``vacuous=True`` means the quantifier was empty —
    every generated partner equalled the configuration or failed
    low-equivalence, so *no pair was actually checked*.  Callers must
    not read a vacuous pass as evidence of security.
    """

    ok: bool
    counterexample: Optional[SCTCounterExample] = None
    pairs_checked: int = 0
    vacuous: bool = False

    def __bool__(self) -> bool:
        return self.ok


def check_pair(machine: Machine, config_a: Config, config_b: Config,
               schedule: Schedule) -> Optional[SCTCounterExample]:
    """Definition 3.1 for one pair and one schedule.

    Returns a counterexample, or None if the pair is indistinguishable.
    """
    if not config_a.low_equivalent(config_b):
        raise ValueError("check_pair needs low-equivalent configurations")
    try:
        ra = run(machine, config_a, schedule, record_steps=False)
        a_ok = True
    except StuckError:
        a_ok = False
    try:
        rb = run(machine, config_b, schedule, record_steps=False)
        b_ok = True
    except StuckError:
        b_ok = False
    if a_ok != b_ok:
        # The schedule is well-formed for one side only: distinguishable.
        return SCTCounterExample(schedule, config_a, config_b,
                                 ra.trace if a_ok else (),
                                 rb.trace if b_ok else (),
                                 "well-formedness differs")
    if not a_ok:
        return None  # stuck on both sides at the same schedule: vacuous
    if ra.trace != rb.trace:
        return SCTCounterExample(schedule, config_a, config_b,
                                 ra.trace, rb.trace,
                                 "observation traces differ")
    if not ra.final.low_equivalent(rb.final):
        return SCTCounterExample(schedule, config_a, config_b,
                                 ra.trace, rb.trace,
                                 "final configurations not low-equivalent")
    return None


def secret_variations(config: Config,
                      payloads: Sequence[int] = (0, 1, 7, 42, 255),
                      limit: int = 8) -> List[Config]:
    """Low-equivalent partners of ``config`` obtained by re-drawing every
    secret register and memory cell from ``payloads``.

    The full product is truncated to ``limit`` configurations, cycling
    payload choices so that each secret location varies at least once.
    """
    secret_regs = [r for r, v in config.regs.items() if not v.is_public()]
    secret_addrs = [a for a in config.mem.addresses()
                    if not config.mem.read(a).is_public()]
    slots = len(secret_regs) + len(secret_addrs)
    if slots == 0:
        return [config]
    out: List[Config] = []
    for k in range(limit):
        regs = dict(config.regs)
        mem = config.mem
        for s, reg in enumerate(secret_regs):
            payload = payloads[(k + s) % len(payloads)]
            regs[reg] = Value(payload, regs[reg].label)
        writes = []
        for s, addr in enumerate(secret_addrs):
            payload = payloads[(k + len(secret_regs) + s) % len(payloads)]
            writes.append((addr, Value(payload, mem.read(addr).label)))
        mem = mem.write_all(writes)
        candidate = config.with_(regs=regs, mem=mem)
        if candidate not in out:
            out.append(candidate)
    return out


def check_sct(machine: Machine, config: Config,
              schedules: Iterable[Schedule],
              partners: Optional[Iterable[Config]] = None) -> SCTResult:
    """Check Definition 3.1 for ``config`` over the given schedules,
    against either the provided partners or auto-generated secret
    variations.

    ``machine`` may also be a :class:`repro.engine.ExecutionEngine`,
    which counts the quantifier's work (every schedule × every partner,
    two runs per pair) so it can surface in ``api.Report``.
    """
    partner_list = list(partners) if partners is not None \
        else secret_variations(config)
    pairs = 0
    for schedule in schedules:
        for partner in partner_list:
            if partner == config:
                continue
            if not config.low_equivalent(partner):
                continue
            pairs += 1
            cex = check_pair(machine, config, partner, schedule)
            if cex is not None:
                return SCTResult(False, cex, pairs)
    return SCTResult(True, None, pairs, vacuous=(pairs == 0))


def single_trace_violations(trace: Trace) -> Trace:
    """The label-based criterion Pitchfork uses (Cor. B.10): observations
    whose label is not public."""
    return secret_observations(trace)
