"""Transient instructions — the right-hand column of Table 1.

Fetched physical instructions become *transient* instructions in the
reorder buffer.  Transient instructions carry extra speculation state:
the guessed branch target of an unresolved ``br``/``jmpi``, the
provenance annotation ``{j, a}`` of a resolved load, or the speculatively
forwarded value of a partially resolved load (Section 3.5).

All forms are immutable; the machine rewrites buffer slots by replacing
whole instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from .values import BOTTOM, Operand, Operands, Reg, Value, _Bottom

#: A load-provenance index: the buffer index of the forwarding store, or
#: ``⊥`` when the value was read from memory.
Provenance = Union[int, _Bottom]


@dataclass(frozen=True)
class Transient:
    """Base class of transient instructions."""


@dataclass(frozen=True)
class TOp(Transient):
    """Unresolved arithmetic operation ``(r = op(op, r⃗v))``."""

    dest: Reg
    opcode: str
    args: Operands

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.dest!r} = op({self.opcode}, {list(self.args)}))"


@dataclass(frozen=True)
class TValue(Transient):
    """Resolved value ``(r = v_ℓ)``.

    A resolved *load* additionally carries its provenance annotation
    ``{dep, addr}`` (forwarding store index or ``⊥``, and the computed
    address) and the program point ``pp`` of the physical load that
    produced it — the hazard rules roll back to ``pp``.  Plain resolved
    ops have ``addr is None``.
    """

    dest: Reg
    value: Value
    dep: Provenance = BOTTOM
    addr: Optional[int] = None
    pp: Optional[int] = None
    group: Optional[int] = None

    def is_load_result(self) -> bool:
        """True iff this value carries a load annotation ``{j, a}``."""
        return self.addr is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_load_result():
            return f"({self.dest!r} = {self.value!r}{{{self.dep!r},{self.addr}}})"
        return f"({self.dest!r} = {self.value!r})"


@dataclass(frozen=True)
class TBr(Transient):
    """Unresolved conditional ``br(op, r⃗v, n0, (n_true, n_false))``.

    ``guess`` records the speculatively followed program point n0.
    """

    opcode: str
    args: Operands
    guess: int
    targets: Tuple[int, int]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"br({self.opcode}, {list(self.args)}, {self.guess}, "
                f"{self.targets})")


@dataclass(frozen=True)
class TJump(Transient):
    """Resolved conditional / indirect jump ``jump n0``."""

    target: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"jump {self.target}"


@dataclass(frozen=True)
class TLoad(Transient):
    """Unresolved load ``(r = load(r⃗v))_n``.

    With ``pred`` set, this is the partially resolved load
    ``(r = load(r⃗v, (v_ℓ, j)))_n`` of Section 3.5: the aliasing predictor
    speculatively forwarded value ``pred[0]`` from the store at buffer
    index ``pred[1]`` before the load's own address was known.
    """

    dest: Reg
    args: Operands
    pp: int
    pred: Optional[Tuple[Value, int]] = None
    group: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.pred is None:
            return f"({self.dest!r} = load({list(self.args)}))_{self.pp}"
        v, j = self.pred
        return f"({self.dest!r} = load({list(self.args)}, ({v!r}, {j})))_{self.pp}"


@dataclass(frozen=True)
class TStore(Transient):
    """Store in any resolution state.

    * value unresolved: ``src`` is a :class:`Reg`;
      resolved: ``src`` is a :class:`Value`.
    * address unresolved: ``addr is None`` and ``args`` holds the operand
      list; resolved: ``addr`` is the labelled target address.
    """

    src: Operand
    args: Operands
    addr: Optional[Value] = None

    def value_resolved(self) -> bool:
        return isinstance(self.src, Value)

    def addr_resolved(self) -> bool:
        return self.addr is not None

    def fully_resolved(self) -> bool:
        return self.value_resolved() and self.addr_resolved()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = repr(self.addr) if self.addr is not None else repr(list(self.args))
        return f"store({self.src!r}, {where})"


@dataclass(frozen=True)
class TJmpi(Transient):
    """Unresolved indirect jump ``jmpi(r⃗v, n0)`` with guessed target."""

    args: Operands
    guess: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"jmpi({list(self.args)}, {self.guess})"


@dataclass(frozen=True)
class TFence(Transient):
    """Transient speculation barrier."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "fence"


@dataclass(frozen=True)
class TCallMarker(Transient):
    """The ``call`` marker heading a fetched call group (Appendix A.2)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "call"


@dataclass(frozen=True)
class TRetMarker(Transient):
    """The ``ret`` marker heading a fetched return group (Appendix A.2)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ret"


def assigns(instr: Transient, reg: Reg) -> bool:
    """Does this transient instruction have the form ``(reg = _)``?

    Used by the register resolve function (Fig 3) to find the latest
    in-flight assignment to a register.
    """
    return isinstance(instr, (TOp, TValue, TLoad)) and instr.dest == reg


def resolved_value_of(instr: Transient) -> Union[Value, _Bottom]:
    """The value an in-flight assignment provides, or ``⊥``.

    Resolved values provide their value; partially resolved loads provide
    their speculatively forwarded value (Section 3.5's extension of the
    register resolve function); everything else is still pending.
    """
    if isinstance(instr, TValue):
        return instr.value
    if isinstance(instr, TLoad) and instr.pred is not None:
        return instr.pred[0]
    return BOTTOM
