"""Figure-style rendering of executions.

The paper presents attacks as three-column tables — *Directive*,
*Effect on buf*, *Leakage* (Figs 1, 2, 5-7, 11-13).  ``render_execution``
produces the same table from a :class:`repro.core.executor.RunResult`,
which makes machine traces directly comparable against the paper and is
what ``examples/spectre_zoo.py`` prints.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .config import Config
from .executor import RunResult, StepRecord
from .observations import Observation


def _buffer_delta(before: Config, after: Config) -> str:
    """A compact description of what a step did to the reorder buffer."""
    b, a = before.buf, after.buf
    gone = [i for i in b.indices() if i not in a]
    added = [i for i in a.indices() if i not in b or a[i] != b.get(i)]
    parts: List[str] = []
    if gone:
        if len(gone) == 1:
            parts.append(f"{gone[0]} ∉ buf")
        else:
            parts.append(f"{{{', '.join(map(str, gone))}}} ∉ buf")
    for i in added:
        parts.append(f"{i} ↦ {a[i]!r}")
    if before.pc != after.pc:
        parts.append(f"pc := {after.pc}")
    return "; ".join(parts) if parts else "—"


def render_execution(result: RunResult,
                     show_quiet_steps: bool = True) -> str:
    """The paper's Directive / Effect-on-buf / Leakage table."""
    rows: List[Tuple[str, str, str]] = []
    before = result.initial
    for step in result.steps:
        leakage = ", ".join(repr(o) for o in step.leakage) or ""
        effect = _buffer_delta(before, step.after)
        if show_quiet_steps or step.leakage:
            rows.append((repr(step.directive), effect, leakage))
        before = step.after
    if not rows:
        return "(no steps)"
    w_dir = max(len(r[0]) for r in rows + [("Directive", "", "")])
    w_eff = max(len(r[1]) for r in rows + [("", "Effect on buf", "")])
    lines = [f"{'Directive':<{w_dir}}  {'Effect on buf':<{w_eff}}  Leakage",
             "-" * (w_dir + w_eff + 11)]
    for d, e, l in rows:
        lines.append(f"{d:<{w_dir}}  {e:<{w_eff}}  {l}")
    return "\n".join(lines)


def render_trace(trace: Tuple[Observation, ...]) -> str:
    """The observation trace as the paper writes it: ``o1; o2; …``."""
    return "; ".join(repr(o) for o in trace) if trace else "(empty)"
