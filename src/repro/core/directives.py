"""Attacker directives (Section 3.1).

The attacker resolves *all* scheduling and prediction non-determinism by
supplying a sequence of directives:

* ``fetch`` — fetch the next instruction (ops, loads, stores, fences,
  calls, and rets with a usable RSB);
* ``fetch: true`` / ``fetch: false`` — fetch a conditional branch,
  speculatively following the given arm;
* ``fetch: n`` — fetch an indirect jump (or a ret with an empty RSB),
  speculatively jumping to program point ``n``;
* ``execute i`` — execute the transient instruction at buffer index i;
* ``execute i : value`` / ``execute i : addr`` — resolve a store's data
  or address;
* ``execute i : fwd j`` — the aliasing predictor speculatively forwards
  from the store at index j to the load at index i (Section 3.5);
* ``retire`` — retire the oldest instruction.

A *schedule* is a sequence of directives; it is well-formed for a
configuration if no step gets stuck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class Directive:
    """Base class for attacker directives."""


@dataclass(frozen=True)
class Fetch(Directive):
    """``fetch`` / ``fetch: b`` / ``fetch: n``.

    ``pred`` is None for plain fetches, a bool for conditional branches,
    and an int program point for indirect jumps / RSB-empty returns.
    """

    pred: Union[None, bool, int] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.pred is None:
            return "fetch"
        return f"fetch: {self.pred}"


@dataclass(frozen=True)
class Execute(Directive):
    """``execute i`` with an optional part selector.

    ``part`` is None (whole instruction), "value" or "addr" (store
    halves), or an int ``j`` meaning ``fwd j`` (aliasing prediction).
    """

    index: int
    part: Union[None, str, int] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.part is None:
            return f"execute {self.index}"
        if isinstance(self.part, int):
            return f"execute {self.index}: fwd {self.part}"
        return f"execute {self.index}: {self.part}"


@dataclass(frozen=True)
class Retire(Directive):
    """``retire`` — commit the oldest buffer entry."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "retire"


#: A schedule of directives D.
Schedule = Tuple[Directive, ...]

RETIRE = Retire()
FETCH = Fetch()


def fetch(pred: Union[None, bool, int] = None) -> Fetch:
    """Convenience constructor for fetch directives."""
    return Fetch(pred)


def execute(index: int, part: Union[None, str, int] = None) -> Execute:
    """Convenience constructor for execute directives."""
    if part not in (None, "value", "addr") and not isinstance(part, int):
        raise ValueError(f"bad execute part {part!r}")
    return Execute(index, part)


def retire_count(schedule: Tuple[Directive, ...]) -> int:
    """``N = #{d ∈ D | d = retire}`` — retired instructions in a schedule.

    Call/ret groups retire as one directive but remove several buffer
    entries; the paper counts retire *directives*, as do we.
    """
    return sum(1 for d in schedule if isinstance(d, Retire))
