"""Machine configurations (Section 3, "Configurations").

A configuration ``C = (ρ, µ, n, buf, σ)`` bundles the register file, data
memory, current program point, reorder buffer and return stack buffer.
(The RSB σ only appears once Appendix A.2's call/ret extension is used;
it is empty otherwise.)

Two equivalences from the paper:

* ``≃pub`` (:meth:`Config.low_equivalent`) — agreement on public register
  and memory values; the relation quantified over in the SCT definition.
* ``≈`` (:meth:`Config.arch_equivalent`) — equal memories and register
  files, ignoring speculative state; used by the sequential-equivalence
  theorem (Thm 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from .memory import Memory
from .program import Program
from .rob import ReorderBuffer
from .rsb import ReturnStackBuffer
from .values import Reg, Value


def _freeze_regs(regs: Mapping) -> Dict[Reg, Value]:
    out: Dict[Reg, Value] = {}
    for k, v in regs.items():
        key = Reg(k) if isinstance(k, str) else k
        if not isinstance(v, Value):
            v = Value(v)
        out[key] = v
    return out


@dataclass(frozen=True)
class Config:
    """An immutable machine configuration ``(ρ, µ, n, buf, σ)``."""

    regs: Dict[Reg, Value]
    mem: Memory
    pc: int
    buf: ReorderBuffer = field(default_factory=ReorderBuffer)
    rsb: ReturnStackBuffer = field(default_factory=ReturnStackBuffer)

    @staticmethod
    def initial(regs: Mapping, mem: Memory, pc: int) -> "Config":
        """An initial configuration: empty buffer and RSB.

        ``regs`` may use plain strings and ints for convenience.
        """
        return Config(_freeze_regs(regs), mem, pc)

    # -- functional updates -------------------------------------------------

    _FIELDS = frozenset(("regs", "mem", "pc", "buf", "rsb"))

    def with_(self, **kw) -> "Config":
        """Functional record update.

        Hand-rolled rather than :func:`dataclasses.replace`: this runs
        once per machine step, and ``replace``'s field introspection is
        measurable at exploration scale.
        """
        if not kw.keys() <= self._FIELDS:
            raise TypeError(f"unknown config fields "
                            f"{sorted(kw.keys() - self._FIELDS)}")
        return Config(kw.get("regs", self.regs), kw.get("mem", self.mem),
                      kw.get("pc", self.pc), kw.get("buf", self.buf),
                      kw.get("rsb", self.rsb))

    def snapshot(self) -> "Config":
        """This configuration as an O(1) snapshot.

        Configurations are immutable values whose components (memory,
        reorder buffer, RSB) are persistent structures, so a snapshot
        *is* the configuration: the execution engine's exploration tree
        stores configurations directly and resumes from them without
        any copying.  This method exists to make that contract explicit
        at call sites.
        """
        return self

    def reg(self, name) -> Value:
        """Committed (architectural) value of a register."""
        key = Reg(name) if isinstance(name, str) else name
        return self.regs[key]

    # -- predicates ----------------------------------------------------------

    def is_initial(self) -> bool:
        """|buf| = 0 (Definition B.2 covers initial *and* terminal)."""
        return len(self.buf) == 0

    is_terminal = is_initial

    # -- equivalences ---------------------------------------------------------

    def low_equivalent(self, other: "Config") -> bool:
        """``≃pub``: coincidence of public register and memory values."""
        if self.pc != other.pc:
            return False
        if set(self.regs) != set(other.regs):
            return False
        for r, v in self.regs.items():
            w = other.regs[r]
            if v.label != w.label:
                return False
            if v.is_public() and v.val != w.val:
                return False
        return self.mem.low_equivalent(other.mem)

    def arch_equivalent(self, other: "Config") -> bool:
        """``≈``: equal memories and register files (speculative state —
        buffer, RSB, and transient pc — may differ)."""
        return self.regs == other.regs and self.mem == other.mem

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Config):
            return NotImplemented
        if self is other:
            return True
        ha = self.__dict__.get("_shash")
        if ha is not None and ha != other.__dict__.get("_shash", ha):
            # Sound fast-fail: equal configurations hash equal, and a
            # memoised hash never changes (every component is immutable).
            return False
        return (self.pc == other.pc and self.buf == other.buf
                and self.rsb == other.rsb and self.regs == other.regs
                and self.mem == other.mem)

    def __hash__(self) -> int:
        """Structural hash, memoised on first use.

        Configurations are immutable values over persistent components
        (the memory maintains its hash incrementally on write, the
        buffers memoise theirs), so this is computed at most once and
        never invalidated.  The subsumption table and the engine's
        trial-step cache both key on it.
        """
        try:
            return self._shash
        except AttributeError:
            pass
        h = hash((tuple(sorted((r.name, v.val, v.label)
                               for r, v in self.regs.items()
                               if isinstance(v.val, int))),
                  self.mem, self.pc, self.buf, self.rsb))
        object.__setattr__(self, "_shash", h)
        return h

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        regs = ", ".join(f"{r.name}={v!r}" for r, v in sorted(
            self.regs.items(), key=lambda kv: kv[0].name))
        return (f"Config(pc={self.pc}, regs={{{regs}}}, "
                f"|buf|={len(self.buf)})")
