"""Security label lattices.

The paper annotates every value with a label drawn from a lattice of
security labels with a join operator (Section 3, "Values and labels").
Almost all of the paper works with the two-point lattice
``public ⊑ secret``, which we expose as :data:`PUBLIC` and :data:`SECRET`.

A generic finite lattice (:class:`Lattice`) is also provided so that
multi-principal policies can be expressed; the machine itself only ever
needs ``join`` and the ``flows_to`` partial order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Tuple


@dataclass(frozen=True, order=False)
class Label:
    """A security label: an element of a join-semilattice.

    Labels are interned by name inside their lattice; equality is by
    (lattice name, label name).  The default two-point lattice provides
    :data:`PUBLIC` (bottom) and :data:`SECRET` (top).
    """

    name: str
    lattice: str = "two-point"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    def join(self, other: "Label") -> "Label":
        """Least upper bound of two labels (the paper's ``⊔``)."""
        return get_lattice(self.lattice).join(self, other)

    def flows_to(self, other: "Label") -> bool:
        """Partial order test ``self ⊑ other``."""
        return get_lattice(self.lattice).flows_to(self, other)

    def is_public(self) -> bool:
        """True iff this label is the lattice bottom (observable by all)."""
        return get_lattice(self.lattice).bottom == self

    def __or__(self, other: "Label") -> "Label":
        return self.join(other)


class Lattice:
    """A finite join-semilattice of :class:`Label` values.

    The lattice is described by its cover ("flows to") edges; ``join`` is
    computed from the upward closures.  All lattices are registered in a
    module-level table so :class:`Label` instances (which only carry their
    lattice's *name*, keeping them hashable and tiny) can find their
    operations.
    """

    def __init__(self, name: str, edges: Iterable[Tuple[str, str]],
                 bottom: str, top: str) -> None:
        self.name = name
        self._labels: Dict[str, Label] = {}
        self._up: Dict[str, FrozenSet[str]] = {}
        adj: Dict[str, set] = {}
        names = {bottom, top}
        for lo, hi in edges:
            names.add(lo)
            names.add(hi)
            adj.setdefault(lo, set()).add(hi)
        for n in names:
            self._labels[n] = Label(n, name)
        # Upward closure by DFS; lattices are tiny so this is cheap.
        def up(n: str) -> FrozenSet[str]:
            seen = {n}
            stack = [n]
            while stack:
                cur = stack.pop()
                for nxt in adj.get(cur, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return frozenset(seen)

        for n in names:
            self._up[n] = up(n)
        self.bottom = self._labels[bottom]
        self.top = self._labels[top]
        _LATTICES[name] = self

    def label(self, name: str) -> Label:
        """Look up a label by name."""
        return self._labels[name]

    def labels(self) -> Tuple[Label, ...]:
        """All labels of this lattice, in no particular order."""
        return tuple(self._labels.values())

    def flows_to(self, lo: Label, hi: Label) -> bool:
        """``lo ⊑ hi`` in this lattice."""
        return hi.name in self._up[lo.name]

    def join(self, a: Label, b: Label) -> Label:
        """Least upper bound.  For the small lattices used here we take
        the minimum (by upward-closure size) common upper bound."""
        if self.flows_to(a, b):
            return b
        if self.flows_to(b, a):
            return a
        common = self._up[a.name] & self._up[b.name]
        # The least element of the common upper set has the largest
        # upward closure.
        best = max(common, key=lambda n: (len(self._up[n]), n))
        return self._labels[best]


_LATTICES: Dict[str, Lattice] = {}


def get_lattice(name: str) -> Lattice:
    """Fetch a registered lattice by name."""
    return _LATTICES[name]


#: The default two-point lattice used throughout the paper.
TWO_POINT = Lattice("two-point", [("public", "secret")],
                    bottom="public", top="secret")

#: Bottom of the default lattice: values the attacker may observe.
PUBLIC = TWO_POINT.label("public")

#: Top of the default lattice: values that must never be observed.
SECRET = TWO_POINT.label("secret")


def join_all(labels: Iterable[Label], default: Label = PUBLIC) -> Label:
    """Join a (possibly empty) collection of labels (the paper's ``⊔ ℓ⃗``)."""
    out = default
    for lab in labels:
        out = out.join(lab)
    return out
